//! # multicast-fairness
//!
//! A full reproduction of **Rubenstein, Kurose & Towsley, "The Impact of
//! Multicast Layering on Network Fairness", ACM SIGCOMM 1999** as a Rust
//! workspace. This umbrella crate re-exports the six library crates:
//!
//! | Crate | Paper section | Contents |
//! |-------|---------------|----------|
//! | [`net`] (`mlf-net`) | §2 model | graphs, links, routing, sessions, topologies, the paper's example networks |
//! | [`core`] (`mlf-core`) | §2–§3 theory | the unified `Allocator` trait + `SolverWorkspace`, fairness properties, min-unfavorable ordering, redundancy |
//! | [`scenario`] (`mlf-scenario`) | everything | the declarative `Scenario` builder composing topology × link rates × allocator × layering × reporting, with `run()`/`sweep()` |
//! | [`layering`] (`mlf-layering`) | §3 | layer schedules, fixed-layer analysis, quantum join/leave scheduling, random-join redundancy |
//! | [`sim`] (`mlf-sim`) | §4 substrate | deterministic packet-level star simulator, loss processes, statistics |
//! | [`protocols`] (`mlf-protocols`) | §4 | the Uncoordinated/Deterministic/Coordinated protocols, the Figure 8 harness, the Figure 7(a) Markov model |
//!
//! The repo-level `ARCHITECTURE.md` is the written guide to how these
//! crates, the frozen-reference differential pattern, and the CI gates
//! fit together; `docs/benchmarks.md` catalogs the benchmarks and the
//! baseline re-seed procedure.
//!
//! ## Quickstart
//!
//! Declare an experiment as a [`Scenario`](mlf_scenario::Scenario): the
//! topology, the allocation regime, and the reporting come back as one
//! `run()`:
//!
//! ```
//! use multicast_fairness::prelude::*;
//!
//! // Build a network: one multi-rate session, two receivers behind
//! // different bottlenecks, plus a competing unicast.
//! let mut g = Graph::new();
//! let src = g.add_node();
//! let hub = g.add_node();
//! let (a, b) = (g.add_node(), g.add_node());
//! g.add_link(src, hub, 10.0).unwrap();
//! g.add_link(hub, a, 2.0).unwrap();
//! g.add_link(hub, b, 6.0).unwrap();
//! let net = Network::new(g, vec![
//!     Session::multi_rate(src, vec![a, b]),
//!     Session::unicast(src, b),
//! ]).unwrap();
//!
//! let mut scenario = Scenario::builder()
//!     .network(net)
//!     .allocator(MultiRate::new())
//!     .build()
//!     .unwrap();
//! let report = scenario.run();
//!
//! // The multi-rate max-min fair allocation…
//! assert_eq!(report.solution.allocation.rates(), &[vec![2.0, 3.0], vec![3.0]]);
//! // …satisfies all four fairness properties (Theorem 1).
//! assert!(report.fairness.unwrap().all_hold());
//! ```
//!
//! For one-off solves without a scenario, use the
//! [`Allocator`](mlf_core::allocator::Allocator) trait directly; a shared
//! [`SolverWorkspace`](mlf_core::allocator::SolverWorkspace) makes repeated
//! solves allocation-free:
//!
//! ```
//! use multicast_fairness::prelude::*;
//!
//! let example = mlf_net::paper::figure2();
//! let mut ws = SolverWorkspace::new();
//! let declared = Hybrid::as_declared().solve(&example.network, &mut ws);
//! let multi = MultiRate::new().solve(&example.network, &mut ws);
//! assert!(multi.allocation.min_rate() >= declared.allocation.min_rate());
//! ```
//!
//! ## Migration note (0.2)
//!
//! The old free functions — `max_min_allocation`,
//! `max_min_allocation_with`, `multi_rate_max_min`, `single_rate_max_min`,
//! `weighted_max_min`, `unicast_max_min` — are now thin `#[deprecated]`
//! shims delegating to the `Allocator` implementations, kept so downstream
//! code compiles unchanged. Migrate call sites to
//! [`mlf_core::allocator`] or [`mlf_scenario::Scenario`].
//!
//! ## Determinism contract
//!
//! Every result this workspace produces is a pure function of explicit
//! inputs (topology, configuration, seeds). Concretely:
//!
//! * **Bitwise reproducibility.** The same scenario, grid, and seeds
//!   produce byte-identical output on every run, at any thread count
//!   (`sweep_par`/`sweep_grid_par`/`run_jobs_par` merge worker shards in
//!   canonical order), and with the solve cache warm or cold.
//! * **No ambient inputs.** Library code takes seeds, times, and
//!   configuration as parameters — never from wall clocks
//!   (`Instant`/`SystemTime`), environment variables, or thread identity.
//!   Randomness comes only from in-tree seeded generators (SplitMix64).
//! * **No iteration-order dependence.** `HashMap`/`HashSet` are keyed
//!   stores only; anything order-sensitive (eviction, folds, output)
//!   walks explicit orders — sorted ids, insertion queues, CSR index
//!   order.
//! * **Total float comparisons.** Sorts and extrema over `f64` use
//!   [`f64::total_cmp`]; a NaN leaking from an upstream model degrades
//!   deterministically instead of panicking a sweep or flipping an order.
//! * **Frozen references.** Optimized engines are proven against frozen
//!   pre-refactor copies (`mlf_core::reference`, `mlf_sim::reference`,
//!   `mlf_sim::reference_tree`) by bitwise differentials; reference
//!   modules only ever change in comments.
//!
//! The contract is *enforced*, not aspirational: the workspace linter
//! (`cargo run -p mlf-lint`, in `crates/lint`) checks these invariants —
//! plus hygiene rules (no `unwrap`/`panic!` in library code, no stray
//! `unsafe`, no `dbg!`/`println!` in libraries, `#[ignore]` needs a
//! reason) — token-accurately over the whole tree, and CI fails on any
//! finding.
//!
//! On top of the token rules, an item-level *structural pass* holds the
//! architecture itself to snapshots committed under
//! `crates/lint/snapshots/`:
//!
//! * **Frozen-reference integrity** — comment/whitespace-normalized
//!   fingerprints of `mlf_core::reference`, `mlf_sim::reference`, and
//!   `mlf_sim::reference_tree` (`snapshots/frozen/`); any semantic edit
//!   to a frozen engine is a finding until deliberately re-blessed.
//! * **Crate-layering DAG** — every `mlf_*` dependency edge, from
//!   manifests and `use` declarations alike, must point strictly
//!   downward in `net → core → layering → sim → protocols → scenario →
//!   bench` (the linter itself stays dependency-free).
//! * **API-surface snapshots** — each crate's `pub` item inventory
//!   (`snapshots/api/`) is committed and diffed, so accidental surface
//!   growth or loss is visible in review rather than discovered
//!   downstream.
//! * **Unused pub & differential coverage** — `pub` items no other crate
//!   references are flagged with a `pub(crate)` suggestion, and every
//!   frozen module must be exercised by at least one workspace test.
//!
//! Comment-only edits to a frozen module need nothing. Intentional
//! reference or API changes are re-frozen with
//! `cargo run -p mlf-lint -- --bless`, which regenerates all snapshots
//! deterministically so the diff rides in review alongside the code
//! change. Deliberate exceptions carry inline
//! `// mlf-lint: allow(<rule>, reason = "…")` directives whose reasons
//! are mandatory and whose targets are validated (unknown rules and
//! unused allows are themselves errors).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mlf_core as core;
pub use mlf_layering as layering;
pub use mlf_net as net;
pub use mlf_protocols as protocols;
pub use mlf_scenario as scenario;
pub use mlf_sim as sim;

/// The most commonly used items across all crates, for glob import.
pub mod prelude {
    pub use mlf_core::allocator::{
        Allocator, Hybrid, MultiRate, SingleRate, SolverWorkspace, Unicast, Weighted,
    };
    pub use mlf_core::{
        check_all, Allocation, FairnessReport, LinkRateConfig, LinkRateModel, MaxMinSolution,
        Weights,
    };
    pub use mlf_layering::LayerSchedule;
    pub use mlf_net::{
        Graph, LinkId, Network, NodeId, ReceiverId, Session, SessionId, SessionType, TopologyError,
        TopologyFamily,
    };
    pub use mlf_protocols::{ExperimentParamError, ExperimentParams, ProtocolKind};
    pub use mlf_scenario::{
        CacheStats, LinkRates, ProtocolScenario, ProtocolSweepGrid, ProtocolSweepPoint,
        ProtocolSweepReport, Scenario, ScenarioReport, SolveCache, SweepGrid, SweepReport,
    };
    pub use mlf_sim::{LossProcess, RunningStats, SimRng};
}
