//! # multicast-fairness
//!
//! A full reproduction of **Rubenstein, Kurose & Towsley, "The Impact of
//! Multicast Layering on Network Fairness", ACM SIGCOMM 1999** as a Rust
//! workspace. This umbrella crate re-exports the four library crates:
//!
//! | Crate | Paper section | Contents |
//! |-------|---------------|----------|
//! | [`net`] (`mlf-net`) | §2 model | graphs, links, routing, sessions, topologies, the paper's example networks |
//! | [`core`] (`mlf-core`) | §2–§3 theory | the max-min allocator, fairness properties, min-unfavorable ordering, redundancy |
//! | [`layering`] (`mlf-layering`) | §3 | layer schedules, fixed-layer analysis, quantum join/leave scheduling, random-join redundancy |
//! | [`sim`] (`mlf-sim`) | §4 substrate | deterministic packet-level star simulator, loss processes, statistics |
//! | [`protocols`] (`mlf-protocols`) | §4 | the Uncoordinated/Deterministic/Coordinated protocols, the Figure 8 harness, the Figure 7(a) Markov model |
//!
//! ## Quickstart
//!
//! ```
//! use multicast_fairness::prelude::*;
//!
//! // Build a network: one multi-rate session, two receivers behind
//! // different bottlenecks, plus a competing unicast.
//! let mut g = Graph::new();
//! let src = g.add_node();
//! let hub = g.add_node();
//! let (a, b) = (g.add_node(), g.add_node());
//! g.add_link(src, hub, 10.0).unwrap();
//! g.add_link(hub, a, 2.0).unwrap();
//! g.add_link(hub, b, 6.0).unwrap();
//! let net = Network::new(g, vec![
//!     Session::multi_rate(src, vec![a, b]),
//!     Session::unicast(src, b),
//! ]).unwrap();
//!
//! // The multi-rate max-min fair allocation…
//! let alloc = max_min_allocation(&net);
//! assert_eq!(alloc.rates(), &[vec![2.0, 3.0], vec![3.0]]); // b splits its 6-link with the unicast
//!
//! // …satisfies all four fairness properties (Theorem 1).
//! let cfg = LinkRateConfig::efficient(net.session_count());
//! assert!(check_all(&net, &cfg, &alloc).all_hold());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use mlf_core as core;
pub use mlf_layering as layering;
pub use mlf_net as net;
pub use mlf_protocols as protocols;
pub use mlf_sim as sim;

/// The most commonly used items across all crates, for glob import.
pub mod prelude {
    pub use mlf_core::{
        check_all, max_min_allocation, max_min_allocation_with, multi_rate_max_min,
        single_rate_max_min, Allocation, FairnessReport, LinkRateConfig, LinkRateModel,
    };
    pub use mlf_layering::LayerSchedule;
    pub use mlf_net::{Graph, LinkId, Network, NodeId, ReceiverId, Session, SessionId, SessionType};
    pub use mlf_protocols::{ExperimentParams, ProtocolKind};
    pub use mlf_sim::{LossProcess, RunningStats, SimRng};
}
