//! A fairness audit of a mixed single-rate/multi-rate network: which of the
//! four Section 2 properties hold, for whom, and how the picture changes as
//! single-rate sessions are progressively "replaced" by multi-rate ones
//! (Lemma 3 / Corollary 1) — scenarios over the same topology with
//! different allocators.
//!
//! Run with `cargo run --example fairness_audit`.

use mlf_core::{properties, theory};
use multicast_fairness::prelude::*;

fn main() {
    // The paper's Figure 2 network: the canonical audit target.
    let example = multicast_fairness::net::paper::figure2();
    let net = example.network;
    let cfg = LinkRateConfig::efficient(net.session_count());

    println!("=== Figure 2: S1 single-rate (3 receivers), S2 unicast ===\n");
    let declared = audit(&net, &cfg, Hybrid::as_declared());

    // Replace S1 by its multi-rate twin (Lemma 3's operation).
    println!("\n=== After replacing S1 with an identical multi-rate session ===\n");
    let flipped = audit(
        &net,
        &cfg,
        Hybrid::new(vec![SessionType::MultiRate, SessionType::MultiRate]),
    );

    // The ordering verdict.
    let before = declared.ordered_vector();
    let after = flipped.ordered_vector();
    println!(
        "\nOrdered vectors: {before:?} ≤m {after:?} (Lemma 3 verified: {})",
        multicast_fairness::core::is_min_unfavorable(&before, &after)
    );

    // And a machine-checked pass over the theorems for this network.
    println!(
        "\nTheorem 1 (all-multi-rate): all four properties hold: {}",
        theory::check_theorem1(&net).all_hold()
    );
    let t2 = theory::check_theorem2(&net);
    println!(
        "Theorem 2 on the mixed network: a={} b={} c={} d={} e={}",
        t2.part_a, t2.part_b, t2.part_c, t2.part_d, t2.part_e
    );
}

fn audit(net: &Network, cfg: &LinkRateConfig, allocator: impl Allocator + 'static) -> Allocation {
    let mut scenario = Scenario::builder()
        .label("fairness-audit")
        .network(net.clone())
        .allocator(allocator)
        .build()
        .unwrap();
    let report = scenario.run();
    let alloc = report.solution.allocation;
    for (r, rate) in alloc.iter() {
        println!("  {r}: rate {rate:.2}");
    }
    for j in 0..net.link_count() {
        let link = LinkId(j);
        let u = alloc.link_rate(net, cfg, link);
        let c = net.graph().capacity(link);
        let mark = if alloc.is_fully_utilized(net, cfg, link) {
            " (full)"
        } else {
            ""
        };
        println!("  {link}: {u:.2}/{c:.2}{mark}");
    }
    let report = properties::check_all(net, cfg, &alloc);
    println!(
        "  1. fully-utilized-receiver-fair: {}",
        verdict(
            report.fully_utilized_receiver_fair(),
            &format!("{:?}", report.fully_utilized_violations)
        )
    );
    println!(
        "  2. same-path-receiver-fair:      {}",
        verdict(
            report.same_path_receiver_fair(),
            &format!("{:?}", report.same_path_violations)
        )
    );
    println!(
        "  3. per-receiver-link-fair:       {}",
        verdict(
            report.per_receiver_link_fair(),
            &format!("{:?}", report.per_receiver_link_violations)
        )
    );
    println!(
        "  4. per-session-link-fair:        {}",
        verdict(
            report.per_session_link_fair(),
            &format!("{:?}", report.per_session_link_violations)
        )
    );
    alloc
}

fn verdict(ok: bool, detail: &str) -> String {
    if ok {
        "holds".to_string()
    } else {
        format!("VIOLATED by {detail}")
    }
}
