//! Parallel sweeps over structurally diverse random topologies.
//!
//! This example shows the two PR-2 capabilities together:
//!
//! * `TopologyFamily` — the sweep below draws networks from four different
//!   structural families (flat random trees, balanced k-ary trees,
//!   transit–stub hierarchies, dumbbell meshes) instead of one tree shape;
//! * `Scenario::sweep_par` — each family's 48-seed sweep is sharded across
//!   worker threads, and the merged points are *bitwise identical* to the
//!   serial `sweep`, which the example asserts before reporting.
//!
//! Run with `cargo run --release --example parallel_sweep`.

use multicast_fairness::prelude::*;

fn main() {
    let seeds = 0u64..48;
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "Sweeping {} seeds per family across {threads} worker thread(s)\n",
        seeds.end
    );

    let families = [
        TopologyFamily::FlatTree,
        TopologyFamily::KaryTree { arity: 2 },
        TopologyFamily::TransitStub { transit: 4 },
        TopologyFamily::Dumbbell,
    ];

    let mut cache_lines = Vec::new();
    println!(
        "{:<14} {:>10} {:>14} {:>16}",
        "family", "mean Jain", "mean min rate", "all-props rate"
    );
    for family in families {
        let mut scenario = Scenario::builder()
            .label(format!("parallel-sweep/{}", family.label()))
            .random_networks_with(family, 24, 6, 5)
            .allocator(MultiRate::new())
            .build()
            .expect("valid sweep parameters");

        // The parallel engine must reproduce the serial sweep exactly —
        // same seeds, same bits, regardless of thread count. (Cache
        // telemetry is not part of report equality: the serial sweep uses
        // the scenario's persistent cache, parallel workers their own.)
        let serial = scenario.sweep(seeds.clone());
        let parallel = scenario.sweep_par(seeds.clone(), threads);
        assert_eq!(
            serial,
            parallel,
            "parallel sweep diverged from serial for {}",
            family.label()
        );
        // A warm serial re-sweep is served from the scenario's solve cache.
        let warm = scenario.sweep(seeds.clone());
        assert_eq!(serial, warm);
        cache_lines.push(format!(
            "{:<14} cold: {} misses -> warm re-sweep: {} hits / {} misses",
            family.label(),
            serial.cache.misses,
            warm.cache.hits,
            warm.cache.misses,
        ));

        println!(
            "{:<14} {:>10.4} {:>14.4} {:>16.3}",
            family.label(),
            parallel.mean_jain(),
            parallel.mean_min_rate(),
            parallel.all_properties_rate(),
        );
    }

    // Each scenario's solve cache replays a repeated sweep without
    // re-solving a single point (bitwise identically — asserted above).
    println!("\nSolve-cache effectiveness per family:");
    for line in &cache_lines {
        println!("  {line}");
    }

    // Degenerate requests fail loudly at build time instead of silently
    // running a different experiment (the pre-PR-2 behaviour).
    match Scenario::builder().random_networks(1, 0, 3).build() {
        Err(err) => println!("\nDegenerate sweep request is rejected: {err}"),
        Ok(_) => unreachable!("a 1-node 0-session sweep must not build"),
    }
}
