//! A layered-video scenario (the McCanne-style RLM motivation from the
//! paper's introduction): a source with a fixed exponential layer ladder
//! serving receivers across a heterogeneous tree, showing
//!
//! 1. what each receiver's *ideal* multi-rate max-min fair rate is,
//! 2. the best *fixed* layer subscription below that rate,
//! 3. the quantum join/leave schedule that attains the exact fair rate on
//!    average, and its redundancy with vs without coordination.
//!
//! Run with `cargo run --example layered_video`.

use mlf_layering::{
    layers::LayerSchedule,
    quantum::{self, SelectionMode},
};
use multicast_fairness::prelude::*;

fn main() {
    // A two-level distribution tree: a backbone hop, two regional hubs, and
    // five receivers with diverse last-mile capacities.
    let mut g = Graph::new();
    let src = g.add_node();
    let backbone = g.add_node();
    let (west, east) = (g.add_node(), g.add_node());
    g.add_link(src, backbone, 64.0).unwrap();
    g.add_link(backbone, west, 24.0).unwrap();
    g.add_link(backbone, east, 40.0).unwrap();
    let caps = [3.0, 10.0, 6.0, 28.0, 14.0];
    let mut viewers = Vec::new();
    for (i, &cap) in caps.iter().enumerate() {
        let v = g.add_node();
        let hub = if i < 3 { west } else { east };
        g.add_link(hub, v, cap).unwrap();
        viewers.push(v);
    }
    // A competing unicast on the east hub keeps the example honest.
    let net = Network::new(
        g,
        vec![
            Session::multi_rate(src, viewers.clone()),
            Session::unicast(src, east),
        ],
    )
    .unwrap();

    let ladder = LayerSchedule::exponential(6); // rates 1,1,2,4,8,16
    let mut scenario = Scenario::builder()
        .label("layered-video")
        .network(net.clone())
        .layering(ladder.clone())
        .build()
        .unwrap();
    let report = scenario.run();
    println!("Layer ladder (cumulative): {:?}", ladder.cumulative_rates());
    println!();
    println!("viewer   fair rate   best fixed prefix   fixed rate   deficit");
    let mut fair_rates = Vec::new();
    let fits = &report.layering.as_ref().unwrap().fits;
    for (k, fit) in fits.iter().take(viewers.len()).enumerate() {
        // Session 0's receivers come first (fits are session-major).
        fair_rates.push(fit.fair_rate);
        println!(
            "  r1,{}   {:>7.2}       level {}             {:>6.2}      {:>5.1}%",
            k + 1,
            fit.fair_rate,
            fit.level,
            fit.fixed_rate,
            100.0 * fit.deficit
        );
    }

    // Quantum scheduling recovers the deficit: receivers collect exactly
    // `fair · Δt` packets per quantum from the one layer above their fixed
    // prefix. Compare coordinated vs random packet choice on the backbone.
    let sigma_packets = 64; // packets per quantum at full ladder rate
    let quotas: Vec<usize> = fair_rates
        .iter()
        .map(|f| ((f / ladder.total_rate()) * sigma_packets as f64).round() as usize)
        .collect();
    println!("\nPer-quantum packet quotas on the backbone: {quotas:?}");
    for (label, mode) in [
        ("coordinated (nested prefixes)", SelectionMode::Prefix),
        ("uncoordinated (random subsets)", SelectionMode::Random),
    ] {
        let red = quantum::long_term_redundancy(&quotas, sigma_packets, 200, mode, 7)
            .expect("nonzero quotas");
        println!("  backbone redundancy, {label}: {red:.3}");
    }
    println!("\nCoordinated joins keep every byte on the backbone useful;");
    println!("random joins make the session carry overlapping packet sets.");
}
