//! Quickstart: declare a scenario, run it, audit the four fairness
//! properties, and see the single-rate penalty — the `Scenario` builder
//! version of the paper's core comparison.
//!
//! Run with `cargo run --example quickstart`.

use multicast_fairness::prelude::*;

fn main() {
    // A small content-distribution scenario: one video source multicasts to
    // three receivers with heterogeneous access links while a unicast bulk
    // transfer competes on the fast branch.
    //
    //                 ┌─ 2 Mb/s ── viewer A (DSL)
    //  source ─ 20 ──hub─ 8 Mb/s ── viewer B (cable)   + unicast to B's node
    //                 └─ 5 Mb/s ── viewer C (wireless)
    let mut g = Graph::new();
    let source = g.add_node();
    let hub = g.add_node();
    let (a, b, c) = (g.add_node(), g.add_node(), g.add_node());
    g.add_link(source, hub, 20.0).unwrap();
    g.add_link(hub, a, 2.0).unwrap();
    g.add_link(hub, b, 8.0).unwrap();
    g.add_link(hub, c, 5.0).unwrap();

    let sessions = vec![
        Session::multi_rate(source, vec![a, b, c]), // S1: layered video
        Session::unicast(source, b),                // S2: bulk transfer
    ];
    let net = Network::new(g, sessions).unwrap();

    // ---- Multi-rate (layered) allocation --------------------------------
    let mut multi_scenario = Scenario::builder()
        .label("quickstart/multi-rate")
        .network(net.clone())
        .allocator(MultiRate::new())
        .build()
        .unwrap();
    let multi = multi_scenario.run();
    println!("Multi-rate (layered) max-min fair allocation:");
    print_report(&net, &multi);

    // ---- Single-rate counterfactual --------------------------------------
    let mut single_scenario = Scenario::builder()
        .label("quickstart/single-rate")
        .network(net.clone())
        .allocator(SingleRate::new())
        .build()
        .unwrap();
    let single = single_scenario.run();
    println!("Single-rate counterfactual (same members, chi flipped):");
    print_report(&net, &single);

    // ---- The ordering verdict (Lemma 3 / Corollary 1) ---------------------
    let worse = single.solution.allocation.ordered_vector();
    let better = multi.solution.allocation.ordered_vector();
    assert!(multicast_fairness::core::is_min_unfavorable(
        &worse, &better
    ));
    println!("\nOrdered rate vectors: single-rate {worse:?} ≤m multi-rate {better:?}");
    println!("=> layering makes the allocation strictly more max-min fair, and");
    println!("   every viewer's rate is independent of the slowest branch.");
}

fn print_report(net: &Network, report: &ScenarioReport) {
    for (r, rate) in report.solution.allocation.iter() {
        let kind = if net.session(r.session).kind.is_multi_rate() {
            "multi-rate"
        } else {
            "single-rate"
        };
        println!("  {r} ({kind}): {rate:.2}");
    }
    println!(
        "  fairness properties holding: {}/4  (Jain {:.3}, satisfaction {:.3})\n",
        report.fairness.as_ref().expect("audited").count_holding(),
        report.metrics.jain_index,
        report.metrics.satisfaction,
    );
}
