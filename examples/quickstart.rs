//! Quickstart: build a network, compute the max-min fair allocation, audit
//! the four fairness properties, and see the single-rate penalty.
//!
//! Run with `cargo run --example quickstart`.

use multicast_fairness::prelude::*;

fn main() {
    // A small content-distribution scenario: one video source multicasts to
    // three receivers with heterogeneous access links while a unicast bulk
    // transfer competes on the fast branch.
    //
    //                 ┌─ 2 Mb/s ── viewer A (DSL)
    //  source ─ 20 ──hub─ 8 Mb/s ── viewer B (cable)   + unicast to B's node
    //                 └─ 5 Mb/s ── viewer C (wireless)
    let mut g = Graph::new();
    let source = g.add_node();
    let hub = g.add_node();
    let (a, b, c) = (g.add_node(), g.add_node(), g.add_node());
    g.add_link(source, hub, 20.0).unwrap();
    g.add_link(hub, a, 2.0).unwrap();
    g.add_link(hub, b, 8.0).unwrap();
    g.add_link(hub, c, 5.0).unwrap();

    let sessions = vec![
        Session::multi_rate(source, vec![a, b, c]), // S1: layered video
        Session::unicast(source, b),                // S2: bulk transfer
    ];
    let net = Network::new(g, sessions).unwrap();
    let cfg = LinkRateConfig::efficient(net.session_count());

    // ---- Multi-rate (layered) allocation --------------------------------
    let multi = max_min_allocation(&net);
    println!("Multi-rate (layered) max-min fair allocation:");
    print_alloc(&net, &multi);
    let report = check_all(&net, &cfg, &multi);
    println!(
        "  fairness properties holding: {}/4 (Theorem 1 says 4)\n",
        report.count_holding()
    );

    // ---- Single-rate counterfactual --------------------------------------
    let single_net = net.with_uniform_kind(SessionType::SingleRate);
    let single = max_min_allocation(&single_net);
    println!("Single-rate counterfactual (same members, chi flipped):");
    print_alloc(&single_net, &single);
    let sreport = check_all(&single_net, &cfg, &single);
    println!(
        "  fairness properties holding: {}/4",
        sreport.count_holding()
    );

    // ---- The ordering verdict (Lemma 3 / Corollary 1) ---------------------
    let worse = single.ordered_vector();
    let better = multi.ordered_vector();
    assert!(mlf_core::is_min_unfavorable(&worse, &better));
    println!(
        "\nOrdered rate vectors: single-rate {worse:?} ≤m multi-rate {better:?}"
    );
    println!("=> layering makes the allocation strictly more max-min fair, and");
    println!("   every viewer's rate is independent of the slowest branch.");
}

fn print_alloc(net: &Network, alloc: &Allocation) {
    for (r, rate) in alloc.iter() {
        let kind = if net.session(r.session).kind.is_multi_rate() {
            "multi-rate"
        } else {
            "single-rate"
        };
        println!("  {r} ({kind}): {rate:.2}");
    }
}
