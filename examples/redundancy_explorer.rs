//! Explore redundancy from three angles in one run:
//!
//! 1. the analytic single-layer random-join curve (Figure 5's machinery),
//! 2. its Monte-Carlo confirmation on sampled packet subsets,
//! 3. the network-level fair-rate damage (Figure 6's model) measured on an
//!    actual allocator run, not just the closed form.
//!
//! Run with `cargo run --release --example redundancy_explorer`.

use mlf_core::redundancy;
use mlf_layering::randomjoin::{self, Figure5Config};
use multicast_fairness::prelude::*;

fn main() {
    println!("== 1. Single-layer redundancy under random joins (σ = 1) ==\n");
    println!("receivers   All 0.1   All 0.5   1st .5/.1   All 0.9   1st .9/.1");
    for r in [1usize, 2, 5, 10, 20, 50, 100] {
        let reds: Vec<f64> = Figure5Config::ALL
            .iter()
            .map(|c| randomjoin::analytic_redundancy(&c.rates(r), 1.0))
            .collect();
        println!(
            "  {r:>5}    {:>7.3}   {:>7.3}   {:>8.3}   {:>7.3}   {:>8.3}",
            reds[0], reds[1], reds[2], reds[3], reds[4]
        );
    }

    println!("\n== 2. Monte-Carlo confirmation (σ = 100 packets, 200 quanta) ==\n");
    for (cfg, r) in [(Figure5Config::All05, 4usize), (Figure5Config::All01, 20)] {
        let analytic = randomjoin::analytic_redundancy(&cfg.rates(r), 1.0);
        let mc = randomjoin::monte_carlo_redundancy(cfg, r, 100, 200, 2024);
        println!(
            "  {} with {r} receivers: analytic {analytic:.3}, simulated {mc:.3}",
            cfg.label()
        );
    }

    println!("\n== 3. Fair-rate damage on a real bottleneck (Figure 6 model) ==\n");
    // 10 sessions on a capacity-100 link; sweep how many are redundant at
    // v = 3 and compare allocator output with the closed form.
    let capacity = 100.0;
    let n = 10;
    println!("redundant sessions m   measured fair rate   c/((n-m)+m*v)");
    let mut ws = SolverWorkspace::new();
    for m in [0usize, 1, 3, 5, 10] {
        let (net, cfg) = bottleneck_network(capacity, n, m, 3.0);
        let alloc = Hybrid::as_declared()
            .with_config(cfg.clone())
            .solve(&net, &mut ws)
            .allocation;
        let measured = alloc.min_rate();
        let predicted = mlf_core::bottleneck_fair_rate(capacity, n, m, 3.0);
        println!("  {m:>10}            {measured:>10.3}         {predicted:>10.3}");
        // The shared link's worst redundancy is v for m > 0.
        if m > 0 {
            let worst = redundancy::max_redundancy(&net, &cfg, &alloc);
            assert!((worst - 3.0).abs() < 1e-6);
        }
    }
    println!("\nEven a minority of high-redundancy sessions measurably cuts");
    println!("everyone's fair share; at m/n ≤ 5% the damage stays small —");
    println!("the paper's argument for tolerating layered multicast today.");
}

/// `n` sessions pinned on one bottleneck link; the first `m` are 2-receiver
/// multi-rate sessions with redundancy `v`, the rest unicasts.
fn bottleneck_network(capacity: f64, n: usize, m: usize, v: f64) -> (Network, LinkRateConfig) {
    let mut g = Graph::new();
    let src = g.add_node();
    let hub = g.add_node();
    g.add_link(src, hub, capacity).unwrap();
    let mut sessions = Vec::new();
    for i in 0..n {
        if i < m {
            let a = g.add_node();
            let b = g.add_node();
            g.add_link(hub, a, capacity * 10.0).unwrap();
            g.add_link(hub, b, capacity * 10.0).unwrap();
            sessions.push(Session::multi_rate(src, vec![a, b]));
        } else {
            sessions.push(Session::unicast(src, hub));
        }
    }
    let net = Network::new(g, sessions).unwrap();
    let mut cfg = LinkRateConfig::efficient(n);
    for i in 0..m {
        cfg = cfg.with_session(i, LinkRateModel::Scaled(v));
    }
    (net, cfg)
}
