//! Run the three Section 4 congestion-control protocols on the Figure 7(b)
//! star and compare their shared-link redundancy — a scaled-down Figure 8
//! point driven through the `ProtocolScenario` parallel sweep engine, plus
//! the exact two-receiver Markov answer.
//!
//! Run with `cargo run --release --example protocol_comparison
//! [-- [--threads N] [--sweep-seeds N]]`. The sweep output is bitwise
//! independent of `--threads`; `--sweep-seeds` pools extra replicate base
//! seeds per protocol for tighter confidence intervals.

use mlf_protocols::{markov, ExperimentParams, ProtocolKind};
use mlf_scenario::{ProtocolScenario, ProtocolSweepGrid};
use mlf_sim::RunningStats;

/// Parse the example's two optional `--key value` knobs (threads,
/// sweep-seeds) without pulling in the bench crate's CLI.
fn parse_args() -> (usize, u64) {
    let (mut threads, mut sweep_seeds) = (0usize, 4u64);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let value = it.next();
        let parsed = value.as_deref().map(str::parse::<u64>);
        match (flag.as_str(), parsed) {
            ("--threads", Some(Ok(v))) => threads = v as usize,
            ("--sweep-seeds", Some(Ok(v))) if v > 0 => sweep_seeds = v,
            _ => {
                eprintln!(
                    "usage: protocol_comparison [--threads N] [--sweep-seeds N>=1] (got {flag:?})"
                );
                std::process::exit(2);
            }
        }
    }
    (threads, sweep_seeds)
}

/// The one independent-loss point this comparison sweeps (and prints).
const INDEPENDENT_LOSS: f64 = 0.05;

fn main() {
    let (threads, sweep_seeds) = parse_args();

    // One Figure 8 point, scaled down to run in seconds in a demo:
    // 40 receivers, 8 layers, 40k packets, 5 trials per seed.
    let template = ExperimentParams {
        receivers: 40,
        packets: 40_000,
        trials: 5,
        ..ExperimentParams::quick(0.0001, INDEPENDENT_LOSS).unwrap()
    };
    let scenario = ProtocolScenario::builder()
        .label("protocol-comparison")
        .template(template)
        .build()
        .expect("quick() already validated the losses");
    println!(
        "Star: {} receivers, {} layers, shared loss {}, independent loss {INDEPENDENT_LOSS}",
        template.receivers, template.layers, template.shared_loss,
    );
    println!(
        "{} packets x {} trials x {sweep_seeds} seeds per protocol, worker threads: {}\n",
        template.packets,
        template.trials,
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );

    // The grid: one loss point × all three protocols × `sweep_seeds`
    // replicate base seeds, sharded across worker threads. The merged
    // output is bitwise identical to the serial sweep at any thread count.
    let grid = ProtocolSweepGrid::independent_losses([INDEPENDENT_LOSS])
        .with_seeds(template.seed..template.seed + sweep_seeds);
    let report = scenario.sweep_par(&grid, threads);

    println!(
        "protocol        redundancy (mean ± 95% CI)   mean level   goodput   observed loss   \
         per-rx goodput [min..max] σ"
    );
    for kind in ProtocolKind::ALL {
        let mut redundancy = RunningStats::new();
        let mut level = RunningStats::new();
        let mut goodput = RunningStats::new();
        let mut loss = RunningStats::new();
        let mut per_rx = RunningStats::new();
        for point in report.points_for(kind) {
            redundancy.merge(&point.outcome.redundancy);
            level.merge(&point.outcome.mean_level);
            goodput.merge(&point.outcome.goodput);
            loss.merge(&point.outcome.observed_loss);
            per_rx.merge(point.receiver_goodput());
        }
        println!(
            "  {:<14} {:>6.3} ± {:<6.3}             {:>6.2}     {:>7.4}   {:>7.4}         \
             [{:.4}..{:.4}] {:.4}",
            kind.label(),
            redundancy.mean(),
            redundancy.ci95_half_width(),
            level.mean(),
            goodput.mean(),
            loss.mean(),
            per_rx.min(),
            per_rx.max(),
            per_rx.std_dev(),
        );
    }

    // The exact two-receiver chain (Figure 7a) for the same loss setting.
    println!("\nExact 2-receiver Markov redundancy (Figure 7a):");
    for kind in ProtocolKind::ALL {
        let model = markov::two_receiver_chain(
            kind,
            8,
            template.shared_loss,
            INDEPENDENT_LOSS,
            INDEPENDENT_LOSS,
        );
        println!(
            "  {:<14} {:>6.3}",
            kind.label(),
            model.stationary_redundancy()
        );
    }

    println!("\nSender coordination keeps redundancy lowest; uncoordinated");
    println!("probing desynchronizes receivers, so the shared link carries");
    println!("layers only the momentarily-luckiest receiver uses.");
}
