//! Run the three Section 4 congestion-control protocols on the Figure 7(b)
//! star and compare their shared-link redundancy — a scaled-down Figure 8
//! point plus the exact two-receiver Markov answer.
//!
//! Run with `cargo run --release --example protocol_comparison`.

use mlf_protocols::{experiment, markov, ExperimentParams, ProtocolKind};

fn main() {
    // One Figure 8 point, scaled down to run in seconds in a demo:
    // 40 receivers, 8 layers, 40k packets, 5 trials.
    let params = ExperimentParams {
        receivers: 40,
        packets: 40_000,
        trials: 5,
        ..ExperimentParams::quick(0.0001, 0.05)
    };
    println!(
        "Star: {} receivers, {} layers, shared loss {}, independent loss {}",
        params.receivers, params.layers, params.shared_loss, params.independent_loss
    );
    println!(
        "{} packets x {} trials per protocol\n",
        params.packets, params.trials
    );

    println!("protocol        redundancy (mean ± 95% CI)   mean level   goodput");
    for kind in ProtocolKind::ALL {
        let out = experiment::run_point(kind, &params);
        println!(
            "  {:<14} {:>6.3} ± {:<6.3}             {:>6.2}     {:>7.4}",
            kind.label(),
            out.redundancy.mean(),
            out.redundancy.ci95_half_width(),
            out.mean_level.mean(),
            out.goodput.mean(),
        );
    }

    // The exact two-receiver chain (Figure 7a) for the same loss setting.
    println!("\nExact 2-receiver Markov redundancy (Figure 7a):");
    for kind in ProtocolKind::ALL {
        let model = markov::two_receiver_chain(kind, 8, 0.0001, 0.05, 0.05);
        println!(
            "  {:<14} {:>6.3}",
            kind.label(),
            model.stationary_redundancy()
        );
    }

    println!("\nSender coordination keeps redundancy lowest; uncoordinated");
    println!("probing desynchronizes receivers, so the shared link carries");
    println!("layers only the momentarily-luckiest receiver uses.");
}
