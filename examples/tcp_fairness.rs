//! Weighted (TCP-fairness-style) max-min — the paper's Section 5 proposal,
//! implemented: weight each receiver by the inverse of its round-trip time
//! and compute the weighted multi-rate max-min fair allocation.
//!
//! The scenario: three long-lived unicast flows with very different RTTs
//! and one layered multicast session, all crossing a 40 Mb/s core link.
//! Unweighted max-min splits the core evenly; RTT weighting reproduces what
//! a field of competing TCP flows would enforce (short RTT wins), while the
//! multicast receivers still detach from each other's access bottlenecks.
//!
//! An instructive subtlety this example surfaces: *within* a multi-rate
//! session, receiver weights wash out on shared links — the session's link
//! usage is the max receiver rate, so session-mates converge toward the
//! session's maximum there regardless of their own weights (they ride the
//! saturated link as "free riders"). Weights differentiate *competing
//! sessions*, exactly like TCP flows.
//!
//! Run with `cargo run --example tcp_fairness`.

use mlf_core::metrics;
use multicast_fairness::prelude::*;

fn main() {
    let mut g = Graph::new();
    let (src, hub) = (g.add_node(), g.add_node());
    g.add_link(src, hub, 40.0).unwrap(); // the contested core

    // Three unicast flows terminate at the hub side (ample egress).
    let flows = [
        ("metro 10ms", 0.010),
        ("continental 80ms", 0.080),
        ("satellite 300ms", 0.300),
    ];

    // The multicast session fans out behind the hub: a slow DSL tail and a
    // fast fiber tail.
    let dsl = g.add_node();
    let fiber = g.add_node();
    g.add_link(hub, dsl, 5.0).unwrap();
    g.add_link(hub, fiber, 50.0).unwrap();

    let mut sessions = vec![Session::multi_rate(src, vec![dsl, fiber])];
    for _ in &flows {
        sessions.push(Session::unicast(src, hub));
    }
    let net = Network::new(g, sessions).unwrap();

    // Both regimes through the Allocator trait, sharing one workspace.
    let mut ws = SolverWorkspace::new();
    let unweighted = MultiRate::new().solve(&net, &mut ws).allocation;
    // Session receivers at a common 50 ms RTT; unicasts per their spec.
    let weights = Weights::from_values(vec![
        vec![1.0 / 0.050, 1.0 / 0.050],
        vec![1.0 / flows[0].1],
        vec![1.0 / flows[1].1],
        vec![1.0 / flows[2].1],
    ]);
    let weighted = Weighted::new(weights).solve(&net, &mut ws).allocation;

    println!("flow / receiver        unweighted   RTT-weighted");
    println!(
        "  mcast @ DSL (5)       {:>8.2}     {:>8.2}",
        unweighted.rate(ReceiverId::new(0, 0)),
        weighted.rate(ReceiverId::new(0, 0))
    );
    println!(
        "  mcast @ fiber (50)    {:>8.2}     {:>8.2}",
        unweighted.rate(ReceiverId::new(0, 1)),
        weighted.rate(ReceiverId::new(0, 1))
    );
    for (i, (name, _)) in flows.iter().enumerate() {
        let r = ReceiverId::new(1 + i, 0);
        println!(
            "  {:<20}  {:>8.2}     {:>8.2}",
            name,
            unweighted.rate(r),
            weighted.rate(r)
        );
    }

    let cfg = LinkRateConfig::efficient(net.session_count());
    assert!(weighted.is_feasible(&net, &cfg));
    println!(
        "\ncore link load: unweighted {:.1}/40, weighted {:.1}/40",
        unweighted.link_rate(&net, &cfg, LinkId(0)),
        weighted.link_rate(&net, &cfg, LinkId(0))
    );

    println!("\nmetric            unweighted   RTT-weighted");
    println!(
        "  Jain index       {:>8.3}     {:>8.3}",
        metrics::jain_index(&unweighted),
        metrics::jain_index(&weighted)
    );
    println!(
        "  satisfaction     {:>8.3}     {:>8.3}",
        metrics::satisfaction(&net, &unweighted),
        metrics::satisfaction(&net, &weighted)
    );

    println!("\nShort-RTT flows take the TCP-like larger share under weighting;");
    println!("the DSL receiver keeps its own 5 Mb/s bottleneck in both worlds —");
    println!("layering's receiver independence is orthogonal to the weighting.");
}
