//! A scaled-down Figure 8 smoke test: the paper's qualitative claims must
//! hold even at reduced receiver counts / packet budgets, so CI catches
//! regressions in the protocols without paying for the full reproduction.

use mlf_protocols::{experiment, ExperimentParams, ProtocolKind};

fn params(shared: f64, independent: f64) -> ExperimentParams {
    ExperimentParams {
        layers: 8,
        receivers: 24,
        shared_loss: shared,
        independent_loss: independent,
        packets: 30_000,
        trials: 4,
        seed: 0xF168,
        join_latency: 0,
        leave_latency: 0,
    }
}

#[test]
fn coordinated_is_lowest_at_every_probed_point() {
    for shared in [0.0001, 0.05] {
        for independent in [0.02, 0.08] {
            let p = params(shared, independent);
            let unc = experiment::run_point(ProtocolKind::Uncoordinated, &p)
                .redundancy
                .mean();
            let coo = experiment::run_point(ProtocolKind::Coordinated, &p)
                .redundancy
                .mean();
            assert!(
                coo < unc,
                "shared {shared}, indep {independent}: coordinated {coo} !< uncoordinated {unc}"
            );
        }
    }
}

#[test]
fn redundancy_stays_inside_the_papers_envelope() {
    // "redundancy remains fairly low (below 5) for reasonable loss rates"
    // and "Coordinated ... below 2.5".
    for kind in ProtocolKind::ALL {
        for independent in [0.01, 0.05, 0.1] {
            let p = params(0.0001, independent);
            let red = experiment::run_point(kind, &p).redundancy.mean();
            assert!(red < 5.0, "{}: {red} at {independent}", kind.label());
            if kind == ProtocolKind::Coordinated {
                assert!(red < 2.5, "Coordinated {red} at {independent}");
            }
        }
    }
}

#[test]
fn high_shared_loss_compresses_the_curves() {
    // Figure 8(b) vs 8(a): at the same independent loss, shifting shared
    // loss from 1e-4 to 0.05 lowers the coordinated-protocol redundancy
    // (shared loss synchronizes leaves).
    for kind in [ProtocolKind::Deterministic, ProtocolKind::Coordinated] {
        let low_shared = experiment::run_point(kind, &params(0.0001, 0.06))
            .redundancy
            .mean();
        let high_shared = experiment::run_point(kind, &params(0.05, 0.06))
            .redundancy
            .mean();
        assert!(
            high_shared < low_shared,
            "{}: {high_shared} !< {low_shared}",
            kind.label()
        );
    }
}

#[test]
fn redundancy_grows_along_the_independent_loss_axis() {
    // Beyond the small-loss knee, more independent loss means more
    // desynchronization and more redundancy.
    for kind in ProtocolKind::ALL {
        let lo = experiment::run_point(kind, &params(0.0001, 0.02))
            .redundancy
            .mean();
        let hi = experiment::run_point(kind, &params(0.0001, 0.1))
            .redundancy
            .mean();
        assert!(hi > lo * 0.95, "{}: {hi} vs {lo}", kind.label());
    }
}
