//! Star ↔ tree engine agreement: `run_tree` on a [`star_network`] must
//! reproduce `run_star`'s per-receiver counters exactly.
//!
//! The two engines model the same physics when the tree *is* the modified
//! star — link 0 the shared sender→hub link, link `r + 1` receiver `r`'s
//! fanout — but they are separate implementations with separate RNG
//! stream layouts (the star splits substreams per *receiver* plus one
//! shared stream; the tree splits per *link id*). The engines can
//! therefore only be compared bit-for-bit on loss processes that consume
//! **zero RNG draws**, which `SimRng::bernoulli` guarantees for `p ∈ {0, 1}`
//! (it short-circuits without advancing the stream). Two such regimes:
//!
//! * **Deterministic Bernoulli** (`p` 0 or 1 per link) under *arbitrary*
//!   join/leave latencies — fates are functions of the link alone, so the
//!   engines' different carried-link bookkeeping under latency (the tree
//!   samples a fanout link whenever the receiver is effectively
//!   subscribed, the star only when it also still wants the layer) cannot
//!   leak into the counters.
//! * **Deterministic periodic Gilbert–Elliott** (both transition
//!   probabilities 1, loss 0 in Good and 1 in Bad) at *zero* latency —
//!   the loss state advances exactly on the slots the link carries, and
//!   with zero latency the two engines' carried-slot sets coincide. One
//!   extra caveat applies on the fanouts: the star computes
//!   `lost_shared || fanout.sample(..)` with a short-circuit, so when the
//!   shared packet is already lost the star's fanout chain does *not*
//!   advance while the tree's does. Stateful fanout processes therefore
//!   stay in lockstep only under a lossless shared link.
//!
//! Within those regimes every per-receiver counter (`offered`,
//! `delivered`, `congestion_events`, `final_levels`) and the shared-link
//! carry count (`shared_carried` vs `carried[0]`) must agree exactly for
//! every protocol state machine.

use mlf_net::topology::star_network;
use mlf_net::LinkId;
use mlf_protocols::{make_receiver, CoordinatedSender, ProtocolKind};
use mlf_sim::engine::{MarkerSource, NoMarkers, ReceiverController, StarConfig};
use mlf_sim::tree::{run_tree_expect, TreeConfig};
use mlf_sim::{run_star, LossProcess, SimRng, Tick};

const KINDS: [ProtocolKind; 3] = ProtocolKind::ALL;
const LATENCIES: [(Tick, Tick); 4] = [(0, 0), (0, 37), (19, 0), (11, 23)];

enum Markers {
    None(NoMarkers),
    Coordinated(CoordinatedSender),
}

impl MarkerSource for Markers {
    fn marker(&mut self, slot: Tick, layer: usize) -> Option<usize> {
        match self {
            Markers::None(m) => m.marker(slot, layer),
            Markers::Coordinated(m) => m.marker(slot, layer),
        }
    }
}

fn rig(
    kind: ProtocolKind,
    receivers: usize,
    layers: usize,
    seed: u64,
) -> (Vec<Box<dyn ReceiverController>>, Markers) {
    let base = SimRng::seed_from_u64(seed ^ 0xABCD_EF01_2345_6789);
    let controllers = (0..receivers)
        .map(|r| make_receiver(kind, base.split(1_000_000 + r as u64)))
        .collect();
    let markers = match kind {
        ProtocolKind::Coordinated => Markers::Coordinated(CoordinatedSender::new(layers)),
        _ => Markers::None(NoMarkers),
    };
    (controllers, markers)
}

/// Loss on every carried slot, then none, alternating — a Gilbert–Elliott
/// chain with certain transitions and certain per-state fates. Consumes no
/// RNG draws (all four probabilities short-circuit) but is *stateful*: the
/// pattern advances only on the slots the link actually carries.
fn periodic_loss() -> LossProcess {
    LossProcess::GilbertElliott {
        p_good_to_bad: 1.0,
        p_bad_to_good: 1.0,
        loss_good: 0.0,
        loss_bad: 1.0,
        in_bad: false,
    }
}

/// Run both engines on the same modified star and assert the per-receiver
/// counters and the shared-link carry count agree exactly.
#[allow(clippy::too_many_arguments)]
fn assert_star_tree_agree(
    label: &str,
    layers: usize,
    shared: LossProcess,
    fanout: Vec<LossProcess>,
    latencies: (Tick, Tick),
    kind: ProtocolKind,
    slots: u64,
    seed: u64,
) {
    let n = fanout.len();
    let mut star_cfg = StarConfig::figure8(layers, n, 0.0, 0.0);
    star_cfg.shared_loss = shared.clone();
    star_cfg.fanout_loss = fanout.clone();
    let star_cfg = star_cfg.with_latencies(latencies.0, latencies.1);

    // star_network's link order is the star engine's implicit one: link 0
    // is the shared sender→hub link, link r+1 is receiver r's fanout.
    let net = star_network(n, 1000.0, 1000.0);
    let mut link_loss = Vec::with_capacity(n + 1);
    link_loss.push(shared);
    link_loss.extend(fanout);
    let tree_cfg = TreeConfig {
        layer_rates: star_cfg.layer_rates.clone(),
        link_loss,
        join_latency: latencies.0,
        leave_latency: latencies.1,
    };

    let (mut star_ctls, mut star_mk) = rig(kind, n, layers, seed);
    let star = run_star(&star_cfg, &mut star_ctls, &mut star_mk, slots, seed);
    let (mut tree_ctls, mut tree_mk) = rig(kind, n, layers, seed);
    let tree = run_tree_expect(&net, &tree_cfg, &mut tree_ctls, &mut tree_mk, slots, seed);

    assert_eq!(star.offered, tree.offered, "{label}: offered");
    assert_eq!(star.delivered, tree.delivered, "{label}: delivered");
    assert_eq!(
        star.congestion_events, tree.congestion_events,
        "{label}: congestion_events"
    );
    assert_eq!(
        star.final_levels, tree.final_levels,
        "{label}: final_levels"
    );
    assert_eq!(
        star.shared_carried,
        tree.carried[LinkId(0).0],
        "{label}: shared carry count"
    );
}

/// Deterministic Bernoulli mixes (per-link loss 0 or 1) under the full
/// latency grid: dead fanouts, a lossless path, and a dead shared link.
#[test]
fn deterministic_bernoulli_agrees_under_latency() {
    for kind in KINDS {
        for &(join, leave) in &LATENCIES {
            for (name, shared_p, dead_mask) in [
                ("lossless", 0.0, 0usize),
                ("dead fanouts", 0.0, 0b10101),
                ("dead shared", 1.0, 0b00110),
            ] {
                let n = 9;
                let fanout = (0..n)
                    .map(|r| {
                        LossProcess::bernoulli(if dead_mask >> (r % 5) & 1 == 1 {
                            1.0
                        } else {
                            0.0
                        })
                    })
                    .collect();
                assert_star_tree_agree(
                    &format!("{name} {} lat=({join},{leave})", kind.label()),
                    6,
                    LossProcess::bernoulli(shared_p),
                    fanout,
                    (join, leave),
                    kind,
                    12_000,
                    0xA11CE ^ join ^ (leave << 8),
                );
            }
        }
    }
}

/// Stateful-but-drawless periodic loss at zero latency: the carried-slot
/// sets coincide, so the Gilbert–Elliott chains stay in lockstep even
/// though they live in differently-split RNG worlds.
#[test]
fn periodic_gilbert_elliott_agrees_at_zero_latency() {
    for kind in KINDS {
        for (name, shared, periodic_mask, dead_mask) in [
            // Stateful fanouts need a lossless shared link (see module
            // docs): the star's short-circuited fanout draw would
            // otherwise freeze its chains on shared-loss slots.
            ("periodic shared", periodic_loss(), 0usize, 0usize),
            ("periodic fanouts", LossProcess::bernoulli(0.0), 0b01101, 0),
            ("periodic shared, dead fanouts", periodic_loss(), 0, 0b10010),
        ] {
            let n = 11;
            let fanout = (0..n)
                .map(|r| {
                    if periodic_mask >> (r % 5) & 1 == 1 {
                        periodic_loss()
                    } else if dead_mask >> (r % 5) & 1 == 1 {
                        LossProcess::bernoulli(1.0)
                    } else {
                        LossProcess::bernoulli(0.0)
                    }
                })
                .collect();
            assert_star_tree_agree(
                &format!("{name} {}", kind.label()),
                8,
                shared,
                fanout,
                (0, 0),
                kind,
                12_000,
                0xB0B,
            );
        }
    }
}
