//! Differential test for the parallel sweep executor: `Scenario::sweep_par`
//! and `Scenario::sweep_grid_par` must be **bitwise identical** to the
//! serial `sweep`/`sweep_grid` for the same seeds, at any thread count.
//!
//! The per-thread-count tests are named so CI can pin the 2- and 8-thread
//! configurations explicitly:
//! `cargo test --test parallel_sweep_differential -- two_threads eight_threads`.

use multicast_fairness::prelude::*;

/// Families × allocators the differential runs over. Everything the sweep
/// reports (metrics, property counts, model tags) must agree to the bit —
/// `SweepReport` equality compares raw f64s, so any divergence in merge
/// order, workspace reuse, or per-thread solve state fails the assert.
fn scenarios() -> Vec<Scenario> {
    let families = [
        TopologyFamily::FlatTree,
        TopologyFamily::KaryTree { arity: 3 },
        TopologyFamily::TransitStub { transit: 4 },
        TopologyFamily::Dumbbell,
    ];
    families
        .into_iter()
        .map(|family| {
            Scenario::builder()
                .label(format!("differential/{}", family.label()))
                .random_networks_with(family, 18, 5, 4)
                .allocator(MultiRate::new())
                .build()
                .expect("valid differential scenario")
        })
        .collect()
}

fn assert_identical_at(threads: usize) {
    for mut scenario in scenarios() {
        let label = scenario.label().to_string();
        let serial = scenario.sweep(0..32);
        let parallel = scenario.sweep_par(0..32, threads);
        assert_eq!(serial, parallel, "{label}: sweep_par({threads}) diverged");

        let grid = SweepGrid::seeds(0..8).with_models([
            LinkRateModel::Efficient,
            LinkRateModel::Scaled(2.0),
            LinkRateModel::RandomJoin { sigma: 4.0 },
        ]);
        let serial_grid = scenario.sweep_grid(&grid);
        let parallel_grid = scenario.sweep_grid_par(&grid, threads);
        assert_eq!(
            serial_grid, parallel_grid,
            "{label}: sweep_grid_par({threads}) diverged"
        );
    }
}

#[test]
fn parallel_sweep_matches_serial_on_two_threads() {
    assert_identical_at(2);
}

#[test]
fn parallel_sweep_matches_serial_on_four_threads() {
    assert_identical_at(4);
}

#[test]
fn parallel_sweep_matches_serial_on_eight_threads() {
    assert_identical_at(8);
}

#[test]
fn parallel_sweep_matches_serial_with_more_threads_than_seeds() {
    // Thread counts beyond the job count collapse to one job per worker;
    // the merge contract must still hold.
    assert_identical_at(64);
}

#[test]
fn fixed_network_sweeps_also_shard_cleanly() {
    // Fixed sources ignore seeds, but the executor path is shared; a
    // layered scenario exercises the report-side state too.
    let example = mlf_net::paper::figure2();
    let mut scenario = Scenario::builder()
        .label("differential/fixed")
        .network(example.network.clone())
        .allocator(Hybrid::as_declared())
        .layering(LayerSchedule::exponential(4))
        .build()
        .unwrap();
    let serial = scenario.sweep(0..16);
    for threads in [2, 8] {
        assert_eq!(serial, scenario.sweep_par(0..16, threads));
    }
}
