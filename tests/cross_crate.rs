//! End-to-end integration: the crates composed the way the paper composes
//! its sections — theory (§2) feeding layering (§3) feeding protocols (§4).

use mlf_core::{
    linkrate::{LinkRateConfig, LinkRateModel},
    redundancy,
};
use mlf_layering::{layers::LayerSchedule, quantum, randomjoin};
use mlf_net::{paper, topology, ReceiverId, Session, SessionId};
use multicast_fairness::prelude::*;

/// §2 -> §3: take the multi-rate max-min fair rates of the Figure 1
/// network, quantize them into per-quantum packet quotas, and verify that
/// coordinated joins deliver those average rates with redundancy exactly 1
/// on every shared link, while random joins match the Appendix B formula.
#[test]
fn fair_rates_are_attainable_by_quantum_scheduling() {
    let ex = paper::figure1();
    let alloc = Hybrid::as_declared().allocate(&ex.network);
    // Session 3 (multi-rate, receivers at 1 and 2) shares link l2 upstream.
    let rates = [
        alloc.rate(ReceiverId::new(2, 0)),
        alloc.rate(ReceiverId::new(2, 1)),
    ];
    let sigma = 4.0; // layer rate covering the max receiver rate
    let quantum_packets = 100usize;
    let quotas: Vec<usize> = rates
        .iter()
        .map(|a| ((a / sigma) * quantum_packets as f64).round() as usize)
        .collect();

    // Coordinated: redundancy 1 and exact average rates.
    let subsets = quantum::prefix_subsets(&quotas, quantum_packets);
    assert_eq!(quantum::measured_redundancy(&subsets), Some(1.0));
    for (q, a) in quotas.iter().zip(&rates) {
        let achieved = *q as f64 / quantum_packets as f64 * sigma;
        assert!((achieved - a).abs() < sigma / quantum_packets as f64 + 1e-9);
    }

    // Random: long-term redundancy matches σ(1 − ∏(1 − a/σ)) / max a.
    let measured = quantum::long_term_redundancy(
        &quotas,
        quantum_packets,
        600,
        quantum::SelectionMode::Random,
        9,
    )
    .unwrap();
    let predicted = randomjoin::analytic_redundancy(&rates, sigma);
    assert!(
        (measured - predicted).abs() / predicted < 0.03,
        "measured {measured}, predicted {predicted}"
    );
}

/// §3 -> §2: feed the Appendix B random-join link-rate function back into
/// the allocator as a redundancy model and verify Lemma 4's direction
/// against the efficient allocation on the Figure 4 network.
#[test]
fn random_join_model_is_less_fair_than_efficient() {
    let ex = paper::figure4();
    let eff = LinkRateConfig::efficient(2);
    let rj = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::RandomJoin { sigma: 8.0 });
    let mut ws = SolverWorkspace::new();
    let a_eff = Hybrid::as_declared()
        .with_config(eff)
        .solve(&ex.network, &mut ws)
        .allocation
        .ordered_vector();
    let a_rj = Hybrid::as_declared()
        .with_config(rj)
        .solve(&ex.network, &mut ws)
        .allocation
        .ordered_vector();
    assert!(mlf_core::is_min_unfavorable(&a_rj, &a_eff));
}

/// §2 -> §4: the allocator's fair rates for the Figure 7(b) star bound what
/// the protocols can achieve — with ample capacity the fair rate is the
/// full ladder, and the lossless protocols reach it.
#[test]
fn protocols_reach_the_fair_rate_when_unconstrained() {
    // Allocator view: one session on a star with generous links; fair rate
    // is κ = the ladder's top aggregate rate.
    let ladder = LayerSchedule::exponential(8);
    let net = topology::star_network(6, 1e6, 1e6);
    let sessions: Vec<Session> = net
        .sessions()
        .iter()
        .cloned()
        .map(|s| s.with_max_rate(ladder.total_rate()))
        .collect();
    let net = mlf_net::Network::with_routes(net.graph().clone(), sessions, net.routes().to_vec())
        .unwrap();
    let alloc = Hybrid::as_declared().allocate(&net);
    for (_, rate) in alloc.iter() {
        assert_eq!(rate, ladder.total_rate());
    }

    // Protocol view: lossless receivers climb to the top of the ladder.
    let params = ExperimentParams {
        receivers: 6,
        packets: 50_000,
        trials: 1,
        ..ExperimentParams::quick(0.0, 0.0).unwrap()
    };
    let report = mlf_protocols::run_trial(ProtocolKind::Deterministic, &params, 0);
    assert!(report.final_levels.iter().all(|&l| l == 8));
}

/// The redundancy measured by the packet engine and the redundancy measure
/// of Definition 3 agree on a pinned-level run: receivers pinned at
/// different levels make the shared link carry the max level's rate.
#[test]
fn engine_redundancy_matches_definition_for_static_levels() {
    // Static receivers via the protocol-free engine path: use the
    // Deterministic protocol with zero loss, which climbs and saturates at
    // the top: redundancy 1. (The dynamic-desynchronization case is covered
    // by the protocol tests; here we pin the degenerate case exactly.)
    let params = ExperimentParams {
        receivers: 4,
        packets: 100_000,
        trials: 1,
        ..ExperimentParams::quick(0.0, 0.0).unwrap()
    };
    let report = mlf_protocols::run_trial(ProtocolKind::Coordinated, &params, 0);
    let red = report.shared_redundancy().unwrap();
    assert!(red < 1.05, "static redundancy {red}");
}

/// Mixed workload sanity: a network with unicast, single-rate and
/// multi-rate sessions, solved and audited through the umbrella prelude.
#[test]
fn umbrella_prelude_end_to_end() {
    let mut g = Graph::new();
    let src = g.add_node();
    let hub = g.add_node();
    let (a, b, c) = (g.add_node(), g.add_node(), g.add_node());
    g.add_link(src, hub, 12.0).unwrap();
    g.add_link(hub, a, 4.0).unwrap();
    g.add_link(hub, b, 6.0).unwrap();
    g.add_link(hub, c, 2.0).unwrap();
    let net = Network::new(
        g,
        vec![
            Session::multi_rate(src, vec![a, b]),
            Session::single_rate(src, vec![b, c]),
            Session::unicast(src, a),
        ],
    )
    .unwrap();
    let cfg = LinkRateConfig::efficient(3);
    let alloc = Hybrid::as_declared().allocate(&net);
    assert!(alloc.is_feasible(&net, &cfg));
    // Single-rate session pinned by the 2-capacity branch.
    assert_eq!(
        alloc.rate(ReceiverId::new(1, 0)),
        alloc.rate(ReceiverId::new(1, 1))
    );
    assert_eq!(alloc.rate(ReceiverId::new(1, 0)), 2.0);
    // Theorem 2(c): per-session-link-fairness holds for everyone.
    let report = check_all(&net, &cfg, &alloc);
    assert!(report.per_session_link_fair());
    // Redundancy survey under the efficient model reports 1 everywhere.
    assert_eq!(redundancy::max_redundancy(&net, &cfg, &alloc), 1.0);
}

/// The Figure 6 model, the allocator, and the measured redundancy agree on
/// one instance end-to-end.
#[test]
fn figure6_model_allocator_and_measure_agree() {
    let capacity = 60.0;
    let (n, m, v) = (6usize, 2usize, 2.5f64);
    let mut g = Graph::new();
    let src = g.add_node();
    let hub = g.add_node();
    g.add_link(src, hub, capacity).unwrap();
    let mut sessions = Vec::new();
    for i in 0..n {
        if i < m {
            let x = g.add_node();
            let y = g.add_node();
            g.add_link(hub, x, 1e4).unwrap();
            g.add_link(hub, y, 1e4).unwrap();
            sessions.push(Session::multi_rate(src, vec![x, y]));
        } else {
            sessions.push(Session::unicast(src, hub));
        }
    }
    let net = Network::new(g, sessions).unwrap();
    let mut cfg = LinkRateConfig::efficient(n);
    for i in 0..m {
        cfg = cfg.with_session(i, LinkRateModel::Scaled(v));
    }
    let alloc = Hybrid::as_declared()
        .with_config(cfg.clone())
        .allocate(&net);
    let predicted = mlf_core::bottleneck_fair_rate(capacity, n, m, v);
    for (_, rate) in alloc.iter() {
        assert!((rate - predicted).abs() < 1e-9);
    }
    // Measured redundancy on the bottleneck equals v for the scaled
    // sessions and 1 for the unicasts.
    for i in 0..n {
        let r = redundancy::redundancy(&net, &cfg, &alloc, LinkId(0), SessionId(i)).unwrap();
        let expected = if i < m { v } else { 1.0 };
        assert!((r - expected).abs() < 1e-9);
    }
}
