//! Section 2.2's observation, machine-checked: "in a unicast network,
//! Fairness Property 2 and Unicast Property 2 are identical, and the
//! remaining multicast fairness properties are identical to Unicast
//! Property 1."
//!
//! On all-unicast networks, Properties 1, 3 and 4 must agree with each
//! other (and with Unicast Property 1) on *every* allocation — not just the
//! max-min one — and the max-min allocation must satisfy all of them.

use mlf_core::allocator::{Allocator, Hybrid, Unicast};
use mlf_core::{linkrate::LinkRateConfig, properties, theory};
use mlf_net::topology::{random_tree, SplitMix64};
use mlf_net::{Network, NodeId, Session};
use proptest::prelude::*;

/// A random all-unicast network on a random tree.
fn arb_unicast_network() -> impl Strategy<Value = Network> {
    (any::<u64>(), 4usize..14, 2usize..7).prop_map(|(seed, nodes, flows)| {
        let g = random_tree(seed, nodes, 1.0, 9.0);
        let mut rng = SplitMix64(seed ^ 0x1234);
        let sessions = (0..flows)
            .map(|_| {
                let from = NodeId(rng.below(nodes));
                let mut to = NodeId(rng.below(nodes));
                if to == from {
                    to = NodeId((to.0 + 1) % nodes);
                }
                Session::unicast(from, to)
            })
            .collect();
        Network::new(g, sessions).expect("tree network")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Properties 1, 3, 4 agree receiver-by-receiver / session-by-session
    /// on arbitrary feasible allocations of unicast networks.
    #[test]
    fn properties_collapse_on_feasible_allocations(
        net in arb_unicast_network(),
        seed in any::<u64>(),
    ) {
        let cfg = LinkRateConfig::efficient(net.session_count());
        let mut rng = SplitMix64(seed);
        for _ in 0..5 {
            let alloc = theory::random_feasible_allocation(&net, &cfg, &mut rng);
            let p1 = properties::check_fully_utilized_receiver_fair(&net, &cfg, &alloc);
            let p3 = properties::check_per_receiver_link_fair(&net, &cfg, &alloc);
            let p4 = properties::check_per_session_link_fair(&net, &cfg, &alloc);
            // Unicast: receiver == session, so violation sets coincide.
            let s1: Vec<usize> = p1.iter().map(|r| r.session.0).collect();
            let s3: Vec<usize> = p3.iter().map(|r| r.session.0).collect();
            let s4: Vec<usize> = p4.iter().map(|s| s.0).collect();
            prop_assert_eq!(&s1, &s3, "P1 vs P3 differ");
            prop_assert_eq!(&s1, &s4, "P1 vs P4 differ");
            // And the delegating unicast-property wrappers agree too.
            let u1 = properties::check_unicast_property1(&net, &cfg, &alloc);
            prop_assert_eq!(u1, p1);
        }
    }

    /// The unicast max-min allocation (textbook algorithm) satisfies all
    /// four properties, and matches the general allocator.
    #[test]
    fn unicast_max_min_satisfies_everything(net in arb_unicast_network()) {
        let cfg = LinkRateConfig::efficient(net.session_count());
        let bg = Unicast::new().allocate(&net);
        let general = Hybrid::as_declared().allocate(&net);
        for (a, b) in bg.rates().iter().flatten().zip(general.rates().iter().flatten()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
        let report = properties::check_all(&net, &cfg, &bg);
        prop_assert!(report.all_hold(), "{report:?}");
    }
}
