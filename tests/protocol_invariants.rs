//! Property-based invariants of the Section 4 protocol machinery and the
//! packet engine, across random loss settings and protocols.

use mlf_protocols::{experiment, markov, CoordinatedSender, ExperimentParams, ProtocolKind};
use proptest::prelude::*;

fn arb_kind() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::Uncoordinated),
        Just(ProtocolKind::Deterministic),
        Just(ProtocolKind::Coordinated),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine accounting invariants: redundancy ≥ 1, delivered ≤ offered,
    /// the shared link carries at least what the busiest receiver was
    /// offered, and levels stay in 1..=M.
    #[test]
    fn engine_accounting_invariants(
        kind in arb_kind(),
        shared in 0.0f64..0.08,
        independent in 0.0f64..0.08,
        seed in any::<u64>(),
    ) {
        let params = ExperimentParams {
            receivers: 10,
            packets: 6_000,
            trials: 1,
            seed,
            ..ExperimentParams::quick(shared, independent).unwrap()
        };
        let report = experiment::run_trial(kind, &params, 0);
        let max_offered = *report.offered.iter().max().unwrap();
        prop_assert!(report.shared_carried >= max_offered);
        for r in 0..params.receivers {
            prop_assert!(report.delivered[r] <= report.offered[r]);
            prop_assert!(
                report.delivered[r] + report.congestion_events[r] <= report.offered[r]
            );
            prop_assert!(report.final_levels[r] >= 1 && report.final_levels[r] <= 8);
            let mean = report.mean_level(r);
            prop_assert!((1.0..=8.0).contains(&mean));
        }
        if let Some(red) = report.shared_redundancy() {
            prop_assert!(red >= 1.0 - 1e-12);
            prop_assert!(red <= params.receivers as f64 + 1.0);
        }
    }

    /// With zero loss everywhere, every protocol climbs to the top layer
    /// and stays there. The Uncoordinated climb out of level 7 is a
    /// geometric wait with mean ~8k slots (join probability 2^{-12} at
    /// half the slot rate), so its bound is probabilistic: allow level 7
    /// stragglers but require the bulk at the top.
    #[test]
    fn lossless_runs_converge_to_top_layer(kind in arb_kind(), seed in any::<u64>()) {
        let params = ExperimentParams {
            receivers: 6,
            packets: 120_000,
            trials: 1,
            seed,
            ..ExperimentParams::quick(0.0, 0.0).unwrap()
        };
        let report = experiment::run_trial(kind, &params, 0);
        match kind {
            ProtocolKind::Uncoordinated => {
                for r in 0..params.receivers {
                    prop_assert!(report.final_levels[r] >= 7, "receiver {} stuck", r);
                }
                let at_top = report.final_levels.iter().filter(|&&l| l == 8).count();
                prop_assert!(at_top >= params.receivers / 2);
            }
            _ => {
                for r in 0..params.receivers {
                    prop_assert_eq!(report.final_levels[r], 8, "receiver {} stuck", r);
                }
            }
        }
        let red = report.shared_redundancy().unwrap();
        // Early climbing produces a little transient redundancy only.
        prop_assert!(red < 1.15, "lossless redundancy {red}");
    }

    /// Markov chains are well-formed and their stationary redundancy is ≥ 1
    /// across the loss grid, for every protocol.
    #[test]
    fn markov_redundancy_bounds(
        kind in arb_kind(),
        p_s in 0.0f64..0.1,
        p_1 in 0.0f64..0.1,
        p_2 in 0.0f64..0.1,
    ) {
        let model = markov::two_receiver_chain(kind, 5, p_s, p_1, p_2);
        let red = model.stationary_redundancy();
        prop_assert!(red >= 1.0 - 1e-9, "{red}");
        prop_assert!(red <= 16.0 + 1e-9, "{red}");
        let (l1, l2) = model.stationary_levels();
        prop_assert!((1.0..=5.0).contains(&l1));
        prop_assert!((1.0..=5.0).contains(&l2));
    }

    /// The coordinated sender's dyadic markers nest: within any window of
    /// 2^{t-1} base packets there is exactly one marker of threshold ≥ t.
    #[test]
    fn coordinated_markers_nest(start in 1u64..10_000, t in 1usize..7) {
        let sender = CoordinatedSender::new(8);
        let window = 1u64 << (t - 1);
        let count = (start..start + window)
            .filter(|&k| sender.threshold_for(k) >= t)
            .count();
        prop_assert_eq!(count, 1);
    }
}

/// Simulation vs exact Markov chain on the two-receiver star: the
/// Uncoordinated protocol's chain is exact, so the simulated redundancy
/// must converge to the chain's stationary value.
#[test]
fn simulation_agrees_with_markov_for_uncoordinated() {
    let (p_s, p_i) = (0.001, 0.04);
    let layers = 6;
    let model = markov::two_receiver_chain(ProtocolKind::Uncoordinated, layers, p_s, p_i, p_i);
    let exact = model.stationary_redundancy();

    let params = ExperimentParams {
        layers,
        receivers: 2,
        shared_loss: p_s,
        independent_loss: p_i,
        packets: 300_000,
        trials: 8,
        seed: 0xFEED,
        join_latency: 0,
        leave_latency: 0,
    };
    let out = experiment::run_point(ProtocolKind::Uncoordinated, &params);
    let simulated = out.redundancy.mean();
    let rel = (simulated - exact).abs() / exact;
    assert!(
        rel < 0.05,
        "simulated {simulated:.4} vs exact {exact:.4} (rel err {rel:.3})"
    );
}
