//! Property-based verification of the paper's theorems and lemmas on
//! randomized networks — the cross-crate heart of the test suite.
//!
//! Networks are random trees (so routes are unique and the properties under
//! test are exercised, not the routing tie-breaks) with random multicast
//! sessions; session types and κ caps are randomized per case.

use mlf_core::allocator::{Allocator, Hybrid};
use mlf_core::{
    linkrate::{LinkRateConfig, LinkRateModel},
    ordering, theory,
};
use mlf_net::topology::random_network;
use mlf_net::{Network, SessionId, SessionType};
use proptest::prelude::*;

/// Strategy: a random tree network with some sessions flipped single-rate
/// and some κ caps applied.
fn arb_network() -> impl Strategy<Value = Network> {
    (
        any::<u64>(),
        4usize..16,
        1usize..6,
        1usize..5,
        proptest::collection::vec(any::<bool>(), 6),
        proptest::collection::vec(0.5f64..8.0, 6),
        proptest::collection::vec(any::<bool>(), 6),
    )
        .prop_map(|(seed, nodes, sessions, maxrecv, single, caps, capped)| {
            let mut net = random_network(seed, nodes, sessions, maxrecv).unwrap();
            let m = net.session_count();
            for i in 0..m {
                if single[i % single.len()] {
                    net = net.with_session_kind(SessionId(i), SessionType::SingleRate);
                }
            }
            // Apply κ caps by rebuilding sessions (via the public API).
            let mut sessions_vec = net.sessions().to_vec();
            for (i, s) in sessions_vec.iter_mut().enumerate() {
                if capped[i % capped.len()] {
                    s.max_rate = caps[i % caps.len()];
                }
            }
            Network::with_routes(net.graph().clone(), sessions_vec, net.routes().to_vec())
                .expect("same routes remain valid")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The allocator's output is always feasible and every receiver is
    /// blocked (κ or saturated marginal link) — the max-min signature.
    #[test]
    fn allocator_output_is_feasible_and_blocked(net in arb_network()) {
        let cfg = LinkRateConfig::efficient(net.session_count());
        let alloc = Hybrid::as_declared().with_config(cfg.clone()).allocate(&net);
        prop_assert!(alloc.is_feasible(&net, &cfg),
            "violation: {:?}", alloc.feasibility_violation(&net, &cfg));
        prop_assert!(theory::spot_check_maxmin(&net, &cfg, &alloc));
    }

    /// Theorem 1: the all-multi-rate max-min allocation satisfies all four
    /// fairness properties.
    #[test]
    fn theorem1_holds(net in arb_network()) {
        let report = theory::check_theorem1(&net);
        prop_assert!(report.all_hold(), "{report:?}");
    }

    /// Theorem 2: the per-part guarantees hold for arbitrary type mixes.
    #[test]
    fn theorem2_holds(net in arb_network()) {
        let outcome = theory::check_theorem2(&net);
        prop_assert!(outcome.all_hold(), "{outcome:?}");
    }

    /// Lemma 1: sampled feasible allocations are min-unfavorable to the
    /// max-min fair allocation.
    #[test]
    fn lemma1_holds(net in arb_network(), seed in any::<u64>()) {
        let cfg = LinkRateConfig::efficient(net.session_count());
        prop_assert!(theory::check_lemma1(&net, &cfg, 20, seed));
    }

    /// Lemma 3 / Corollary 1: flipping single-rate sessions multi-rate is
    /// weakly `≤ₘ`-improving, per session and in aggregate.
    #[test]
    fn lemma3_holds(net in arb_network()) {
        prop_assert!(theory::check_lemma3(&net));
    }

    /// Lemma 4: larger redundancy functions produce `≤ₘ`-smaller max-min
    /// allocations (Efficient ≤ Scaled(v) ≤ Scaled(v'), v ≤ v').
    #[test]
    fn lemma4_holds(net in arb_network(), v in 1.0f64..4.0, dv in 0.0f64..3.0) {
        let m = net.session_count();
        let low = LinkRateConfig::uniform(m, LinkRateModel::Scaled(v));
        let high = LinkRateConfig::uniform(m, LinkRateModel::Scaled(v + dv));
        prop_assert!(theory::check_lemma4(&net, &low, &high));
    }

    /// Lemma 9 (TR): flipping exactly one session to multi-rate never hurts
    /// that session's own receivers.
    #[test]
    fn single_flip_monotonicity(net in arb_network()) {
        prop_assert!(theory::check_single_session_flip_monotonicity(&net));
    }

    /// Uniqueness: the allocator is deterministic and invariant under
    /// re-solving (idempotence of the fixed point).
    #[test]
    fn allocator_is_deterministic(net in arb_network()) {
        let a = Hybrid::as_declared().allocate(&net);
        let b = Hybrid::as_declared().allocate(&net);
        prop_assert_eq!(a.rates(), b.rates());
    }

    /// The min-unfavorable relation is total, reflexive and antisymmetric
    /// on ordered vectors, and the definitional form agrees with the
    /// lexicographic fast path.
    #[test]
    fn ordering_laws(
        mut x in proptest::collection::vec(0.0f64..10.0, 1..8),
        mut y in proptest::collection::vec(0.0f64..10.0, 1..8),
    ) {
        let n = x.len().min(y.len());
        x.truncate(n);
        y.truncate(n);
        let x = ordering::ordered(&x);
        let y = ordering::ordered(&y);
        prop_assert!(ordering::is_min_unfavorable(&x, &x));
        prop_assert!(
            ordering::is_min_unfavorable(&x, &y) || ordering::is_min_unfavorable(&y, &x)
        );
        prop_assert_eq!(
            ordering::is_min_unfavorable(&x, &y),
            ordering::is_min_unfavorable_definitional(&x, &y)
        );
        // Lemma 2: a strict ordering always yields a verifiable witness.
        if ordering::is_strictly_min_unfavorable(&x, &y) {
            let x0 = ordering::lemma2_threshold(&x, &y).expect("witness exists");
            prop_assert!(ordering::verify_lemma2_witness(&x, &y, x0));
        }
    }
}
