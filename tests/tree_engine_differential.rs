//! Differential: the per-link bitset tree engine is **bitwise identical**
//! to the frozen pre-bitset reference (`mlf_sim::reference_tree`).
//!
//! The bitset engine replaces the reference's per-slot scan of every
//! link's downstream receiver set and its full `0..n` receiver loop (with
//! a per-receiver route re-scan for the end-to-end loss fate) with the
//! [`mlf_sim::LinkLevelIndex`] carrying-link rows, a single parents-first
//! path-loss sweep, word-at-a-time delivery walks and lazy `offered`
//! settlement. Its contract is that every produced bit of the
//! [`TreeReport`] — `carried`, `offered`, `delivered`,
//! `congestion_events`, `final_levels`, `downstream` — matches the old
//! scans, including every RNG draw (one private substream per link,
//! sampled exactly on the slots the link carries).
//!
//! These tests drive that claim across three topology families (stars,
//! complete k-ary trees with leaf receivers, random trees with receivers
//! at mixed depths) × all three `ProtocolKind` state machines × Bernoulli
//! and Gilbert–Elliott per-link loss × zero and nonzero join/leave
//! latencies.

use mlf_net::topology::{kary_tree, random_tree, star_network};
use mlf_net::{Network, NodeId, Session};
use mlf_protocols::{make_receiver, CoordinatedSender, ProtocolKind};
use mlf_sim::engine::{MarkerSource, NoMarkers, ReceiverController};
use mlf_sim::tree::{run_tree_expect, run_tree_into, TreeConfig, TreeReport, TreeScratch};
use mlf_sim::{reference_tree, LossProcess, SimRng, Tick};
use proptest::prelude::*;

const KINDS: [ProtocolKind; 3] = ProtocolKind::ALL;

/// The latency grid of the differential: the paper's idealized zero pair
/// plus join-only, leave-only and mixed nonzero latencies.
const LATENCIES: [(Tick, Tick); 4] = [(0, 0), (0, 37), (19, 0), (11, 23)];

enum Markers {
    None(NoMarkers),
    Coordinated(CoordinatedSender),
}

impl MarkerSource for Markers {
    fn marker(&mut self, slot: Tick, layer: usize) -> Option<usize> {
        match self {
            Markers::None(m) => m.marker(slot, layer),
            Markers::Coordinated(m) => m.marker(slot, layer),
        }
    }
}

/// Controllers and marker source exactly as the bench rigs wire them:
/// per-receiver RNG substreams split off one trial base.
fn rig(
    kind: ProtocolKind,
    receivers: usize,
    layers: usize,
    seed: u64,
) -> (Vec<Box<dyn ReceiverController>>, Markers) {
    let base = SimRng::seed_from_u64(seed ^ 0xABCD_EF01_2345_6789);
    let controllers = (0..receivers)
        .map(|r| make_receiver(kind, base.split(1_000_000 + r as u64)))
        .collect();
    let markers = match kind {
        ProtocolKind::Coordinated => Markers::Coordinated(CoordinatedSender::new(layers)),
        _ => Markers::None(NoMarkers),
    };
    (controllers, markers)
}

/// The three tree families of the differential. Every shape routes one
/// multi-rate session from a root sender; what varies is where the
/// receivers sit (fanout leaves, uniform-depth leaves, mixed depths).
fn topology(shape_ix: usize, size: usize, seed: u64) -> Network {
    match shape_ix {
        // Star: every receiver one shared + one fanout link deep.
        0 => star_network(size.clamp(1, 64), 1000.0, 1000.0),
        // Complete k-ary tree, receivers on all the deepest leaves.
        1 => {
            let arity = 2 + size % 3; // 2..=4
            let depth = 2 + size % 2; // 2..=3
            let (g, root, levels) = kary_tree(depth, arity, |_| 1000.0);
            let leaves = levels[depth].clone();
            Network::new(g, vec![Session::multi_rate(root, leaves)]).expect("kary tree is routable")
        }
        // Random tree, receivers scattered across interior and leaf nodes
        // at mixed depths (every other non-root node).
        _ => {
            let nodes = (size.clamp(2, 48)) + 2;
            let g = random_tree(seed, nodes, 500.0, 1500.0);
            let receivers: Vec<NodeId> = (1..nodes).step_by(2).map(NodeId).collect();
            Network::new(g, vec![Session::multi_rate(NodeId(0), receivers)])
                .expect("random tree is routable")
        }
    }
}

/// Per-link loss mix: alternate Bernoulli and Gilbert–Elliott processes
/// along the link index so both kinds appear in one run, with the rate
/// perturbed per link so no two links share a process verbatim.
fn link_loss_mix(n_links: usize, p: f64, bursty_mask: usize) -> Vec<LossProcess> {
    (0..n_links)
        .map(|j| {
            let pj = (p * (1.0 + 0.1 * (j % 5) as f64)).min(0.2);
            if (j + bursty_mask) % 2 == 0 {
                LossProcess::bursty_with_average(pj, 6.0)
            } else {
                LossProcess::bernoulli(pj)
            }
        })
        .collect()
}

fn config(
    net: &Network,
    layers: usize,
    p: f64,
    bursty_mask: usize,
    lat: (Tick, Tick),
) -> TreeConfig {
    TreeConfig {
        layer_rates: (0..layers)
            .map(|i| {
                if i == 0 {
                    1.0
                } else {
                    (1u64 << (i - 1)) as f64
                }
            })
            .collect(),
        link_loss: link_loss_mix(net.link_count(), p, bursty_mask),
        join_latency: lat.0,
        leave_latency: lat.1,
    }
}

fn receivers_of(net: &Network) -> usize {
    net.session(mlf_net::SessionId(0)).receivers.len()
}

fn run_bitset(
    net: &Network,
    cfg: &TreeConfig,
    kind: ProtocolKind,
    slots: u64,
    seed: u64,
) -> TreeReport {
    let (mut ctls, mut mk) = rig(kind, receivers_of(net), cfg.layer_rates.len(), seed);
    run_tree_expect(net, cfg, &mut ctls, &mut mk, slots, seed)
}

fn run_reference(
    net: &Network,
    cfg: &TreeConfig,
    kind: ProtocolKind,
    slots: u64,
    seed: u64,
) -> TreeReport {
    let (mut ctls, mut mk) = rig(kind, receivers_of(net), cfg.layer_rates.len(), seed);
    reference_tree::run_tree(net, cfg, &mut ctls, &mut mk, slots, seed)
}

/// Every counter and final level must agree exactly; `TreeReport` is all
/// integers, so `==` is the bit-level comparison.
fn assert_reports_identical(label: &str, bitset: &TreeReport, reference: &TreeReport) {
    assert_eq!(bitset.slots, reference.slots, "{label}: slots");
    assert_eq!(bitset.carried, reference.carried, "{label}: carried");
    assert_eq!(bitset.offered, reference.offered, "{label}: offered");
    assert_eq!(bitset.delivered, reference.delivered, "{label}: delivered");
    assert_eq!(
        bitset.congestion_events, reference.congestion_events,
        "{label}: congestion_events"
    );
    assert_eq!(
        bitset.final_levels, reference.final_levels,
        "{label}: final_levels"
    );
    assert_eq!(
        bitset.downstream, reference.downstream,
        "{label}: downstream"
    );
    // Belt and braces: the derived whole-report equality agrees too.
    assert_eq!(bitset, reference, "{label}: whole report");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The headline differential: random tree shapes, protocols, per-link
    /// loss mixes and latencies; the bitset and reference engines must
    /// produce bitwise-identical reports.
    #[test]
    fn bitset_engine_matches_reference(
        shape_ix in 0usize..3,
        size in 1usize..40,
        layers in 2usize..9,
        kind_ix in 0usize..3,
        bursty_mask in 0usize..2,
        latency_ix in 0usize..4,
        p in 0.0f64..0.08,
        seed in any::<u64>(),
    ) {
        let net = topology(shape_ix, size, seed);
        let kind = KINDS[kind_ix];
        let cfg = config(&net, layers, p, bursty_mask, LATENCIES[latency_ix]);
        let slots = 2_500;
        let bitset = run_bitset(&net, &cfg, kind, slots, seed);
        let reference = run_reference(&net, &cfg, kind, slots, seed);
        assert_reports_identical(
            &format!(
                "shape={shape_ix} n={} m={layers} {} lat={:?}",
                receivers_of(&net),
                kind.label(),
                LATENCIES[latency_ix]
            ),
            &bitset,
            &reference,
        );
    }

    /// Scratch reuse across back-to-back trials of *different* tree shapes
    /// must not leak state: each `run_tree_into` through one shared scratch
    /// and report buffer equals a fresh `reference_tree` run of the same
    /// trial.
    #[test]
    fn reused_scratch_matches_fresh_reference_runs(
        seeds in proptest::collection::vec(any::<u64>(), 2..5),
        size_a in 1usize..24,
        size_b in 1usize..40,
        latency_ix in 0usize..4,
        p in 0.0f64..0.08,
    ) {
        let mut scratch = TreeScratch::default();
        let mut report = TreeReport::empty();
        for (t, &seed) in seeds.iter().enumerate() {
            // Alternate shapes so the scratch's membership/index buffers
            // must genuinely re-size, not just re-zero.
            let (shape_ix, size, layers) = if t % 2 == 0 {
                (t % 3, size_a, 8)
            } else {
                ((t + 1) % 3, size_b, 4)
            };
            let net = topology(shape_ix, size, seed);
            let kind = KINDS[(t + seeds.len()) % 3];
            let cfg = config(&net, layers, p, t % 2, LATENCIES[latency_ix]);
            let (mut ctls, mut mk) = rig(kind, receivers_of(&net), layers, seed);
            run_tree_into(&net, &cfg, &mut ctls, &mut mk, 2_000, seed, &mut report, &mut scratch)
                .expect("valid differential configuration");
            let reference = run_reference(&net, &cfg, kind, 2_000, seed);
            assert_reports_identical(
                &format!("trial {t} shape={shape_ix} ({})", kind.label()),
                &report,
                &reference,
            );
        }
    }
}

/// Pinned bench-shaped case (all three protocols on a 4-ary depth-4 tree
/// at the bench loss mix): the exact moderate-scale workload the tree
/// bench re-asserts before timing, at a test-sized slot budget.
#[test]
fn bench_shape_agrees_for_every_protocol() {
    let (g, root, levels) = kary_tree(4, 4, |_| 1000.0);
    let leaves = levels[4].clone();
    let net = Network::new(g, vec![Session::multi_rate(root, leaves)]).expect("kary tree");
    for kind in KINDS {
        for &(join, leave) in &LATENCIES {
            let cfg = config(&net, 8, 0.03, 0, (join, leave));
            let bitset = run_bitset(&net, &cfg, kind, 4_000, 0x51_66_C0_99);
            let reference = run_reference(&net, &cfg, kind, 4_000, 0x51_66_C0_99);
            assert_reports_identical(
                &format!("bench {} lat=({join},{leave})", kind.label()),
                &bitset,
                &reference,
            );
        }
    }
}
