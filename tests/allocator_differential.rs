//! Differential coverage for the unified `Allocator` API: on every paper
//! figure network, each `Allocator` implementation must produce
//! **bitwise-identical** allocations to the legacy free function it
//! replaces, workspace reuse must be transparent, and `Scenario::sweep`
//! must be deterministic under a fixed seed.
//!
//! The legacy functions are deprecated shims, so this file is the one place
//! that still calls them — deliberately.

#![allow(deprecated)]

use mlf_core::allocator::{
    Allocator, Hybrid, MultiRate, SingleRate, SolverWorkspace, Unicast, Weighted,
};
use mlf_core::{
    max_min_allocation, max_min_allocation_with, multi_rate_max_min, single_rate_max_min,
    unicast::unicast_max_min, weighted::weighted_max_min, LinkRateConfig, LinkRateModel, Weights,
};
use mlf_net::{paper, Network};
use mlf_scenario::{Scenario, SweepGrid};

/// Every paper figure network, by name: the differential corpus.
fn paper_networks() -> Vec<(&'static str, Network)> {
    let fig3a = paper::figure3a();
    let fig3b = paper::figure3b();
    vec![
        ("figure1", paper::figure1().network),
        ("figure2", paper::figure2().network),
        ("figure2_multi_rate", paper::figure2_multi_rate().network),
        ("figure3a", fig3a.network.clone()),
        (
            "figure3a_removed",
            fig3a.network.without_receiver(fig3a.removed).unwrap(),
        ),
        ("figure3b", fig3b.network.clone()),
        (
            "figure3b_removed",
            fig3b.network.without_receiver(fig3b.removed).unwrap(),
        ),
        ("figure4", paper::figure4().network),
        ("single_link", paper::single_link(6.0)),
    ]
}

/// Exact (bitwise) equality of allocations — the shims delegate to the same
/// engine, so not even the last ulp may differ.
fn assert_bitwise(name: &str, legacy: &mlf_core::Allocation, new: &mlf_core::Allocation) {
    assert_eq!(
        legacy.rates(),
        new.rates(),
        "{name}: legacy and trait allocations diverge"
    );
}

#[test]
fn hybrid_matches_max_min_allocation_on_every_paper_network() {
    let mut ws = SolverWorkspace::new();
    for (name, net) in paper_networks() {
        let legacy = max_min_allocation(&net);
        let new = Hybrid::as_declared().solve(&net, &mut ws).allocation;
        assert_bitwise(name, &legacy, &new);
    }
}

#[test]
fn hybrid_with_config_matches_max_min_allocation_with() {
    let mut ws = SolverWorkspace::new();
    let models = [
        LinkRateModel::Efficient,
        LinkRateModel::Scaled(2.0),
        LinkRateModel::Sum,
        LinkRateModel::RandomJoin { sigma: 8.0 },
    ];
    for (name, net) in paper_networks() {
        for model in models {
            let cfg = LinkRateConfig::uniform(net.session_count(), model);
            let legacy = max_min_allocation_with(&net, &cfg);
            let new = Hybrid::as_declared()
                .with_config(cfg)
                .solve(&net, &mut ws)
                .allocation;
            assert_bitwise(&format!("{name}/{model:?}"), &legacy, &new);
        }
    }
}

#[test]
fn multi_rate_matches_its_legacy_function() {
    let mut ws = SolverWorkspace::new();
    for (name, net) in paper_networks() {
        let legacy = multi_rate_max_min(&net);
        let new = MultiRate::new().solve(&net, &mut ws).allocation;
        assert_bitwise(name, &legacy, &new);
    }
}

#[test]
fn single_rate_matches_its_legacy_function() {
    let mut ws = SolverWorkspace::new();
    for (name, net) in paper_networks() {
        let legacy = single_rate_max_min(&net);
        let new = SingleRate::new().solve(&net, &mut ws).allocation;
        assert_bitwise(name, &legacy, &new);
    }
}

#[test]
fn weighted_matches_its_legacy_function_on_multi_rate_networks() {
    let mut ws = SolverWorkspace::new();
    for (name, net) in paper_networks() {
        // The weighted solver is defined for multi-rate sessions only.
        if !net.sessions().iter().all(|s| s.kind.is_multi_rate()) {
            continue;
        }
        // Deterministic non-uniform weights shaped like the network.
        let weights = Weights::from_values(
            net.sessions()
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    (0..s.receivers.len())
                        .map(|k| 1.0 + ((3 * i + 5 * k) % 4) as f64)
                        .collect()
                })
                .collect(),
        );
        let legacy = weighted_max_min(&net, &weights);
        let new = Weighted::new(weights).solve(&net, &mut ws).allocation;
        assert_bitwise(name, &legacy, &new);
    }
}

#[test]
fn unicast_matches_its_legacy_function_on_unicast_networks() {
    let mut ws = SolverWorkspace::new();
    for (name, net) in paper_networks() {
        if !net.sessions().iter().all(|s| s.is_unicast()) {
            continue; // single_link qualifies; the multicast figures don't
        }
        let legacy = unicast_max_min(&net);
        let new = Unicast::new().solve(&net, &mut ws).allocation;
        assert_bitwise(name, &legacy, &new);
    }
    // Make sure the corpus actually exercised this branch.
    assert!(paper_networks()
        .iter()
        .any(|(_, net)| net.sessions().iter().all(|s| s.is_unicast())));
}

#[test]
fn paper_expected_rates_survive_the_migration() {
    // The figures' published numbers, through the new API end to end.
    let mut ws = SolverWorkspace::new();
    for (name, ex) in [
        ("figure1", paper::figure1()),
        ("figure2", paper::figure2()),
        ("figure2_multi_rate", paper::figure2_multi_rate()),
    ] {
        let alloc = Hybrid::as_declared().solve(&ex.network, &mut ws).allocation;
        for (i, session) in ex.expected_rates.iter().enumerate() {
            for (k, &expected) in session.iter().enumerate() {
                let got = alloc.rate(mlf_net::ReceiverId::new(i, k));
                assert!(
                    (got - expected).abs() < 1e-9,
                    "{name}: r{},{} expected {expected}, got {got}",
                    i + 1,
                    k + 1
                );
            }
        }
    }
}

#[test]
fn workspace_reuse_never_changes_results() {
    // Interleave shapes and regimes through ONE workspace and compare
    // against cold solves: scratch reuse must be invisible.
    let mut warm = SolverWorkspace::new();
    for (name, net) in paper_networks() {
        let declared_warm = Hybrid::as_declared().solve(&net, &mut warm).allocation;
        let multi_warm = MultiRate::new().solve(&net, &mut warm).allocation;
        let declared_cold = Hybrid::as_declared().allocate(&net);
        let multi_cold = MultiRate::new().allocate(&net);
        assert_bitwise(&format!("{name}/declared"), &declared_cold, &declared_warm);
        assert_bitwise(&format!("{name}/multi"), &multi_cold, &multi_warm);
    }
}

#[test]
fn scenario_sweeps_are_deterministic_under_a_fixed_seed() {
    let build = || {
        Scenario::builder()
            .label("differential-sweep")
            .random_networks(14, 5, 4)
            .allocator(MultiRate::new())
            .build()
            .unwrap()
    };
    // Same scenario object, swept twice.
    let mut s = build();
    let first = s.sweep(0..16);
    let second = s.sweep(0..16);
    assert_eq!(first, second, "sweep must be a pure function of its seeds");
    // A fresh scenario object reproduces the same points.
    let mut fresh = build();
    assert_eq!(first, fresh.sweep(0..16));
    // Grid sweeps too.
    let grid = SweepGrid::seeds(0..6).with_models([
        LinkRateModel::Efficient,
        LinkRateModel::Scaled(1.5),
        LinkRateModel::Sum,
    ]);
    let g1 = s.sweep_grid(&grid);
    let g2 = fresh.sweep_grid(&grid);
    assert_eq!(g1, g2);
    assert_eq!(g1.points.len(), 18);
}

#[test]
fn shims_and_trait_also_agree_on_random_networks() {
    // Beyond the paper corpus: 25 random mixed networks.
    let mut ws = SolverWorkspace::new();
    for seed in 0..25u64 {
        let net = mlf_net::topology::random_network(seed, 14, 5, 4).unwrap();
        assert_bitwise(
            &format!("random-{seed}"),
            &max_min_allocation(&net),
            &Hybrid::as_declared().solve(&net, &mut ws).allocation,
        );
        assert_bitwise(
            &format!("random-{seed}/single"),
            &single_rate_max_min(&net),
            &SingleRate::new().solve(&net, &mut ws).allocation,
        );
    }
}
