//! Differential: the level-indexed star engine is **bitwise identical** to
//! the frozen pre-index reference (`mlf_sim::reference`).
//!
//! The indexed engine replaces the reference's two full per-slot receiver
//! loops (requested-level accounting + delivery) and O(n)
//! `max_effective_level` scan with the level-bucketed subscriber index and
//! lazy event-time settlement; its contract is that every produced bit of
//! the [`StarReport`] — `shared_carried`, `offered`, `delivered`,
//! `congestion_events`, `level_slot_sum`, `final_levels` — matches the old
//! scans. These tests drive that claim across all three `ProtocolKind`
//! state machines × Bernoulli and Gilbert–Elliott loss (shared and fanout)
//! × zero and nonzero join/leave latencies × receiver counts 1..128, with
//! the controller/marker wiring the Figure 8 harness uses.

use mlf_protocols::{make_receiver, CoordinatedSender, ProtocolKind};
use mlf_sim::engine::{MarkerSource, NoMarkers, ReceiverController, StarConfig, StarReport};
use mlf_sim::{reference, run_star, run_star_into, LossProcess, SimRng, StarScratch, Tick};
use proptest::prelude::*;

const KINDS: [ProtocolKind; 3] = ProtocolKind::ALL;

/// The latency grid of the differential: the paper's idealized zero pair
/// plus join-only, leave-only and mixed nonzero latencies.
const LATENCIES: [(Tick, Tick); 4] = [(0, 0), (0, 37), (19, 0), (11, 23)];

enum Markers {
    None(NoMarkers),
    Coordinated(CoordinatedSender),
}

impl MarkerSource for Markers {
    fn marker(&mut self, slot: Tick, layer: usize) -> Option<usize> {
        match self {
            Markers::None(m) => m.marker(slot, layer),
            Markers::Coordinated(m) => m.marker(slot, layer),
        }
    }
}

/// Controllers and marker source exactly as the Figure 8 `TrialRig` wires
/// them: per-receiver RNG substreams split off one trial base.
fn rig(
    kind: ProtocolKind,
    receivers: usize,
    layers: usize,
    seed: u64,
) -> (Vec<Box<dyn ReceiverController>>, Markers) {
    let base = SimRng::seed_from_u64(seed ^ 0xABCD_EF01_2345_6789);
    let controllers = (0..receivers)
        .map(|r| make_receiver(kind, base.split(1_000_000 + r as u64)))
        .collect();
    let markers = match kind {
        ProtocolKind::Coordinated => Markers::Coordinated(CoordinatedSender::new(layers)),
        _ => Markers::None(NoMarkers),
    };
    (controllers, markers)
}

fn loss(bursty: bool, p: f64) -> LossProcess {
    if bursty {
        LossProcess::bursty_with_average(p, 6.0)
    } else {
        LossProcess::bernoulli(p)
    }
}

fn config(
    layers: usize,
    receivers: usize,
    shared: LossProcess,
    fanout: LossProcess,
    latencies: (Tick, Tick),
) -> StarConfig {
    let mut cfg = StarConfig::figure8(layers, receivers, 0.0, 0.0);
    cfg.shared_loss = shared;
    cfg.fanout_loss = vec![fanout; receivers];
    cfg.with_latencies(latencies.0, latencies.1)
}

fn run_indexed(cfg: &StarConfig, kind: ProtocolKind, slots: u64, seed: u64) -> StarReport {
    let (mut ctls, mut mk) = rig(kind, cfg.receiver_count(), cfg.layer_count(), seed);
    run_star(cfg, &mut ctls, &mut mk, slots, seed)
}

fn run_reference(cfg: &StarConfig, kind: ProtocolKind, slots: u64, seed: u64) -> StarReport {
    let (mut ctls, mut mk) = rig(kind, cfg.receiver_count(), cfg.layer_count(), seed);
    reference::run_star(cfg, &mut ctls, &mut mk, slots, seed)
}

/// Every counter and final level must agree exactly; `StarReport` is all
/// integers, so `==` is the bit-level comparison.
fn assert_reports_identical(label: &str, indexed: &StarReport, reference: &StarReport) {
    assert_eq!(indexed.slots, reference.slots, "{label}: slots");
    assert_eq!(
        indexed.shared_carried, reference.shared_carried,
        "{label}: shared_carried"
    );
    assert_eq!(indexed.offered, reference.offered, "{label}: offered");
    assert_eq!(indexed.delivered, reference.delivered, "{label}: delivered");
    assert_eq!(
        indexed.congestion_events, reference.congestion_events,
        "{label}: congestion_events"
    );
    assert_eq!(
        indexed.level_slot_sum, reference.level_slot_sum,
        "{label}: level_slot_sum"
    );
    assert_eq!(
        indexed.final_levels, reference.final_levels,
        "{label}: final_levels"
    );
    // Belt and braces: the derived whole-report equality agrees too.
    assert_eq!(indexed, reference, "{label}: whole report");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The headline differential: random star shapes, protocols, loss
    /// processes and latencies; the indexed and reference engines must
    /// produce bitwise-identical reports.
    #[test]
    fn indexed_engine_matches_reference(
        receivers in 1usize..128,
        layers in 2usize..9,
        kind_ix in 0usize..3,
        // Two bits: Bernoulli vs Gilbert–Elliott on the shared / fanout links.
        bursty_ix in 0usize..4,
        latency_ix in 0usize..4,
        p_shared in 0.0f64..0.08,
        p_ind in 0.0f64..0.08,
        seed in any::<u64>(),
    ) {
        let kind = KINDS[kind_ix];
        let cfg = config(
            layers,
            receivers,
            loss(bursty_ix & 1 == 1, p_shared),
            loss(bursty_ix & 2 == 2, p_ind),
            LATENCIES[latency_ix],
        );
        let slots = 2_500;
        let indexed = run_indexed(&cfg, kind, slots, seed);
        let reference = run_reference(&cfg, kind, slots, seed);
        assert_reports_identical(
            &format!(
                "{} n={receivers} m={layers} lat={:?}",
                kind.label(),
                LATENCIES[latency_ix]
            ),
            &indexed,
            &reference,
        );
    }

    /// Scratch reuse across back-to-back trials of *different* shapes must
    /// not leak state: each `run_star_into` through one shared scratch and
    /// report buffer equals a fresh `reference` run of the same trial.
    #[test]
    fn reused_scratch_matches_fresh_reference_runs(
        seeds in proptest::collection::vec(any::<u64>(), 2..5),
        receivers_a in 1usize..64,
        receivers_b in 1usize..128,
        latency_ix in 0usize..4,
        p_ind in 0.0f64..0.08,
    ) {
        let mut scratch = StarScratch::default();
        let mut report = StarReport::default();
        for (t, &seed) in seeds.iter().enumerate() {
            // Alternate shapes so the scratch's membership/index buffers
            // must genuinely re-size, not just re-zero.
            let (receivers, layers) = if t % 2 == 0 {
                (receivers_a, 8)
            } else {
                (receivers_b, 4)
            };
            let kind = KINDS[(t + seeds.len()) % 3];
            let cfg = config(
                layers,
                receivers,
                loss(t % 2 == 1, 0.01),
                loss(t % 2 == 0, p_ind),
                LATENCIES[latency_ix],
            );
            let (mut ctls, mut mk) = rig(kind, receivers, layers, seed);
            run_star_into(&cfg, &mut ctls, &mut mk, 2_000, seed, &mut report, &mut scratch);
            let reference = run_reference(&cfg, kind, 2_000, seed);
            assert_reports_identical(
                &format!("trial {t} ({})", kind.label()),
                &report,
                &reference,
            );
        }
    }
}

/// Pinned paper-shaped case (all three protocols on a 100-receiver, 8-layer
/// star at the Figure 8 loss mix): the exact workload the star bench gates,
/// at a test-sized slot budget.
#[test]
fn paper_shape_agrees_for_every_protocol() {
    for kind in KINDS {
        for &(join, leave) in &LATENCIES {
            let cfg = StarConfig::figure8(8, 100, 0.0001, 0.05).with_latencies(join, leave);
            let indexed = run_indexed(&cfg, kind, 10_000, 0x51_66_C0_99);
            let reference = run_reference(&cfg, kind, 10_000, 0x51_66_C0_99);
            assert_reports_identical(
                &format!("paper {} lat=({join},{leave})", kind.label()),
                &indexed,
                &reference,
            );
        }
    }
}
