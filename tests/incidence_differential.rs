//! Differential: the incidence-indexed solver core is **bitwise identical**
//! to the frozen pre-refactor reference (`mlf_core::reference`).
//!
//! The optimized engines replace the reference's `links × sessions ×
//! receivers` rescans with CSR incidence iteration and incrementally
//! maintained per-slot aggregates; their contract is that every produced
//! bit — rates, freeze reasons, iteration counts — matches the old scans.
//! These tests drive that claim across all four `TopologyFamily` variants
//! crossed with every link-rate model (including the nonlinear
//! `RandomJoin` bisection path), randomized session-type mixes and κ caps,
//! plus the weighted and unicast engines.

use mlf_core::allocator::{Allocator, Hybrid, SolverWorkspace, Unicast, Weighted};
use mlf_core::{reference, LinkRateConfig, LinkRateModel, Regimes, Weights};
use mlf_net::topology::{random_network_with, random_tree, SplitMix64};
use mlf_net::{Network, NodeId, Session, SessionId, SessionType, TopologyFamily};
use proptest::prelude::*;

const FAMILIES: [TopologyFamily; 4] = [
    TopologyFamily::FlatTree,
    TopologyFamily::KaryTree { arity: 3 },
    TopologyFamily::TransitStub { transit: 3 },
    TopologyFamily::Dumbbell,
];

const MODELS: [LinkRateModel; 4] = [
    LinkRateModel::Efficient,
    LinkRateModel::Scaled(2.0),
    LinkRateModel::Sum,
    LinkRateModel::RandomJoin { sigma: 4.0 },
];

fn assert_bitwise(
    label: &str,
    optimized: &mlf_core::MaxMinSolution,
    reference: &mlf_core::MaxMinSolution,
) {
    // PartialEq on MaxMinSolution compares f64 rates by value; spell the
    // bit-level comparison out so -0.0/0.0 or NaN drift cannot hide.
    assert_eq!(
        optimized.iterations, reference.iterations,
        "{label}: iteration counts diverged"
    );
    assert_eq!(optimized.reasons, reference.reasons, "{label}: reasons");
    let a = optimized.allocation.rates();
    let b = reference.allocation.rates();
    assert_eq!(a.len(), b.len(), "{label}: session count");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{label}: receiver count of s{i}");
        for (k, (x, y)) in ra.iter().zip(rb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: r{i},{k} differs: {x} vs {y}"
            );
        }
    }
}

/// A random network of the given family, with a deterministic sprinkle of
/// single-rate sessions and κ caps derived from the seed.
fn mixed_network(family: TopologyFamily, seed: u64, nodes: usize) -> Network {
    let mut net = random_network_with(family, seed, nodes, 5, 4).unwrap();
    let mut rng = SplitMix64(seed ^ 0x9E37_79B9_7F4A_7C15);
    for i in 0..net.session_count() {
        if rng.below(3) == 0 {
            net = net.with_session_kind(SessionId(i), SessionType::SingleRate);
        }
    }
    let mut sessions = net.sessions().to_vec();
    for s in sessions.iter_mut() {
        if rng.below(3) == 0 {
            s.max_rate = 0.5 + rng.below(40) as f64 * 0.25;
        }
    }
    Network::with_routes(net.graph().clone(), sessions, net.routes().to_vec())
        .expect("same routes remain valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hybrid (declared session types) under every model × family: the
    /// full generalized progressive-filling engine, linear and bisection
    /// paths alike.
    #[test]
    fn hybrid_matches_reference(
        seed in any::<u64>(),
        nodes in 6usize..24,
        family_ix in 0usize..4,
        model_ix in 0usize..4,
    ) {
        let family = FAMILIES[family_ix];
        let model = MODELS[model_ix];
        let net = mixed_network(family, seed, nodes);
        let cfg = LinkRateConfig::uniform(net.session_count(), model);
        let mut ws = SolverWorkspace::new();
        let optimized = Hybrid::as_declared()
            .with_config(cfg.clone())
            .solve(&net, &mut ws);
        let reference = reference::solve_in(&net, &cfg, &Regimes::AsDeclared);
        assert_bitwise(
            &format!("{}/{:?}/seed {seed}", family.label(), model),
            &optimized,
            &reference,
        );
    }

    /// Per-session model mixes (different models on one link) through a
    /// reused workspace — aggregate state must not leak across solves.
    #[test]
    fn mixed_models_match_reference(seed in any::<u64>(), nodes in 6usize..20) {
        let net = mixed_network(TopologyFamily::FlatTree, seed, nodes);
        let mut cfg = LinkRateConfig::efficient(net.session_count());
        for i in 0..net.session_count() {
            cfg = cfg.with_session(i, MODELS[(seed as usize + i) % MODELS.len()]);
        }
        let mut ws = SolverWorkspace::new();
        for _ in 0..2 {
            let optimized = Hybrid::as_declared()
                .with_config(cfg.clone())
                .solve(&net, &mut ws);
            let reference = reference::solve_in(&net, &cfg, &Regimes::AsDeclared);
            assert_bitwise(&format!("mixed/seed {seed}"), &optimized, &reference);
        }
    }

    /// The weighted engine against its reference, with deterministic
    /// pseudo-random weights.
    #[test]
    fn weighted_matches_reference(seed in any::<u64>(), nodes in 6usize..20, family_ix in 0usize..4) {
        let net = random_network_with(FAMILIES[family_ix], seed, nodes, 4, 4).unwrap();
        let w = Weights::from_values(
            net.sessions()
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    (0..s.receivers.len())
                        .map(|k| 0.5 + ((seed as usize + 3 * i + 7 * k) % 9) as f64 * 0.375)
                        .collect()
                })
                .collect(),
        );
        let mut ws = SolverWorkspace::new();
        let optimized = Weighted::new(w.clone()).solve(&net, &mut ws);
        let reference = reference::weighted_solve(&net, &w);
        assert_bitwise(&format!("weighted/seed {seed}"), &optimized, &reference);
    }
}

/// The unicast engine against its reference on random all-unicast trees.
#[test]
fn unicast_matches_reference() {
    let mut rng = SplitMix64(0xD1FF_EE12_71A1 ^ 0xABCD);
    let mut ws = SolverWorkspace::new();
    for seed in 0..60u64 {
        let g = random_tree(seed, 12, 1.0, 8.0);
        let nodes = g.node_count();
        let mut sessions = Vec::new();
        for s in 0..5 {
            let from = NodeId((seed as usize + s) % nodes);
            let mut to = NodeId(rng.below(nodes));
            if to == from {
                to = NodeId((to.0 + 1) % nodes);
            }
            let mut sess = Session::unicast(from, to);
            if rng.below(3) == 0 {
                sess = sess.with_max_rate(0.5 + rng.below(20) as f64 * 0.3);
            }
            sessions.push(sess);
        }
        let net = Network::new(g, sessions).unwrap();
        let optimized = Unicast::new().solve(&net, &mut ws);
        let reference = reference::unicast_solve(&net);
        assert_bitwise(&format!("unicast/seed {seed}"), &optimized, &reference);
    }
}

/// Sweep-cache differential: warm (all-hits) grid sweeps replay the cold
/// solves bitwise across every topology family, serial and parallel alike.
#[test]
fn warm_cache_sweeps_match_cold_solves_across_families() {
    use mlf_core::allocator::MultiRate;
    use mlf_scenario::{LinkRates, Scenario, SweepGrid};

    for family in FAMILIES {
        let grid = SweepGrid::seeds(0..6)
            .with_models([LinkRateModel::Efficient, LinkRateModel::Scaled(2.0)]);
        let mut cached = Scenario::builder()
            .label(family.label())
            .random_networks_with(family, 16, 4, 4)
            .link_rates(LinkRates::Uniform(LinkRateModel::Efficient))
            .allocator(MultiRate::new())
            .build()
            .unwrap();
        let cold = cached.sweep_grid(&grid);
        let warm = cached.sweep_grid(&grid);
        assert_eq!(cold, warm, "{}: warm replay diverged", family.label());
        assert_eq!(cold.cache.hits, 0, "{}", family.label());
        assert_eq!(warm.cache.misses, 0, "{}", family.label());

        // An uncached twin agrees with both.
        let mut uncached = Scenario::builder()
            .label(family.label())
            .random_networks_with(family, 16, 4, 4)
            .link_rates(LinkRates::Uniform(LinkRateModel::Efficient))
            .allocator(MultiRate::new())
            .cache_capacity(0, 0)
            .build()
            .unwrap();
        assert_eq!(cold.points, uncached.sweep_grid(&grid).points);

        // The parallel path (worker-local caches) stays bitwise identical
        // to serial at several thread counts.
        for threads in [2usize, 5] {
            let par = cached.sweep_grid_par(&grid, threads);
            assert_eq!(cold, par, "{} at {threads} threads", family.label());
        }
    }
}

/// The paper's fixture networks, for good measure (fixed shapes exercise
/// free riders and single-rate closures deliberately).
#[test]
fn paper_figures_match_reference() {
    for (label, net) in [
        ("figure1", mlf_net::paper::figure1().network),
        ("figure2", mlf_net::paper::figure2().network),
        ("figure3a", mlf_net::paper::figure3a().network),
    ] {
        let cfg = LinkRateConfig::efficient(net.session_count());
        let mut ws = SolverWorkspace::new();
        let optimized = Hybrid::as_declared().solve(&net, &mut ws);
        let reference = reference::solve_in(&net, &cfg, &Regimes::AsDeclared);
        assert_bitwise(label, &optimized, &reference);
    }
}
