//! Differential test for the protocol sweep engine:
//! `ProtocolScenario::sweep_par` must be **bitwise identical** to the
//! serial `sweep` for the same grid, at any thread count, across all
//! `ProtocolKind`s and a loss grid — the same contract the allocator
//! sweeps prove in `parallel_sweep_differential.rs`, now for the Figure 8
//! path.
//!
//! The per-thread-count tests are named so CI can pin the 2- and 8-thread
//! configurations explicitly:
//! `cargo test --test protocol_sweep_differential -- two_threads eight_threads`.

use multicast_fairness::prelude::*;

/// A scaled-down star (8 receivers, 4k packets, 2 trials) so the full
/// differential grid stays fast; determinism does not depend on scale.
fn scenario() -> ProtocolScenario {
    ProtocolScenario::builder()
        .label("differential/protocols")
        .template(ExperimentParams {
            receivers: 8,
            packets: 4_000,
            trials: 2,
            ..ExperimentParams::quick(0.001, 0.0).expect("valid template losses")
        })
        .build()
        .expect("valid differential protocol scenario")
}

/// All three protocols × a 4-point loss grid × 2 replicate seeds = 24
/// points per sweep. Everything a point carries (trial statistics, loss
/// tags, seeds, latencies) must agree to the bit — `ProtocolSweepReport`
/// equality compares raw f64s, so any divergence in merge order, shard
/// boundaries, or per-job seeding fails the assert.
fn grid() -> ProtocolSweepGrid {
    ProtocolSweepGrid::independent_losses([0.0, 0.02, 0.05, 0.09]).with_seeds([11, 12])
}

fn assert_identical_at(threads: usize) {
    let s = scenario();
    let g = grid();
    assert_eq!(g.kinds, ProtocolKind::ALL.to_vec());
    let serial = s.sweep(&g);
    assert_eq!(serial.points.len(), 3 * 4 * 2);
    let parallel = s.sweep_par(&g, threads);
    assert_eq!(
        serial, parallel,
        "protocol sweep_par({threads}) diverged from serial"
    );
    // Every protocol kind must actually be exercised by the grid.
    for kind in ProtocolKind::ALL {
        assert_eq!(serial.points_for(kind).count(), 8, "{}", kind.label());
    }
}

#[test]
fn protocol_sweep_matches_serial_on_two_threads() {
    assert_identical_at(2);
}

#[test]
fn protocol_sweep_matches_serial_on_four_threads() {
    assert_identical_at(4);
}

#[test]
fn protocol_sweep_matches_serial_on_eight_threads() {
    assert_identical_at(8);
}

#[test]
fn protocol_sweep_matches_serial_with_more_threads_than_jobs() {
    // Thread counts beyond the job count collapse to one job per worker;
    // the merge contract must still hold.
    assert_identical_at(64);
}

#[test]
fn latency_axis_sweep_matches_serial_at_any_thread_count() {
    // The Section 5 latency ablation as a grid axis: (3 protocols × 2
    // losses × 3 latency pairs × 2 seeds) = 36 points, serial vs parallel
    // bitwise — and every latency pair must be represented with its tags.
    let s = scenario();
    let g = ProtocolSweepGrid::independent_losses([0.0, 0.04])
        .with_latencies([(0, 0), (4, 25), (13, 0)])
        .with_seeds([11, 12]);
    let serial = s.sweep(&g);
    assert_eq!(serial.points.len(), 3 * 2 * 3 * 2);
    for threads in [2, 8, 64] {
        let parallel = s.sweep_par(&g, threads);
        assert_eq!(
            serial, parallel,
            "latency-axis sweep_par({threads}) diverged from serial"
        );
    }
    for &(join, leave) in &[(0u64, 0u64), (4, 25), (13, 0)] {
        assert_eq!(
            serial
                .points
                .iter()
                .filter(|p| p.join_latency == join && p.leave_latency == leave)
                .count(),
            12,
            "latency pair ({join},{leave})"
        );
    }
}

#[test]
fn per_receiver_distributions_ride_the_sweep_points() {
    // Satellite of the latency axis: every sweep point carries the
    // per-receiver goodput / mean-level distributions (receivers × trials
    // observations), identical across the serial and parallel paths (the
    // whole-report equality above already pins that; this pins the shape).
    let s = scenario();
    let g = grid();
    let report = s.sweep(&g);
    for p in &report.points {
        assert_eq!(p.receiver_goodput().count(), 8 * 2);
        assert_eq!(p.receiver_mean_level().count(), 8 * 2);
        assert!(p.receiver_goodput().min() >= 0.0);
        assert!(p.receiver_goodput().max() >= p.receiver_goodput().min());
    }
}

#[test]
fn figure8_through_the_executor_matches_the_serial_series() {
    // The regrouped Figure 8 panel must reproduce the classic serial
    // `figure8_series` output bit for bit at any thread count.
    let s = scenario();
    let losses = [0.0, 0.03, 0.07];
    let serial = s.figure8_serial(&losses);
    for threads in [2, 8] {
        assert_eq!(
            serial,
            s.figure8(&losses, threads),
            "figure8({threads}) diverged from figure8_series"
        );
    }
}

#[test]
fn repeated_sweeps_are_reproducible() {
    // The whole chain (grid expansion, per-job seeding, trial RNGs) is a
    // pure function of the spec: two sweeps of the same grid are equal.
    let s = scenario();
    let g = grid();
    assert_eq!(s.sweep(&g), s.sweep(&g));
}
