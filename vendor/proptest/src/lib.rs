//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate, covering exactly the API subset this workspace's tests use.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim keeps the same source-level interface — the
//! [`proptest!`] macro, `prop_assert*` macros, `any`, range strategies,
//! tuples, `prop_map`, `prop_oneof!`, `collection::vec` — backed by a small
//! deterministic SplitMix64 generator instead of proptest's bit-stream and
//! shrinking machinery. Failing cases are reported with their case index and
//! the runner's seed; there is no shrinking.
//!
//! Determinism: the runner derives its seed from the `PROPTEST_SEED`
//! environment variable when set, and a fixed constant otherwise, so test
//! runs are reproducible by default.

#![forbid(unsafe_code)]

/// A deterministic 64-bit generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod test_runner {
    use super::TestRng;

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test as a whole fails.
        Fail(String),
        /// The case was rejected by `prop_assume!`; it is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// Build a failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Build a rejection with a message.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Runner configuration. Only `cases` is honoured by this shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Drives a property over `config.cases` generated inputs.
    pub struct TestRunner {
        config: ProptestConfig,
        rng: TestRng,
        seed: u64,
    }

    impl TestRunner {
        /// Create a runner; the seed comes from `PROPTEST_SEED` when set.
        pub fn new(config: ProptestConfig) -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0xC1A0_5EED_0001_D1CEu64);
            TestRunner {
                config,
                rng: TestRng::new(seed),
                seed,
            }
        }

        /// Run the property; panics (failing the enclosing `#[test]`) on the
        /// first failing case.
        pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
        where
            S: crate::strategy::Strategy,
            F: FnMut(S::Value) -> Result<(), TestCaseError>,
        {
            let max_rejects = (self.config.cases as u64) * 64 + 256;
            let mut rejects = 0u64;
            let mut case = 0u32;
            while case < self.config.cases {
                let value = strategy.generate(&mut self.rng);
                match test(value) {
                    Ok(()) => case += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejects += 1;
                        assert!(
                            rejects <= max_rejects,
                            "proptest shim: too many rejected cases ({rejects})"
                        );
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed (case {case} of {}, seed {:#x}): {msg}",
                            self.config.cases, self.seed
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use super::TestRng;

    /// A generator of values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree and no shrinking; a
    /// strategy is just a deterministic function of the runner's RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the same value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Build a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as u128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit() * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit() as f32) * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
        (A, B, C, D, E, F, G);
        (A, B, C, D, E, F, G, H);
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-range strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Generate an arbitrary value of the type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, sign-symmetric, modest magnitude: good enough for the
            // property tests this workspace runs.
            (rng.unit() - 0.5) * 2.0e6
        }
    }

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// A size specification for [`vec()`](fn@vec): an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// The strategy returned by [`vec()`](fn@vec).
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo
                + if span <= 1 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose elements come from `element` and whose
    /// length comes from `size` (an exact `usize` or a `Range<usize>`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. See the crate docs for the supported shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, flag in any::<bool>()) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::test_runner::TestRunner::new($cfg);
            runner.run(
                &( $($strat,)+ ),
                |( $($pat,)+ )| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// `assert!` that fails the current proptest case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `assert_ne!` for proptest cases.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Reject the current case (it is regenerated, not failed).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Uniform choice among the listed strategies (all must produce the same
/// value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0.5f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&y));
        }

        #[test]
        fn vec_sizes_honoured(
            fixed in crate::collection::vec(any::<bool>(), 4),
            ranged in crate::collection::vec(0u64..5, 1..4),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((1..4).contains(&ranged.len()));
            prop_assert!(ranged.iter().all(|&v| v < 5));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![Just(1u8), Just(2u8)],
            w in (0u32..10).prop_map(|x| x * 2),
        ) {
            prop_assert!(v == 1 || v == 2);
            prop_assert!(w % 2 == 0 && w < 20);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u64..10, b in 0u64..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn runner_is_deterministic() {
        use crate::strategy::Strategy;
        let mut r1 = super::TestRng::new(7);
        let mut r2 = super::TestRng::new(7);
        let s = 0u64..1000;
        for _ in 0..100 {
            assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
        }
    }
}
