//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness, covering the API subset this workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! The build environment has no network access, so the real crate cannot be
//! fetched. This shim measures wall-clock time with `std::time::Instant`:
//! each benchmark is warmed up briefly, then sampled for a fixed measurement
//! window, and the mean time per iteration is printed in criterion's
//! familiar one-line format. There are no statistical comparisons, plots, or
//! saved baselines.
//!
//! Benchmarks registered with these macros use `harness = false` bench
//! targets, exactly like real criterion.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration workload magnitude, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id made of a parameter value only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Conversion into [`BenchmarkId`], so `bench_function` accepts plain
/// strings as real criterion does.
pub trait IntoBenchmarkId {
    /// Convert into an id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by [`Bencher::iter`].
    mean_ns: f64,
    iters: u64,
    warm_up: Duration,
    measurement: Duration,
}

impl Bencher {
    fn new(warm_up: Duration, measurement: Duration) -> Self {
        Bencher {
            mean_ns: f64::NAN,
            iters: 0,
            warm_up,
            measurement,
        }
    }

    /// Time `f`, storing the mean wall-clock nanoseconds per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up window elapses (at least once).
        let start = Instant::now();
        loop {
            black_box(f());
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        // Measurement: run whole iterations until the window elapses.
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(label: &str, b: &Bencher, throughput: Option<Throughput>) {
    let mut line = format!(
        "{label:<48} time: [{}]   ({} iterations)",
        format_time(b.mean_ns),
        b.iters
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem"),
            Throughput::Bytes(n) => (n, "B"),
        };
        if b.mean_ns > 0.0 {
            let per_sec = count as f64 / (b.mean_ns * 1e-9);
            line.push_str(&format!("   thrpt: {per_sec:.0} {unit}/s"));
        }
    }
    println!("{line}");
}

/// The benchmark manager: registers and immediately runs benchmarks.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the windows short: these benches run in CI smoke jobs, not
        // for statistically rigorous comparisons.
        Criterion {
            warm_up: Duration::from_millis(60),
            measurement: Duration::from_millis(250),
        }
    }
}

impl Criterion {
    /// Override the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Override the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run a single benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut b = Bencher::new(self.warm_up, self.measurement);
        f(&mut b);
        report(&id.label, &b, None);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput magnitude.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let label = format!("{}/{}", self.name, id.label);
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measurement);
        f(&mut b);
        report(&label, &b, self.throughput);
        self
    }

    /// Run a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        let mut b = Bencher::new(self.criterion.warm_up, self.criterion.measurement);
        f(&mut b, input);
        report(&label, &b, self.throughput);
        self
    }

    /// Close the group (reporting already happened inline).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Produce the `main` function running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        c.bench_function("smoke/sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(1000));
        group.bench_with_input(BenchmarkId::new("sum", 1000), &1000u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 8).label, "build/8");
        assert_eq!(BenchmarkId::from_parameter("10n_4s").label, "10n_4s");
    }
}
