//! The Figure 8 experiment harness: redundancy of the three protocols on
//! the 100-receiver modified star (Figure 7(b)).
//!
//! For each `(shared loss, independent loss, protocol)` point the paper runs
//! 30 trials of 100,000 transmitted packets with 8 layers and 100 receivers
//! sharing identical end-to-end loss rates, and plots the mean shared-link
//! redundancy. [`run_point`] reproduces one such point; [`figure8_series`]
//! sweeps the independent-loss axis for all three protocols.

use crate::config::ProtocolKind;
use crate::receiver::make_receiver;
use crate::sender::CoordinatedSender;
use mlf_sim::{
    run_star_into, MarkerSource, NoMarkers, ReceiverController, RunningStats, SimRng, StarConfig,
    StarReport, StarScratch, Tick,
};

/// A loss probability that cannot parameterize an experiment.
///
/// The Bernoulli loss processes of the star (`StarConfig::figure8`) need
/// probabilities in `[0, 1)` — a loss of exactly 1 starves every trial and
/// a non-finite value silently poisons every [`RunningStats`] the
/// experiment aggregates (NaN redundancy means a whole Figure 8 point
/// quietly plots as a gap). [`ExperimentParams::paper`] and
/// [`ExperimentParams::quick`] therefore reject such inputs up front with
/// this typed error instead of producing NaN trial stats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ExperimentParamError {
    /// A loss rate was NaN or infinite.
    NonFiniteLoss {
        /// Which knob was bad (`"shared"` or `"independent"`).
        which: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A loss rate was outside the half-open interval `[0, 1)`.
    LossOutOfRange {
        /// Which knob was bad (`"shared"` or `"independent"`).
        which: &'static str,
        /// The offending value.
        value: f64,
    },
}

impl std::fmt::Display for ExperimentParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentParamError::NonFiniteLoss { which, value } => {
                write!(f, "{which} loss rate must be finite, got {value}")
            }
            ExperimentParamError::LossOutOfRange { which, value } => {
                write!(f, "{which} loss rate {value} is outside [0, 1)")
            }
        }
    }
}

impl std::error::Error for ExperimentParamError {}

/// Validate one Bernoulli loss probability: finite and in `[0, 1)`.
///
/// `which` names the knob in the error (`"shared"`, `"independent"`, …) so
/// a sweep over many losses can say which point was bad.
pub fn validate_loss(which: &'static str, value: f64) -> Result<(), ExperimentParamError> {
    if !value.is_finite() {
        return Err(ExperimentParamError::NonFiniteLoss { which, value });
    }
    if !(0.0..1.0).contains(&value) {
        return Err(ExperimentParamError::LossOutOfRange { which, value });
    }
    Ok(())
}

/// Parameters of one Figure 8 experiment point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExperimentParams {
    /// Number of layers `M` (paper: 8).
    pub layers: usize,
    /// Number of receivers (paper: 100).
    pub receivers: usize,
    /// Bernoulli loss rate of the shared link (paper: 1e-4 or 0.05).
    pub shared_loss: f64,
    /// Bernoulli loss rate of each fanout link (paper: x-axis, 0..0.1).
    pub independent_loss: f64,
    /// Packets transmitted per trial (paper: 100,000).
    pub packets: u64,
    /// Trials per point (paper: 30).
    pub trials: usize,
    /// Base seed; trial `t` uses `seed + t`.
    pub seed: u64,
    /// Join (graft) latency in slots — 0 reproduces the paper's idealized
    /// model; nonzero values drive the Section 5 latency ablation.
    pub join_latency: Tick,
    /// Leave (prune) latency in slots.
    pub leave_latency: Tick,
}

impl ExperimentParams {
    /// The paper's Figure 8 configuration at one `(shared, independent)`
    /// loss point. Rejects non-finite or out-of-`[0,1)` loss probabilities
    /// (which would otherwise surface only as NaN trial stats).
    pub fn paper(shared_loss: f64, independent_loss: f64) -> Result<Self, ExperimentParamError> {
        ExperimentParams {
            layers: 8,
            receivers: 100,
            shared_loss,
            independent_loss,
            packets: 100_000,
            trials: 30,
            seed: 0x51_66_C0_99,
            join_latency: 0,
            leave_latency: 0,
        }
        .validated()
    }

    /// A scaled-down configuration for fast tests/benches: same shapes,
    /// fewer receivers, packets and trials. Loss probabilities are
    /// validated like [`ExperimentParams::paper`].
    pub fn quick(shared_loss: f64, independent_loss: f64) -> Result<Self, ExperimentParamError> {
        ExperimentParams {
            layers: 8,
            receivers: 20,
            shared_loss,
            independent_loss,
            packets: 20_000,
            trials: 5,
            seed: 0x51_66_C0_99,
            join_latency: 0,
            leave_latency: 0,
        }
        .validated()
    }

    /// Check both loss probabilities (finite, in `[0, 1)`).
    ///
    /// The fields are public (struct-update syntax is how the binaries and
    /// tests tweak shapes), so a hand-built value can still carry a bad
    /// loss; call this before running it.
    pub fn validate(&self) -> Result<(), ExperimentParamError> {
        validate_loss("shared", self.shared_loss)?;
        validate_loss("independent", self.independent_loss)
    }

    /// [`ExperimentParams::validate`], by value (builder-style).
    pub fn validated(self) -> Result<Self, ExperimentParamError> {
        self.validate()?;
        Ok(self)
    }

    /// This configuration with a different independent (fanout-link) loss,
    /// validated — how a sweep derives its per-point parameters from one
    /// template.
    pub fn with_independent_loss(self, loss: f64) -> Result<Self, ExperimentParamError> {
        ExperimentParams {
            independent_loss: loss,
            ..self
        }
        .validated()
    }
}

/// Aggregated outcome of one experiment point.
///
/// Equality is bitwise on every statistic, which is what the serial/parallel
/// differential tests compare.
#[derive(Debug, Clone, PartialEq)]
pub struct PointOutcome {
    /// Which protocol ran.
    pub kind: ProtocolKind,
    /// Shared-link redundancy across trials (the Figure 8 y-value is
    /// `redundancy.mean()`).
    pub redundancy: RunningStats,
    /// Mean receiver subscription level across trials (diagnostic).
    pub mean_level: RunningStats,
    /// Mean receiver goodput in packets/slot across trials (diagnostic).
    pub goodput: RunningStats,
    /// Mean observed loss rate among requested packets across trials — the
    /// loss-regime statistic: how much loss receivers actually saw under
    /// the configured shared/independent mix.
    pub observed_loss: RunningStats,
    /// Per-receiver goodput distribution: one observation per
    /// `(receiver, trial)` pair, so `min()`/`max()`/`std_dev()` expose the
    /// *spread* across receivers that the per-trial means above average
    /// away (fairness is about the worst-off receiver, not the mean one).
    pub receiver_goodput: RunningStats,
    /// Per-receiver mean-subscription-level distribution, one observation
    /// per `(receiver, trial)` pair.
    pub receiver_mean_level: RunningStats,
}

enum Markers {
    None(NoMarkers),
    Coordinated(CoordinatedSender),
}

impl MarkerSource for Markers {
    fn marker(&mut self, slot: Tick, layer: usize) -> Option<usize> {
        match self {
            Markers::None(m) => m.marker(slot, layer),
            Markers::Coordinated(m) => m.marker(slot, layer),
        }
    }
}

/// Reusable state for a point's trial loop: the star configuration (shared
/// by every trial of the point), the engine's loss/RNG scratch, the output
/// report buffers, and the per-receiver controller vector. One `TrialRig`
/// runs any number of trials of one `(protocol, params)` pair with no
/// steady-state allocation beyond the per-trial controller boxes.
struct TrialRig {
    cfg: StarConfig,
    controllers: Vec<Box<dyn ReceiverController>>,
    report: StarReport,
    scratch: StarScratch,
}

impl TrialRig {
    fn new(params: &ExperimentParams) -> Self {
        let cfg = StarConfig::figure8(
            params.layers,
            params.receivers,
            params.shared_loss,
            params.independent_loss,
        )
        .with_latencies(params.join_latency, params.leave_latency);
        TrialRig {
            cfg,
            controllers: Vec::with_capacity(params.receivers),
            report: StarReport::default(),
            scratch: StarScratch::default(),
        }
    }

    /// Run one trial into the rig's report buffer. Results are bitwise
    /// identical to the standalone [`run_trial`]: the configuration is
    /// trial-independent and every piece of mutable state (controllers,
    /// loss processes, RNG streams) is rebuilt from the trial seed.
    fn run(&mut self, kind: ProtocolKind, params: &ExperimentParams, trial: usize) -> &StarReport {
        let seed = params.seed.wrapping_add(trial as u64);
        let base = SimRng::seed_from_u64(seed ^ 0xABCD_EF01_2345_6789);
        self.controllers.clear();
        self.controllers.extend(
            (0..params.receivers).map(|r| make_receiver(kind, base.split(1_000_000 + r as u64))),
        );
        let mut markers = match kind {
            ProtocolKind::Coordinated => {
                Markers::Coordinated(CoordinatedSender::new(params.layers))
            }
            _ => Markers::None(NoMarkers),
        };
        run_star_into(
            &self.cfg,
            &mut self.controllers,
            &mut markers,
            params.packets,
            seed,
            &mut self.report,
            &mut self.scratch,
        );
        &self.report
    }
}

/// Run one trial and return the raw engine report.
pub fn run_trial(kind: ProtocolKind, params: &ExperimentParams, trial: usize) -> StarReport {
    let mut rig = TrialRig::new(params);
    rig.run(kind, params, trial);
    rig.report
}

/// Run all trials of one `(protocol, loss point)` and aggregate. The star
/// configuration, report buffers and engine scratch are built once and
/// reused across every trial of the point.
pub fn run_point(kind: ProtocolKind, params: &ExperimentParams) -> PointOutcome {
    let mut redundancy = RunningStats::new();
    let mut mean_level = RunningStats::new();
    let mut goodput = RunningStats::new();
    let mut observed_loss = RunningStats::new();
    let mut receiver_goodput = RunningStats::new();
    let mut receiver_mean_level = RunningStats::new();
    let mut rig = TrialRig::new(params);
    for t in 0..params.trials {
        let report = rig.run(kind, params, t);
        if let Some(r) = report.shared_redundancy() {
            redundancy.push(r);
        }
        let n = params.receivers as f64;
        let (mut level_sum, mut goodput_sum, mut loss_sum) = (0.0, 0.0, 0.0);
        for r in 0..params.receivers {
            let (g, l) = (report.goodput(r), report.mean_level(r));
            receiver_goodput.push(g);
            receiver_mean_level.push(l);
            goodput_sum += g;
            level_sum += l;
            loss_sum += report.loss_rate(r);
        }
        mean_level.push(level_sum / n);
        goodput.push(goodput_sum / n);
        observed_loss.push(loss_sum / n);
    }
    PointOutcome {
        kind,
        redundancy,
        mean_level,
        goodput,
        observed_loss,
        receiver_goodput,
        receiver_mean_level,
    }
}

/// One x-axis point of Figure 8: all three protocols at one independent-loss
/// value.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure8Point {
    /// The fanout-link loss rate (x-axis).
    pub independent_loss: f64,
    /// Outcomes ordered as [`ProtocolKind::ALL`].
    pub outcomes: Vec<PointOutcome>,
}

/// Sweep the independent-loss axis for all three protocols at a fixed
/// shared loss — one full Figure 8 panel. `template` supplies everything
/// except the independent loss.
pub fn figure8_series(
    template: &ExperimentParams,
    independent_losses: &[f64],
) -> Vec<Figure8Point> {
    independent_losses
        .iter()
        .map(|&p| {
            let params = ExperimentParams {
                independent_loss: p,
                ..*template
            };
            Figure8Point {
                independent_loss: p,
                outcomes: ProtocolKind::ALL
                    .iter()
                    .map(|&kind| run_point(kind, &params))
                    .collect(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundancy_is_at_least_one_and_bounded() {
        for kind in ProtocolKind::ALL {
            let params = ExperimentParams {
                trials: 3,
                packets: 20_000,
                receivers: 10,
                ..ExperimentParams::quick(0.0001, 0.02).unwrap()
            };
            let out = run_point(kind, &params);
            let r = out.redundancy.mean();
            assert!(r >= 1.0, "{}: redundancy {r} < 1", kind.label());
            assert!(
                r < 10.0,
                "{}: redundancy {r} implausibly high",
                kind.label()
            );
        }
    }

    #[test]
    fn coordinated_beats_uncoordinated_at_moderate_independent_loss() {
        // The paper's headline: sender coordination keeps redundancy lowest
        // when receivers' losses are independent and equal.
        let params = ExperimentParams {
            trials: 4,
            packets: 30_000,
            receivers: 24,
            ..ExperimentParams::quick(0.0001, 0.05).unwrap()
        };
        let coord = run_point(ProtocolKind::Coordinated, &params);
        let uncoord = run_point(ProtocolKind::Uncoordinated, &params);
        assert!(
            coord.redundancy.mean() < uncoord.redundancy.mean(),
            "coordinated {} !< uncoordinated {}",
            coord.redundancy.mean(),
            uncoord.redundancy.mean()
        );
    }

    #[test]
    fn redundancy_grows_with_independent_loss_for_uncoordinated() {
        let lo = run_point(
            ProtocolKind::Uncoordinated,
            &ExperimentParams {
                trials: 3,
                packets: 30_000,
                receivers: 16,
                ..ExperimentParams::quick(0.0001, 0.01).unwrap()
            },
        );
        let hi = run_point(
            ProtocolKind::Uncoordinated,
            &ExperimentParams {
                trials: 3,
                packets: 30_000,
                receivers: 16,
                ..ExperimentParams::quick(0.0001, 0.08).unwrap()
            },
        );
        assert!(
            hi.redundancy.mean() > lo.redundancy.mean(),
            "lo {} hi {}",
            lo.redundancy.mean(),
            hi.redundancy.mean()
        );
    }

    #[test]
    fn pure_shared_loss_keeps_receivers_synchronized() {
        // With only shared loss, all receivers see identical loss patterns.
        // Deterministic receivers then move in lockstep: redundancy ≈ 1.
        let params = ExperimentParams {
            trials: 3,
            ..ExperimentParams::quick(0.02, 0.0).unwrap()
        };
        let out = run_point(ProtocolKind::Deterministic, &params);
        let r = out.redundancy.mean();
        assert!(r < 1.05, "lockstep redundancy should be ~1, got {r}");
    }

    #[test]
    fn bad_loss_probabilities_are_rejected_with_typed_errors() {
        // NaN payloads can't be compared with ==; match the variant.
        assert!(matches!(
            ExperimentParams::quick(f64::NAN, 0.05).unwrap_err(),
            ExperimentParamError::NonFiniteLoss {
                which: "shared",
                value,
            } if value.is_nan()
        ));
        assert_eq!(
            ExperimentParams::paper(0.0001, f64::INFINITY).unwrap_err(),
            ExperimentParamError::NonFiniteLoss {
                which: "independent",
                value: f64::INFINITY,
            }
        );
        assert_eq!(
            ExperimentParams::quick(-0.1, 0.05).unwrap_err(),
            ExperimentParamError::LossOutOfRange {
                which: "shared",
                value: -0.1,
            }
        );
        // Loss of exactly 1 starves every trial: rejected (half-open range).
        assert_eq!(
            ExperimentParams::paper(0.0001, 1.0).unwrap_err(),
            ExperimentParamError::LossOutOfRange {
                which: "independent",
                value: 1.0,
            }
        );
        // Boundary: 0 is a valid (lossless) probability.
        assert!(ExperimentParams::quick(0.0, 0.0).is_ok());
        let msg = ExperimentParams::quick(0.0001, 2.0)
            .unwrap_err()
            .to_string();
        assert_eq!(msg, "independent loss rate 2 is outside [0, 1)");
    }

    #[test]
    fn hand_built_params_validate_and_rederive() {
        let template = ExperimentParams::quick(0.0001, 0.0).unwrap();
        let swept = template.with_independent_loss(0.07).unwrap();
        assert_eq!(swept.independent_loss, 0.07);
        assert_eq!(swept.shared_loss, template.shared_loss);
        assert!(template.with_independent_loss(f64::NAN).is_err());
        let bad = ExperimentParams {
            shared_loss: 3.0,
            ..template
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn observed_loss_tracks_the_configured_regime() {
        // With 2% shared loss only, receivers should observe ~2% loss.
        let params = ExperimentParams {
            trials: 3,
            ..ExperimentParams::quick(0.02, 0.0).unwrap()
        };
        let out = run_point(ProtocolKind::Deterministic, &params);
        let seen = out.observed_loss.mean();
        assert!(
            (seen - 0.02).abs() < 0.01,
            "observed loss {seen} far from configured 0.02"
        );
    }

    #[test]
    fn per_receiver_distributions_bracket_the_means() {
        let params = ExperimentParams {
            trials: 3,
            packets: 20_000,
            receivers: 12,
            ..ExperimentParams::quick(0.0001, 0.05).unwrap()
        };
        let out = run_point(ProtocolKind::Uncoordinated, &params);
        // One observation per (receiver, trial).
        assert_eq!(out.receiver_goodput.count(), 12 * 3);
        assert_eq!(out.receiver_mean_level.count(), 12 * 3);
        // The distribution brackets the per-trial means, with real spread
        // under independent loss.
        assert!(out.receiver_goodput.min() <= out.goodput.mean());
        assert!(out.receiver_goodput.max() >= out.goodput.mean());
        assert!(out.receiver_mean_level.min() <= out.mean_level.mean());
        assert!(out.receiver_mean_level.max() >= out.mean_level.mean());
        assert!(
            out.receiver_mean_level.std_dev() > 0.0,
            "independent loss desynchronizes receivers"
        );
        // Same pooled mean as the mean-of-per-trial-means (equal-size
        // groups), up to float associativity.
        assert!((out.receiver_goodput.mean() - out.goodput.mean()).abs() < 1e-9);
    }

    #[test]
    fn trials_are_reproducible() {
        let params = ExperimentParams::quick(0.001, 0.03).unwrap();
        let a = run_trial(ProtocolKind::Deterministic, &params, 0);
        let b = run_trial(ProtocolKind::Deterministic, &params, 0);
        assert_eq!(a.shared_carried, b.shared_carried);
        assert_eq!(a.offered, b.offered);
        let c = run_trial(ProtocolKind::Deterministic, &params, 1);
        assert_ne!(a.offered, c.offered);
    }

    #[test]
    fn series_covers_all_protocols() {
        let template = ExperimentParams {
            trials: 2,
            packets: 10_000,
            receivers: 8,
            ..ExperimentParams::quick(0.0001, 0.0).unwrap()
        };
        let series = figure8_series(&template, &[0.01, 0.05]);
        assert_eq!(series.len(), 2);
        for point in &series {
            assert_eq!(point.outcomes.len(), 3);
            for out in &point.outcomes {
                assert_eq!(out.redundancy.count(), 2);
            }
        }
    }
}
