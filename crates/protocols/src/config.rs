//! Shared protocol parameters (Section 4).
//!
//! All three protocols use the exponential layer schedule (aggregate rate of
//! layers `1..=i` equal to `2^{i−1}`) and the join pacing of Vicisano et
//! al.: the expected number of packets a receiver collects between a
//! join/leave event and its next join from level `i` is `2^{2(i−1)}`.
//! Doubling the aggregate rate on a join while quadrupling the wait between
//! joins is what makes the probe pressure decay at higher rates, mimicking
//! TCP's linear probe against an exponentially-spaced rate ladder.

/// Which Section 4 protocol a receiver runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// No coordination: on each received packet, join one layer with
    /// probability `2^{−2(i−1)}` (memoryless).
    Uncoordinated,
    /// No coordination: join after exactly `2^{2(i−1)}` consecutively
    /// received packets since the last join/leave event.
    Deterministic,
    /// Sender coordination: join only when a sender marker says so; a
    /// marker for level `i` implies markers for all levels below.
    Coordinated,
}

impl ProtocolKind {
    /// All three, in the paper's presentation order.
    pub const ALL: [ProtocolKind; 3] = [
        ProtocolKind::Uncoordinated,
        ProtocolKind::Deterministic,
        ProtocolKind::Coordinated,
    ];

    /// Display label matching the Figure 8 legend.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Uncoordinated => "Uncoordinated",
            ProtocolKind::Deterministic => "Deterministic",
            ProtocolKind::Coordinated => "Coordinated",
        }
    }
}

/// The join threshold at level `i`: `2^{2(i−1)}` packets.
///
/// # Panics
///
/// Panics for `i = 0` (levels are 1-based) or thresholds beyond `u64`.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub fn join_threshold(level: usize) -> u64 {
    assert!((1..=32).contains(&level), "level out of range");
    1u64 << (2 * (level - 1))
}

/// The per-packet join probability of the Uncoordinated protocol at level
/// `i`: `1 / 2^{2(i−1)}` (so the expected packets-to-join matches
/// [`join_threshold`]).
pub(crate) fn join_probability(level: usize) -> f64 {
    1.0 / join_threshold(level) as f64
}

/// Protocol/experiment configuration for the Figure 8 family.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProtocolConfig {
    /// Number of layers `M` (8 in the paper).
    pub layers: usize,
    /// Which protocol receivers run.
    pub kind: ProtocolKind,
}

impl ProtocolConfig {
    /// The paper's setting: 8 layers.
    pub fn paper(kind: ProtocolKind) -> Self {
        ProtocolConfig { layers: 8, kind }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_quadratic_powers() {
        assert_eq!(join_threshold(1), 1);
        assert_eq!(join_threshold(2), 4);
        assert_eq!(join_threshold(3), 16);
        assert_eq!(join_threshold(8), 16384);
    }

    #[test]
    fn probability_is_reciprocal() {
        for i in 1..=8 {
            let p = join_probability(i);
            assert!((p * join_threshold(i) as f64 - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn labels_match_figure8_legend() {
        assert_eq!(ProtocolKind::Uncoordinated.label(), "Uncoordinated");
        assert_eq!(ProtocolKind::Deterministic.label(), "Deterministic");
        assert_eq!(ProtocolKind::Coordinated.label(), "Coordinated");
        assert_eq!(ProtocolKind::ALL.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn level_zero_panics() {
        let _ = join_threshold(0);
    }
}
