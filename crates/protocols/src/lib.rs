//! # mlf-protocols — layered congestion-control protocols (Section 4)
//!
//! The three protocols of *"The Impact of Multicast Layering on Network
//! Fairness"* (SIGCOMM '99), which differ only in how layer *joins* are
//! coordinated within a session (everyone leaves the top layer on a
//! congestion event):
//!
//! * **Uncoordinated** — each received packet triggers a join with
//!   probability `2^{−2(i−1)}`;
//! * **Deterministic** — a join fires after exactly `2^{2(i−1)}` packets
//!   received without loss since the last join/leave event;
//! * **Coordinated** — the sender stamps base-layer packets with dyadic
//!   join markers; a marker for level `i` implies one for every `j < i`.
//!
//! [`experiment`] drives the Figure 8 measurements on the 100-receiver
//! modified star (via `mlf-sim`); [`markov`] solves the two-receiver
//! Figure 7(a) model exactly and reproduces the paper's analytic finding
//! that redundancy peaks when receivers share identical end-to-end loss
//! rates.
//!
//! ## Sweep entry points
//!
//! [`run_point`] is the unit of work: one `(protocol, loss point)` cell,
//! all trials aggregated into a [`PointOutcome`] (shared-link redundancy,
//! mean subscription level, goodput, and the observed loss regime). It is
//! a pure function of its [`ExperimentParams`], which is what lets
//! `mlf-scenario`'s `ProtocolScenario` shard whole
//! `(protocol × loss × seed)` grids across worker threads with bitwise
//! serial/parallel agreement. [`figure8_series`] remains the serial
//! reference for one full Figure 8 panel; parallel callers should prefer
//! the scenario path. [`ExperimentParams::paper`]/[`ExperimentParams::quick`]
//! reject non-finite or out-of-`[0,1)` loss probabilities with a typed
//! [`ExperimentParamError`] instead of producing NaN trial statistics.
//!
//! ## Example
//!
//! ```
//! use mlf_protocols::{experiment, ProtocolKind};
//!
//! // One scaled-down Figure 8 point.
//! let params = experiment::ExperimentParams {
//!     trials: 2, packets: 10_000, receivers: 8,
//!     ..experiment::ExperimentParams::quick(0.0001, 0.05).unwrap()
//! };
//! let out = experiment::run_point(ProtocolKind::Coordinated, &params);
//! assert!(out.redundancy.mean() >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod config;
pub mod experiment;
pub mod markov;
pub mod receiver;
pub mod sender;

pub use active::run_trial_active;
pub use config::ProtocolConfig;
pub use config::{join_threshold, ProtocolKind};
pub use experiment::{
    figure8_series, run_point, run_trial, validate_loss, ExperimentParamError, ExperimentParams,
    PointOutcome,
};
pub use markov::two_receiver_chain;
pub use markov::{DenseChain, TwoReceiverModel};
pub use receiver::{
    make_receiver, CoordinatedReceiver, DeterministicReceiver, UncoordinatedReceiver,
};
pub use sender::CoordinatedSender;
