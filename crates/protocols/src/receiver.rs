//! The three receiver state machines of Section 4.
//!
//! Common behaviour: "a receiver leaves the highest layer joined (unless
//! only joined to one layer) whenever it observes a congestion event", and
//! probes for bandwidth by joining layers. The protocols differ only in
//! *when* they join:
//!
//! * [`UncoordinatedReceiver`] — upon receiving a packet, joins with
//!   probability `2^{−2(i−1)}` (a memoryless coin flip);
//! * [`DeterministicReceiver`] — joins after a fixed `2^{2(i−1)}` packets
//!   received without loss since its last join or leave event;
//! * [`CoordinatedReceiver`] — joins exactly when a sender marker tells
//!   receivers at its level to (markers for level `i` imply markers for all
//!   `j < i`, so one threshold field suffices).

use crate::config::{join_probability, join_threshold, ProtocolKind};
use mlf_sim::{Action, PacketEvent, ReceiverController, SimRng};

/// Uncoordinated: per-packet probabilistic joins.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone)]
pub struct UncoordinatedReceiver {
    rng: SimRng,
}

impl UncoordinatedReceiver {
    /// Create with a dedicated RNG substream (each receiver must get its
    /// own so runs stay reproducible as receivers are added).
    pub fn new(rng: SimRng) -> Self {
        UncoordinatedReceiver { rng }
    }
}

impl ReceiverController for UncoordinatedReceiver {
    fn on_packet(&mut self, ev: &PacketEvent) -> Action {
        if ev.lost {
            return Action::LeaveDown; // engine clamps at level 1
        }
        if ev.level < ev.layer_count && self.rng.bernoulli(join_probability(ev.level)) {
            Action::JoinUp
        } else {
            Action::Stay
        }
    }
}

/// Deterministic: joins after a fixed run of clean packets.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, Default)]
pub struct DeterministicReceiver {
    /// Clean packets received since the last join/leave event.
    clean_run: u64,
}

impl DeterministicReceiver {
    /// Fresh receiver (counter zeroed).
    pub fn new() -> Self {
        Self::default()
    }
}

impl ReceiverController for DeterministicReceiver {
    fn on_packet(&mut self, ev: &PacketEvent) -> Action {
        if ev.lost {
            // A congestion event: leave and restart the run. Leaving *is*
            // a join/leave event, so the counter resets either way.
            self.clean_run = 0;
            return Action::LeaveDown;
        }
        self.clean_run += 1;
        if ev.level < ev.layer_count && self.clean_run >= join_threshold(ev.level) {
            self.clean_run = 0;
            Action::JoinUp
        } else {
            Action::Stay
        }
    }
}

/// Coordinated: joins only on sender markers.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, Default)]
pub struct CoordinatedReceiver;

impl CoordinatedReceiver {
    /// Fresh receiver.
    pub fn new() -> Self {
        CoordinatedReceiver
    }
}

impl ReceiverController for CoordinatedReceiver {
    fn on_packet(&mut self, ev: &PacketEvent) -> Action {
        if ev.lost {
            return Action::LeaveDown;
        }
        match ev.marker {
            Some(threshold) if ev.level <= threshold && ev.level < ev.layer_count => Action::JoinUp,
            _ => Action::Stay,
        }
    }
}

/// A boxed controller for any of the three protocols, wired to its own RNG
/// substream where needed.
pub fn make_receiver(kind: ProtocolKind, rng: SimRng) -> Box<dyn ReceiverController> {
    match kind {
        ProtocolKind::Uncoordinated => Box::new(UncoordinatedReceiver::new(rng)),
        ProtocolKind::Deterministic => Box::new(DeterministicReceiver::new()),
        ProtocolKind::Coordinated => Box::new(CoordinatedReceiver::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(level: usize, lost: bool, marker: Option<usize>) -> PacketEvent {
        PacketEvent {
            slot: 0,
            layer: 1,
            lost,
            marker,
            level,
            layer_count: 8,
        }
    }

    #[test]
    fn all_protocols_leave_on_loss() {
        let rng = SimRng::seed_from_u64(1);
        let mut u = UncoordinatedReceiver::new(rng);
        let mut d = DeterministicReceiver::new();
        let mut c = CoordinatedReceiver::new();
        assert_eq!(u.on_packet(&ev(3, true, None)), Action::LeaveDown);
        assert_eq!(d.on_packet(&ev(3, true, None)), Action::LeaveDown);
        assert_eq!(c.on_packet(&ev(3, true, None)), Action::LeaveDown);
    }

    #[test]
    fn deterministic_joins_after_exact_threshold() {
        let mut d = DeterministicReceiver::new();
        // Level 2: threshold 4 clean packets.
        for _ in 0..3 {
            assert_eq!(d.on_packet(&ev(2, false, None)), Action::Stay);
        }
        assert_eq!(d.on_packet(&ev(2, false, None)), Action::JoinUp);
        // Counter reset after the join.
        assert_eq!(d.on_packet(&ev(3, false, None)), Action::Stay);
    }

    #[test]
    fn deterministic_resets_on_loss() {
        let mut d = DeterministicReceiver::new();
        for _ in 0..3 {
            let _ = d.on_packet(&ev(2, false, None));
        }
        let _ = d.on_packet(&ev(2, true, None)); // loss wipes the run
        for _ in 0..3 {
            assert_eq!(d.on_packet(&ev(2, false, None)), Action::Stay);
        }
        assert_eq!(d.on_packet(&ev(2, false, None)), Action::JoinUp);
    }

    #[test]
    fn deterministic_never_joins_past_top_layer() {
        let mut d = DeterministicReceiver::new();
        for _ in 0..100_000 {
            assert_eq!(d.on_packet(&ev(8, false, None)), Action::Stay);
        }
    }

    #[test]
    fn uncoordinated_join_frequency_matches_probability() {
        let mut u = UncoordinatedReceiver::new(SimRng::seed_from_u64(2));
        let n = 200_000;
        let joins = (0..n)
            .filter(|_| u.on_packet(&ev(3, false, None)) == Action::JoinUp)
            .count();
        // Level 3: p = 1/16, expect n/16 = 12500 ± noise.
        let freq = joins as f64 / n as f64;
        assert!((freq - 1.0 / 16.0).abs() < 0.003, "freq {freq}");
    }

    #[test]
    fn uncoordinated_at_level1_joins_every_clean_packet() {
        // Threshold at level 1 is 1 packet -> probability 1.
        let mut u = UncoordinatedReceiver::new(SimRng::seed_from_u64(3));
        for _ in 0..10 {
            assert_eq!(u.on_packet(&ev(1, false, None)), Action::JoinUp);
        }
    }

    #[test]
    fn coordinated_only_acts_on_markers_at_or_above_level() {
        let mut c = CoordinatedReceiver::new();
        assert_eq!(c.on_packet(&ev(3, false, None)), Action::Stay);
        assert_eq!(c.on_packet(&ev(3, false, Some(2))), Action::Stay);
        assert_eq!(c.on_packet(&ev(3, false, Some(3))), Action::JoinUp);
        assert_eq!(c.on_packet(&ev(2, false, Some(3))), Action::JoinUp);
        // At the top layer it cannot join further.
        assert_eq!(c.on_packet(&ev(8, false, Some(8))), Action::Stay);
    }

    #[test]
    fn boxed_dispatch_works() {
        let mut r = make_receiver(ProtocolKind::Deterministic, SimRng::seed_from_u64(4));
        assert_eq!(r.on_packet(&ev(1, false, None)), Action::JoinUp);
    }
}
