//! The Coordinated protocol's sender: a dyadic join-marker schedule.
//!
//! "The sender indicates (e.g., through a field within its transmitted
//! packet) when receivers should join an additional layer. This is done in
//! such a way so that when the field indicates that receivers joined up to
//! layer `i` should join layer `i+1`, it also indicates that receivers
//! joined up to layer `j < i` should join layer `j+1`." (Section 4)
//!
//! A single *threshold* field implements the implication: a marker with
//! threshold `t` means "everyone at level ≤ t joins one layer".
//!
//! Markers ride **base-layer packets** — the one layer every receiver always
//! holds, so every receiver has a chance to see every marker. Base-layer
//! packets arrive once per `2^{M−1}` slots under the exponential schedule.
//! Emitting threshold-`t` markers on every `2^{t−1}`-th base-layer packet
//! makes the marker interval for level `i` equal to `2^{M+i−2}` slots;
//! a receiver at level `i` (aggregate rate `2^{i−1}` packets per `2^{M−1}`
//! slots) therefore collects `2^{2(i−1)}` packets between its markers —
//! exactly the paper's pacing. The dyadic pattern means thresholds nest:
//! `1, 2, 1, 3, 1, 2, 1, 4, ...` (the ruler sequence).

use mlf_sim::{MarkerSource, Tick};

/// Sender-side marker scheduler for the Coordinated protocol.
#[derive(Debug, Clone)]
pub struct CoordinatedSender {
    /// Number of layers `M` (markers max out at threshold `M − 1`; a join
    /// from `M` is impossible).
    layers: usize,
    /// Count of base-layer packets emitted so far.
    base_packets: u64,
}

impl CoordinatedSender {
    /// A sender for `layers` layers.
    pub fn new(layers: usize) -> Self {
        assert!(layers >= 1);
        CoordinatedSender {
            layers,
            base_packets: 0,
        }
    }

    /// The marker threshold for the `k`-th base-layer packet (`k ≥ 1`):
    /// `min(trailing_zeros(k) + 1, M − 1)` — the ruler sequence capped at
    /// the highest joinable level.
    pub fn threshold_for(&self, k: u64) -> usize {
        debug_assert!(k >= 1);
        let t = k.trailing_zeros() as usize + 1;
        t.min(self.layers.saturating_sub(1)).max(1)
    }
}

impl MarkerSource for CoordinatedSender {
    fn marker(&mut self, _slot: Tick, layer: usize) -> Option<usize> {
        if layer != 1 || self.layers < 2 {
            return None;
        }
        self.base_packets += 1;
        Some(self.threshold_for(self.base_packets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ruler_sequence_thresholds() {
        let s = CoordinatedSender::new(8);
        let seq: Vec<usize> = (1..=16).map(|k| s.threshold_for(k)).collect();
        assert_eq!(seq, vec![1, 2, 1, 3, 1, 2, 1, 4, 1, 2, 1, 3, 1, 2, 1, 5]);
    }

    #[test]
    fn thresholds_cap_at_m_minus_1() {
        let s = CoordinatedSender::new(4);
        // k = 8 would be threshold 4, capped to 3.
        assert_eq!(s.threshold_for(8), 3);
        assert_eq!(s.threshold_for(1024), 3);
    }

    #[test]
    fn markers_only_on_base_layer() {
        let mut s = CoordinatedSender::new(8);
        assert_eq!(s.marker(0, 2), None);
        assert_eq!(s.marker(1, 8), None);
        assert_eq!(s.marker(2, 1), Some(1));
        assert_eq!(s.marker(3, 1), Some(2));
    }

    #[test]
    fn marker_rate_for_level_i_matches_pacing() {
        // Over 2^{i-1} consecutive base packets there is exactly one marker
        // with threshold >= i (for i <= M-1).
        let s = CoordinatedSender::new(8);
        for i in 1..=7usize {
            let window = 1u64 << (i - 1);
            for start in [1u64, 17, 129] {
                let count = (start..start + window)
                    .filter(|&k| s.threshold_for(k) >= i)
                    .count();
                assert_eq!(count, 1, "level {i}, window at {start}");
            }
        }
    }

    #[test]
    fn single_layer_sender_never_marks() {
        let mut s = CoordinatedSender::new(1);
        assert_eq!(s.marker(0, 1), None);
    }
}
