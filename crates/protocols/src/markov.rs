//! Markov-chain analysis of the two-receiver star (Figure 7(a)).
//!
//! The paper analyzes the protocols over the two-receiver model with Markov
//! chains (Appendix F of the technical report) and reports the headline
//! finding reproduced here: *redundancy is highest when receivers
//! experience the same end-to-end loss rates*. The authors note their
//! chains were "too computation-intensive" for large receiver sets; on
//! modern hardware the two-receiver chain solves in microseconds, so we
//! solve it exactly and hand the many-receiver regime to simulation.
//!
//! # The chain
//!
//! State: the pair of subscription levels `(ℓ₁, ℓ₂) ∈ {1..M}²`. One step =
//! one slot of the aggregate packet stream; the slot's layer is drawn
//! categorically with probability proportional to the layer rates (the
//! deterministic WRR schedule's stationary frequencies). Loss is drawn once
//! on the shared link (correlating the receivers) and independently per
//! fanout link. A subscribed receiver leaves on loss; on a clean packet it
//! joins per protocol:
//!
//! * **Uncoordinated** — with probability `2^{−2(ℓ−1)}`: *exactly* Markov.
//! * **Deterministic** — the clean-run counter is abstracted to the same
//!   memoryless join probability (matching the mean pacing). This is the
//!   standard geometric approximation; the simulation quantifies the gap.
//! * **Coordinated** — base-layer packets carry a threshold `T` with the
//!   dyadic distribution `P(T ≥ t) = 2^{−(t−1)}`; both receivers see the
//!   *same* `T` (drawn once), which is what correlates their joins. The
//!   deterministic ruler schedule is abstracted to this matching Bernoulli
//!   mixture.

use crate::config::{join_probability, ProtocolKind};

/// A dense finite discrete-time Markov chain (row-stochastic matrix).
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone)]
pub struct DenseChain {
    /// `p[s][t]` = transition probability from state `s` to state `t`.
    p: Vec<Vec<f64>>,
}

impl DenseChain {
    /// Build from a row-stochastic matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or a row does not sum to 1
    /// (within 1e-9).
    pub fn new(p: Vec<Vec<f64>>) -> Self {
        let n = p.len();
        for (s, row) in p.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {s} sums to {sum}, not 1");
            assert!(row.iter().all(|&x| x >= -1e-15), "negative probability");
        }
        DenseChain { p }
    }

    /// Number of states.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn state_count(&self) -> usize {
        self.p.len()
    }

    /// The transition probability from `s` to `t`.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn prob(&self, s: usize, t: usize) -> f64 {
        self.p[s][t]
    }

    /// Stationary distribution by power iteration from the uniform vector.
    /// Converges for the aperiodic, irreducible chains built here; the
    /// iteration cap guards against pathological inputs.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    #[allow(clippy::needless_range_loop)] // dense matrix-vector product
    pub fn stationary(&self, tol: f64, max_iter: usize) -> Vec<f64> {
        let n = self.state_count();
        let mut pi = vec![1.0 / n as f64; n];
        let mut next = vec![0.0; n];
        for _ in 0..max_iter {
            for t in next.iter_mut() {
                *t = 0.0;
            }
            for s in 0..n {
                let ps = pi[s];
                if ps == 0.0 {
                    continue;
                }
                for t in 0..n {
                    next[t] += ps * self.p[s][t];
                }
            }
            let delta: f64 = pi.iter().zip(&next).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut pi, &mut next);
            if delta < tol {
                break;
            }
        }
        pi
    }
}

/// The two-receiver chain plus its state indexing.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone)]
pub struct TwoReceiverModel {
    /// The chain over states `(ℓ₁, ℓ₂)`.
    pub chain: DenseChain,
    /// Number of layers `M`.
    pub layers: usize,
}

impl TwoReceiverModel {
    /// Flatten `(ℓ₁, ℓ₂)` (1-based levels) to a state index.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn state_index(&self, l1: usize, l2: usize) -> usize {
        (l1 - 1) * self.layers + (l2 - 1)
    }

    /// Unflatten a state index to `(ℓ₁, ℓ₂)`.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn levels_of(&self, s: usize) -> (usize, usize) {
        (s / self.layers + 1, s % self.layers + 1)
    }

    /// The stationary shared-link redundancy:
    /// `E[2^{max(ℓ₁,ℓ₂)−1}] / max(E[2^{ℓ₁−1}], E[2^{ℓ₂−1}])` — the
    /// long-term average link rate over the larger receiver's long-term
    /// average rate (Definition 3 in expectation).
    pub fn stationary_redundancy(&self) -> f64 {
        let pi = self.chain.stationary(1e-12, 200_000);
        let mut link = 0.0;
        let mut r1 = 0.0;
        let mut r2 = 0.0;
        for (s, &w) in pi.iter().enumerate() {
            let (l1, l2) = self.levels_of(s);
            link += w * (1u64 << (l1.max(l2) - 1)) as f64;
            r1 += w * (1u64 << (l1 - 1)) as f64;
            r2 += w * (1u64 << (l2 - 1)) as f64;
        }
        link / r1.max(r2)
    }

    /// Mean subscription level of each receiver in the stationary regime.
    pub fn stationary_levels(&self) -> (f64, f64) {
        let pi = self.chain.stationary(1e-12, 200_000);
        let mut m1 = 0.0;
        let mut m2 = 0.0;
        for (s, &w) in pi.iter().enumerate() {
            let (l1, l2) = self.levels_of(s);
            m1 += w * l1 as f64;
            m2 += w * l2 as f64;
        }
        (m1, m2)
    }
}

/// Build the Figure 7(a) chain for a protocol: `layers` exponential layers,
/// shared loss `p_s`, and per-receiver independent losses `p_1`, `p_2`.
pub fn two_receiver_chain(
    kind: ProtocolKind,
    layers: usize,
    p_s: f64,
    p_1: f64,
    p_2: f64,
) -> TwoReceiverModel {
    assert!((1..=12).contains(&layers), "state space out of range");
    for p in [p_s, p_1, p_2] {
        assert!((0.0..=1.0).contains(&p));
    }
    let m = layers;
    let n = m * m;
    let total_rate = (1u64 << (m - 1)) as f64;
    // P(slot layer = j), j in 1..=m: layer rates 1,1,2,4,... over 2^{m-1}.
    let layer_prob = |j: usize| -> f64 {
        let r = if j == 1 {
            1.0
        } else {
            (1u64 << (j - 2)) as f64
        };
        r / total_rate
    };
    // Coordinated: threshold distribution for base-layer packets.
    // P(T = t) for t in 1..m: dyadic ruler frequencies, capped at m-1.
    let thresh_prob = |t: usize| -> f64 {
        if m < 2 {
            return 0.0;
        }
        let cap = m - 1;
        if t < cap {
            (0.5f64).powi(t as i32 - 1) - (0.5f64).powi(t as i32)
        } else if t == cap {
            (0.5f64).powi(t as i32 - 1)
        } else {
            0.0
        }
    };

    let mut p = vec![vec![0.0; n]; n];
    for l1 in 1..=m {
        for l2 in 1..=m {
            let s = (l1 - 1) * m + (l2 - 1);
            // Enumerate slot layer.
            for j in 1..=m {
                let pj = layer_prob(j);
                let sub1 = j <= l1;
                let sub2 = j <= l2;
                if !sub1 && !sub2 {
                    // Nobody subscribed: no transition.
                    p[s][s] += pj;
                    continue;
                }
                // Enumerate shared loss and independent losses.
                for (shared, pshared) in [(true, p_s), (false, 1.0 - p_s)] {
                    for (x1, px1) in [(true, p_1), (false, 1.0 - p_1)] {
                        for (x2, px2) in [(true, p_2), (false, 1.0 - p_2)] {
                            let w = pj * pshared * px1 * px2;
                            if w == 0.0 {
                                continue;
                            }
                            let lost1 = sub1 && (shared || x1);
                            let lost2 = sub2 && (shared || x2);
                            // Joint join behaviour.
                            match kind {
                                ProtocolKind::Coordinated => {
                                    // Markers only on base-layer packets;
                                    // one threshold draw correlates both.
                                    if j == 1 && m >= 2 {
                                        for t in 1..m {
                                            let pt = thresh_prob(t);
                                            if pt == 0.0 {
                                                continue;
                                            }
                                            let n1 = next_level(
                                                l1,
                                                sub1,
                                                lost1,
                                                !lost1 && sub1 && l1 <= t,
                                                m,
                                            );
                                            let n2 = next_level(
                                                l2,
                                                sub2,
                                                lost2,
                                                !lost2 && sub2 && l2 <= t,
                                                m,
                                            );
                                            p[s][(n1 - 1) * m + (n2 - 1)] += w * pt;
                                        }
                                    } else {
                                        let n1 = next_level(l1, sub1, lost1, false, m);
                                        let n2 = next_level(l2, sub2, lost2, false, m);
                                        p[s][(n1 - 1) * m + (n2 - 1)] += w;
                                    }
                                }
                                ProtocolKind::Uncoordinated | ProtocolKind::Deterministic => {
                                    // Independent memoryless joins.
                                    let q1 = if sub1 && !lost1 && l1 < m {
                                        join_probability(l1)
                                    } else {
                                        0.0
                                    };
                                    let q2 = if sub2 && !lost2 && l2 < m {
                                        join_probability(l2)
                                    } else {
                                        0.0
                                    };
                                    for (j1, pj1) in [(true, q1), (false, 1.0 - q1)] {
                                        for (j2, pj2) in [(true, q2), (false, 1.0 - q2)] {
                                            let ww = w * pj1 * pj2;
                                            if ww == 0.0 {
                                                continue;
                                            }
                                            let n1 = next_level(l1, sub1, lost1, j1, m);
                                            let n2 = next_level(l2, sub2, lost2, j2, m);
                                            p[s][(n1 - 1) * m + (n2 - 1)] += ww;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    TwoReceiverModel {
        chain: DenseChain::new(p),
        layers: m,
    }
}

/// Next level of one receiver given subscription, loss and join decision.
fn next_level(l: usize, subscribed: bool, lost: bool, join: bool, m: usize) -> usize {
    if !subscribed {
        return l;
    }
    if lost {
        return l.saturating_sub(1).max(1);
    }
    if join && l < m {
        return l + 1;
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_chain_stationary_of_two_state() {
        // P(a->b) = 0.25, P(b->a) = 0.75: pi = (0.75, 0.25).
        let chain = DenseChain::new(vec![vec![0.75, 0.25], vec![0.75, 0.25]]);
        let pi = chain.stationary(1e-14, 1000);
        assert!((pi[0] - 0.75).abs() < 1e-10);
        assert!((pi[1] - 0.25).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "sums to")]
    fn rejects_non_stochastic_rows() {
        let _ = DenseChain::new(vec![vec![0.5, 0.4], vec![0.0, 1.0]]);
    }

    #[test]
    fn rows_are_stochastic_for_all_protocols() {
        // DenseChain::new itself asserts stochasticity; building the chain
        // is the test.
        for kind in ProtocolKind::ALL {
            let model = two_receiver_chain(kind, 6, 0.01, 0.03, 0.05);
            assert_eq!(model.chain.state_count(), 36);
        }
    }

    #[test]
    fn redundancy_is_at_least_one() {
        for kind in ProtocolKind::ALL {
            let model = two_receiver_chain(kind, 6, 0.001, 0.02, 0.02);
            let r = model.stationary_redundancy();
            assert!(r >= 1.0 - 1e-9, "{}: {r}", kind.label());
            assert!(r < 4.0, "{}: {r}", kind.label());
        }
    }

    #[test]
    fn equal_loss_rates_maximize_redundancy() {
        // The paper's key analytic finding. Fix the total "loss budget" and
        // compare the symmetric split against asymmetric ones.
        for kind in [ProtocolKind::Uncoordinated, ProtocolKind::Coordinated] {
            let sym = two_receiver_chain(kind, 6, 0.0001, 0.03, 0.03).stationary_redundancy();
            let asym1 = two_receiver_chain(kind, 6, 0.0001, 0.01, 0.05).stationary_redundancy();
            let asym2 = two_receiver_chain(kind, 6, 0.0001, 0.005, 0.055).stationary_redundancy();
            assert!(
                sym >= asym1 - 1e-6 && sym >= asym2 - 1e-6,
                "{}: sym {sym}, asym {asym1}/{asym2}",
                kind.label()
            );
        }
    }

    #[test]
    fn coordination_reduces_two_receiver_redundancy() {
        let unc = two_receiver_chain(ProtocolKind::Uncoordinated, 6, 0.0001, 0.03, 0.03)
            .stationary_redundancy();
        let coo = two_receiver_chain(ProtocolKind::Coordinated, 6, 0.0001, 0.03, 0.03)
            .stationary_redundancy();
        assert!(coo < unc, "coordinated {coo} !< uncoordinated {unc}");
    }

    #[test]
    fn shared_loss_lowers_redundancy_versus_independent() {
        // Same end-to-end loss, shifted from independent to shared: shared
        // loss synchronizes leaves, so redundancy drops.
        let kind = ProtocolKind::Uncoordinated;
        let independent = two_receiver_chain(kind, 6, 0.0001, 0.04, 0.04).stationary_redundancy();
        let shared = two_receiver_chain(kind, 6, 0.04, 0.0001, 0.0001).stationary_redundancy();
        assert!(
            shared < independent,
            "shared {shared} !< independent {independent}"
        );
    }

    #[test]
    fn stationary_levels_fall_with_loss() {
        let low = two_receiver_chain(ProtocolKind::Uncoordinated, 8, 0.0001, 0.005, 0.005);
        let high = two_receiver_chain(ProtocolKind::Uncoordinated, 8, 0.0001, 0.08, 0.08);
        let (l_low, _) = low.stationary_levels();
        let (l_high, _) = high.stationary_levels();
        assert!(l_low > l_high, "low-loss level {l_low} !> {l_high}");
    }

    #[test]
    fn state_indexing_round_trips() {
        let model = two_receiver_chain(ProtocolKind::Uncoordinated, 5, 0.01, 0.01, 0.01);
        for l1 in 1..=5 {
            for l2 in 1..=5 {
                let s = model.state_index(l1, l2);
                assert_eq!(model.levels_of(s), (l1, l2));
            }
        }
    }
}
