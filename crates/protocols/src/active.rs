//! Active-node coordination (a Section 5 extension, implemented).
//!
//! The paper closes by suggesting that "placing the decision to add and
//! drop layers at the active nodes, rather than at receivers, should
//! increase the coordination of the joins and leaves of layers by
//! downstream receivers, thereby reducing redundancy. Such an approach
//! would make a redundancy of one feasible."
//!
//! This module implements that delegation for the star: the hub runs **one**
//! Deterministic-style congestion-control instance for its whole subtree
//! and every receiver simply tracks the instance's target level. With all
//! receivers holding identical layer sets, the shared link carries exactly
//! what the maximal receiver consumes — redundancy 1 by construction
//! (plus transient slack while stragglers converge).
//!
//! The instance is driven by a *designated representative* receiver's
//! end-to-end congestion experience (receiver 0). Feeding it the union of
//! every receiver's losses would multiply the effective loss rate by the
//! receiver count and collapse the subscription — the loss-path-
//! multiplicity problem the paper's companion work (Bhattacharyya et al.)
//! analyzes. The representative policy is what RLM-style agent designs
//! deploy, and it surfaces the real trade-off of active-node coordination:
//! receivers with worse fanout links than the representative lose packets
//! without their subscription adapting — subtree uniformity buys shared-
//! link efficiency at the price of receiver autonomy (Section 2's
//! single-rate coupling, reborn one hop down).

use crate::config::join_threshold;
use mlf_sim::{Action, PacketEvent, ReceiverController, Tick};
use std::cell::RefCell;
use std::rc::Rc;

/// The active node's shared controller: one target level for the subtree,
/// driven by the representative receiver's congestion experience.
#[derive(Debug)]
pub(crate) struct ActiveNodeState {
    layers: usize,
    target: usize,
    clean_run: u64,
    /// Slot of the last counted congestion event (a representative may see
    /// one packet per slot, but keep the dedup for robustness).
    last_loss_slot: Option<Tick>,
}

impl ActiveNodeState {
    fn new(layers: usize) -> Self {
        ActiveNodeState {
            layers,
            target: 1,
            clean_run: 0,
            last_loss_slot: None,
        }
    }

    /// The current subtree-wide target subscription level.
    ///
    /// Observability hook for the unit tests below; production callers go
    /// through [`active_node_controllers`].
    #[cfg(test)]
    pub(crate) fn target(&self) -> usize {
        self.target
    }

    /// Feed one representative packet event into the instance.
    fn observe(&mut self, ev: &PacketEvent) {
        if ev.lost {
            if self.last_loss_slot != Some(ev.slot) {
                self.last_loss_slot = Some(ev.slot);
                self.clean_run = 0;
                if self.target > 1 {
                    self.target -= 1;
                }
            }
        } else {
            self.clean_run += 1;
            if self.target < self.layers && self.clean_run >= join_threshold(self.target) {
                self.clean_run = 0;
                self.target += 1;
            }
        }
    }
}

/// A receiver that delegates congestion control to the active node and
/// merely tracks its target level. The receiver at `representative_index`
/// additionally feeds its events into the shared instance.
#[derive(Debug, Clone)]
pub(crate) struct ActiveNodeReceiver {
    state: Rc<RefCell<ActiveNodeState>>,
    is_representative: bool,
}

impl ReceiverController for ActiveNodeReceiver {
    fn on_packet(&mut self, ev: &PacketEvent) -> Action {
        let mut st = self.state.borrow_mut();
        if self.is_representative {
            st.observe(ev);
        }
        use std::cmp::Ordering::*;
        match ev.level.cmp(&st.target) {
            Less => Action::JoinUp,
            Equal => Action::Stay,
            Greater => Action::LeaveDown,
        }
    }
}

/// Build one shared active-node state and a controller per receiver
/// (receiver 0 is the representative). Returns the controllers plus a
/// handle to the shared state for inspection.
pub(crate) fn active_node_controllers(
    receivers: usize,
    layers: usize,
) -> (Vec<ActiveNodeReceiver>, Rc<RefCell<ActiveNodeState>>) {
    let state = Rc::new(RefCell::new(ActiveNodeState::new(layers)));
    let controllers = (0..receivers)
        .map(|r| ActiveNodeReceiver {
            state: Rc::clone(&state),
            is_representative: r == 0,
        })
        .collect();
    (controllers, state)
}

/// Run one Figure-8-style trial with active-node coordination and return
/// the engine report (mirror of [`crate::experiment::run_trial`]).
pub fn run_trial_active(
    params: &crate::experiment::ExperimentParams,
    trial: usize,
) -> mlf_sim::StarReport {
    let mut cfg = mlf_sim::StarConfig::figure8(
        params.layers,
        params.receivers,
        params.shared_loss,
        params.independent_loss,
    );
    cfg.join_latency = params.join_latency;
    cfg.leave_latency = params.leave_latency;
    let seed = params.seed.wrapping_add(trial as u64);
    let (mut controllers, _state) = active_node_controllers(params.receivers, params.layers);
    mlf_sim::run_star(
        &cfg,
        &mut controllers,
        &mut mlf_sim::NoMarkers,
        params.packets,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ExperimentParams;

    fn ev(slot: Tick, level: usize, lost: bool) -> PacketEvent {
        PacketEvent {
            slot,
            layer: 1,
            lost,
            marker: None,
            level,
            layer_count: 8,
        }
    }

    #[test]
    fn receivers_track_the_shared_target() {
        let (mut ctls, state) = active_node_controllers(3, 8);
        state.borrow_mut().target = 4;
        // Non-representative receivers never move the target.
        assert_eq!(ctls[1].on_packet(&ev(0, 2, false)), Action::JoinUp);
        assert_eq!(ctls[2].on_packet(&ev(0, 6, false)), Action::LeaveDown);
        assert_eq!(ctls[1].on_packet(&ev(1, 4, false)), Action::Stay);
        assert_eq!(state.borrow().target(), 4);
    }

    #[test]
    fn only_the_representative_drives_the_instance() {
        let (mut ctls, state) = active_node_controllers(2, 8);
        // A loss reported by receiver 1 (non-representative) is ignored.
        let _ = ctls[1].on_packet(&ev(5, 1, true));
        assert_eq!(state.borrow().target(), 1);
        // The representative's clean packets climb the ladder (threshold at
        // level 1 is a single packet).
        let _ = ctls[0].on_packet(&ev(6, 1, false));
        assert_eq!(state.borrow().target(), 2);
        // And its loss steps the target down.
        let _ = ctls[0].on_packet(&ev(7, 2, true));
        assert_eq!(state.borrow().target(), 1);
    }

    #[test]
    fn active_node_redundancy_is_near_one() {
        // The Section 5 claim: active-node coordination makes redundancy ~1
        // even under independent loss that drives Uncoordinated near 3.
        let params = ExperimentParams {
            receivers: 20,
            packets: 40_000,
            trials: 1,
            ..ExperimentParams::quick(0.0001, 0.05).unwrap()
        };
        let report = run_trial_active(&params, 0);
        let red = report.shared_redundancy().unwrap();
        assert!(red < 1.1, "active-node redundancy {red}");
        // The subtree still adapts: levels respond to the representative's
        // loss and sit well inside (1, 8).
        let mean: f64 = (0..params.receivers)
            .map(|r| report.mean_level(r))
            .sum::<f64>()
            / 20.0;
        assert!(mean > 1.5 && mean < 7.5, "mean level {mean}");
    }

    #[test]
    fn climbs_without_loss() {
        let params = ExperimentParams {
            receivers: 4,
            packets: 60_000,
            trials: 1,
            ..ExperimentParams::quick(0.0, 0.0).unwrap()
        };
        let report = run_trial_active(&params, 0);
        assert!(report.final_levels.iter().all(|&l| l == 8));
    }
}
