# mlf-lint frozen-reference fingerprint (comment/whitespace-normalized).
# Re-bless a deliberate re-freeze: cargo run -p mlf-lint -- --bless
file crates/sim/src/reference.rs
tokens 1502
fnv64 0xbd74b199de9e20bc
