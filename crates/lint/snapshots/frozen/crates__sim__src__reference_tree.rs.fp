# mlf-lint frozen-reference fingerprint (comment/whitespace-normalized).
# Re-bless a deliberate re-freeze: cargo run -p mlf-lint -- --bless
file crates/sim/src/reference_tree.rs
tokens 1664
fnv64 0x276cf1bba2704cc7
