# mlf-lint frozen-reference fingerprint (comment/whitespace-normalized).
# Re-bless a deliberate re-freeze: cargo run -p mlf-lint -- --bless
file crates/core/src/reference.rs
tokens 5028
fnv64 0x1c5635a36322c736
