//! The fixture corpus: every rule has a bad snippet that fires and a good
//! snippet that stays clean, plus false-positive traps (trigger text inside
//! strings, raw strings, and nested block comments) and directive-validation
//! cases. The final test lints the workspace itself and requires zero
//! findings — the linter's own contract with this repository.

use mlf_lint::{lint_source, meta, Config, Finding};
use std::path::Path;

/// Classifies as library code of a deterministic, map-order-sensitive crate.
const LIB: &str = "crates/core/src/fixture.rs";
/// Classifies as a solver hot-path file (as-float-cast applies).
const HOT: &str = "crates/sim/src/engine.rs";
/// The one path where `unsafe` is allowlisted.
const UNSAFE_OK: &str = "crates/bench/benches/workspace_reuse.rs";

fn lint_fixture(file: &str, rel: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(file);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    lint_source(rel, &src, &Config::workspace())
}

fn rule_count(findings: &[Finding], rule: &str) -> usize {
    findings.iter().filter(|f| f.rule == rule).count()
}

/// `(rule, bad fixture, rel path to lint under, expected firings)`.
const BAD_CASES: &[(&str, &str, &str, usize)] = &[
    ("map-iteration", "map_iteration_bad.rs", LIB, 2),
    ("float-sort", "float_sort_bad.rs", LIB, 2),
    ("ambient-entropy", "ambient_entropy_bad.rs", LIB, 3),
    ("panic-unwrap", "panic_unwrap_bad.rs", LIB, 3),
    ("unsafe-code", "unsafe_code_bad.rs", LIB, 1),
    ("as-float-cast", "as_float_cast_bad.rs", HOT, 3),
    (
        "ignore-without-reason",
        "ignore_without_reason_bad.rs",
        LIB,
        1,
    ),
    ("print-debug", "print_debug_bad.rs", LIB, 3),
];

/// `(good fixture, rel path to lint under)` — all must be completely clean.
const GOOD_CASES: &[(&str, &str)] = &[
    ("map_iteration_good.rs", LIB),
    ("float_sort_good.rs", LIB),
    ("ambient_entropy_good.rs", LIB),
    ("panic_unwrap_good.rs", LIB),
    ("unsafe_code_good.rs", LIB),
    ("as_float_cast_good.rs", HOT),
    ("ignore_without_reason_good.rs", LIB),
    ("print_debug_good.rs", LIB),
    ("false_positives.rs", LIB),
    ("directives_allow.rs", LIB),
];

#[test]
fn bad_fixtures_fire_their_rule() {
    for &(rule, file, rel, expected) in BAD_CASES {
        let findings = lint_fixture(file, rel);
        assert_eq!(
            rule_count(&findings, rule),
            expected,
            "{file}: expected {expected} `{rule}` findings, got {findings:#?}"
        );
    }
}

#[test]
fn bad_fixture_findings_carry_spans() {
    for &(rule, file, rel, _) in BAD_CASES {
        for f in lint_fixture(file, rel) {
            if f.rule == rule {
                assert!(f.line >= 1 && f.col >= 1, "{file}: zero span in {f:?}");
                assert_eq!(f.path, rel, "{file}: finding path mismatch");
            }
        }
    }
}

#[test]
fn good_fixtures_are_clean() {
    for &(file, rel) in GOOD_CASES {
        let findings = lint_fixture(file, rel);
        assert!(findings.is_empty(), "{file}: unexpected {findings:#?}");
    }
}

#[test]
fn unsafe_is_legal_on_the_allowlisted_path() {
    let findings = lint_fixture("unsafe_code_bad.rs", UNSAFE_OK);
    assert_eq!(
        rule_count(&findings, "unsafe-code"),
        0,
        "allowlisted path still fired: {findings:#?}"
    );
}

#[test]
fn harness_scope_relaxes_hygiene_rules() {
    // The same panicking source is a finding in library code but legal in a
    // test file of the same crate.
    let findings = lint_fixture("panic_unwrap_bad.rs", "crates/core/tests/fixture.rs");
    assert_eq!(rule_count(&findings, "panic-unwrap"), 0);
    // float-sort applies to harness code too: NaN panics flake tests.
    let findings = lint_fixture("float_sort_bad.rs", "crates/core/tests/fixture.rs");
    assert_eq!(rule_count(&findings, "float-sort"), 2);
}

#[test]
fn invalid_directives_are_findings() {
    let findings = lint_fixture("directives_bad.rs", LIB);
    let rules: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        [meta::BAD_ALLOW, meta::BAD_ALLOW, meta::UNUSED_ALLOW],
        "unexpected {findings:#?}"
    );
}

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let cfg = Config::workspace();
    let report = mlf_lint::lint_workspace(&root, &cfg).expect("workspace scan");
    assert!(
        report.findings.is_empty(),
        "the workspace must stay lint-clean:\n{}",
        mlf_lint::to_human(&report)
    );
    // The whole-workspace entry point must have run the structural pass
    // (frozen fingerprints, layering, API snapshots) — not just the token
    // rules.
    assert!(report.structural, "structural pass did not run");
    // Sanity: the scan actually visited the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
}
