// Fixture: a reasoned allow suppresses exactly its target line, and an
// allow-file covers the whole file for its rule. Expected: clean.

// mlf-lint: allow-file(print-debug, reason = "fixture exercising file-wide suppression")

pub fn capacity(raw: Option<f64>) -> f64 {
    // mlf-lint: allow(panic-unwrap, reason = "fixture invariant: caller always sets capacity")
    raw.expect("capacity was set")
}

pub fn report(x: f64) {
    println!("x = {x}");
    eprintln!("covered by the allow-file above");
}
