// Fixture: return data and let the caller render it.
pub fn report(x: f64) -> String {
    format!("x = {x}")
}
