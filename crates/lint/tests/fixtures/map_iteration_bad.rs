// Fixture: order-dependent walks over unordered maps (2 findings).
use std::collections::HashMap;

pub struct Registry {
    counts: HashMap<String, u32>,
}

impl Registry {
    pub fn total(&self) -> u32 {
        let mut sum = 0;
        for (_name, n) in self.counts.iter() {
            sum += n;
        }
        sum
    }

    pub fn names(&self) -> u32 {
        let mut seen = 0;
        for _pair in &self.counts {
            seen += 1;
        }
        seen
    }
}
