// Fixture: partial_cmp comparators in sort sinks (2 findings).
pub fn sort_rates(v: &mut [f64]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Equal));
}

pub fn max_rate(v: &[f64]) -> Option<&f64> {
    v.iter()
        .max_by(|a, b| a.partial_cmp(b).unwrap_or(core::cmp::Ordering::Less))
}
