// Fixture: typed errors in library code; unwrap stays legal inside tests.
pub fn first(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn capacity(raw: Option<f64>) -> Result<f64, &'static str> {
    raw.ok_or("capacity was never set")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::first(&[7]).unwrap(), 7);
    }
}
