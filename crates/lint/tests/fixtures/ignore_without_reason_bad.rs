// Fixture: bare #[ignore] (1 finding).
#[test]
#[ignore]
fn slow_sweep() {}
