// Fixture: stdout writes and debug scaffolding in library code (3 findings).
pub fn report(x: f64) {
    println!("x = {x}");
    eprintln!("still here");
    let _ = dbg!(x);
}
