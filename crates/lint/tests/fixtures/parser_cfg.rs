//! cfg-gated items: feature gates, `cfg(not(test))`, `#[cfg(test)]`
//! modules, and `cfg_attr` (which gates an attribute, not the item).

#[cfg(feature = "paper-figures")]
pub mod figures {
    pub fn figure1() -> u64 {
        1
    }
}

#[cfg(not(test))]
pub fn shipping_only() {}

#[cfg_attr(test, derive(Debug))]
pub struct Tagged;

#[cfg(test)]
mod tests {
    #[test]
    fn covered() {
        super::Tagged;
    }
}
