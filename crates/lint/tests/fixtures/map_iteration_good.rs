// Fixture: order-independent map use plus an explicit insertion-order walk.
use std::collections::HashMap;

pub struct Registry {
    counts: HashMap<String, u32>,
    order: Vec<String>,
}

impl Registry {
    pub fn add(&mut self, name: String) {
        if !self.counts.contains_key(&name) {
            self.counts.insert(name.clone(), 0);
            self.order.push(name);
        }
    }

    pub fn total(&self) -> u32 {
        let mut sum = 0;
        for name in &self.order {
            sum += self.counts.get(name).copied().unwrap_or(0);
        }
        sum
    }
}
