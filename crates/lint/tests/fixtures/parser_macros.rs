//! Macro definitions and top-level macro invocations.

#[macro_export]
macro_rules! tally {
    ($($x:expr),* $(,)?) => {{ 0u64 $(+ $x)* }};
}

macro_rules! internal_only {
    () => {};
}

std::thread_local! {
    static SLOT: u64 = 0;
}

pub fn uses_macros() -> u64 {
    internal_only!();
    tally!(1, 2, 3)
}
