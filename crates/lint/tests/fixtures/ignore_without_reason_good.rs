// Fixture: #[ignore] with a reason string.
#[test]
#[ignore = "full 100x100 grid takes minutes; run explicitly"]
fn slow_sweep() {}
