// Fixture: `as` float<->int casts in a hot-path file (3 findings).
pub fn mean(total: u64, n: u64) -> f64 {
    total as f64 / n as f64
}

pub fn quantum() -> usize {
    2.5 as usize
}
