// Fixture: total_cmp comparators are NaN-safe and bit-stable.
pub fn sort_rates(v: &mut [f64]) {
    v.sort_by(f64::total_cmp);
}

pub fn max_rate(v: &[f64]) -> Option<&f64> {
    v.iter().max_by(|a, b| a.total_cmp(b))
}
