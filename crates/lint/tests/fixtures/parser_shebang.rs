#!/usr/bin/env run-cargo-script
#![allow(dead_code)]
#![doc = "inner attributes live between the shebang and the first item"]

//! Inner doc prose; invisible to the token stream.

use std::collections::BTreeMap;

pub const ANSWER: u64 = 42;

pub static TABLE: [u8; 2] = [0, 1];

fn main() {
    let _ = BTreeMap::<u64, u64>::new();
    let _ = ANSWER;
}
