// Fixture: panicking constructs in library code (3 findings).
pub fn first(v: &[u32]) -> u32 {
    if v.is_empty() {
        panic!("empty input");
    }
    *v.first().unwrap()
}

pub fn capacity(raw: Option<f64>) -> f64 {
    raw.expect("capacity was set")
}
