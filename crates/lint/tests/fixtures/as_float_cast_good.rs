// Fixture: lossless conversions only.
pub fn mean(total: u32, n: u32) -> f64 {
    f64::from(total) / f64::from(n.max(1))
}

pub fn quantum() -> usize {
    2
}
