// Fixture: trigger text inside strings, raw strings, and comments must
// never fire. Linted as deterministic library code; expected: clean.

/* Block comment mentioning HashMap.iter() and Instant::now() and unwrap():
   /* nested block: panic!("still a comment") and partial_cmp */
   end of outer comment. */

// Line comment with dbg!(x) and SystemTime::now() and 2.5 as usize.

pub const PLAIN: &str = "call .unwrap() then panic! while walking counts.iter()";
pub const ESCAPED: &str = "quote \" then env::var(\"HOME\").unwrap() inside";
pub const RAW: &str = r#"m.iter() and "SystemTime" and dbg!(x) and 2.5 as f64"#;
pub const HASHED: &str = r##"raw with "# inside: thread::current().unwrap()"##;
pub const BYTES: &[u8] = b"panic! inside a byte string: RandomState";

pub fn lifetime_not_char<'a>(s: &'a str) -> &'a str {
    let _apostrophe = '\'';
    let _quote = '"';
    s
}
