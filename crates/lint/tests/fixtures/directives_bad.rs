// Fixture: invalid directives are themselves findings (3 findings:
// unknown rule, missing reason, unused allow).

// mlf-lint: allow(no-such-rule, reason = "this rule does not exist")
pub fn a() {}

// mlf-lint: allow(panic-unwrap)
pub fn b() {}

// mlf-lint: allow(print-debug, reason = "nothing on the next line prints")
pub fn c() {}
