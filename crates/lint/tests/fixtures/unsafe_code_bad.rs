// Fixture: unsafe outside the allowlist (1 finding).
pub fn peek(p: *const u32) -> u32 {
    unsafe { *p }
}
