// Fixture: ambient entropy sources in deterministic library code (3 findings).
pub fn jitter_seed() -> u64 {
    let started = std::time::Instant::now();
    let salt = if std::env::var("MLF_SEED").is_ok() { 1 } else { 0 };
    started.elapsed().as_nanos() as u64 ^ salt
}

pub fn worker_tag() -> String {
    format!("{:?}", std::thread::current().id())
}
