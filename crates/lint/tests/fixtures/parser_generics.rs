//! Generics-heavy headers: nested angle brackets closed by `>>`, const
//! generics, where-clauses, `Fn(...)` bounds, and arrows that must not be
//! read as closing brackets.

pub struct Matrix<T, const N: usize> {
    rows: Vec<Vec<T>>,
}

pub fn transpose<T: Clone>(m: Vec<Vec<T>>) -> Vec<Vec<T>> {
    m
}

pub fn fold_pairs<I, F>(items: I, f: F) -> u64
where
    I: IntoIterator<Item = Vec<Vec<u64>>>,
    F: Fn(u64, u64) -> u64,
{
    let mut acc = 0;
    for chunk in items {
        for row in chunk {
            acc = f(acc, row);
        }
    }
    acc
}

impl<T: Ord, const N: usize> Matrix<T, N> {
    pub fn first(&self) -> Option<&T> {
        self.rows.first().and_then(|r| r.first())
    }
}

pub trait Shrink<T>
where
    T: Clone,
{
    fn shrink(self) -> Vec<Vec<T>>;
}

pub type Grid = Vec<Vec<u64>>;

pub enum Tree<T> {
    Leaf(T),
    Node(Box<Tree<Vec<Vec<T>>>>),
}
