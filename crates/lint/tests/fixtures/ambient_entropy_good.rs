// Fixture: entropy arrives through explicit parameters.
pub fn jitter_seed(seed: u64, salt: u64) -> u64 {
    seed ^ salt
}

pub fn worker_tag(worker_index: usize) -> String {
    format!("worker-{worker_index}")
}
