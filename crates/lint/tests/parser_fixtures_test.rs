//! Item-parser corpus: each fixture under `tests/fixtures/parser_*.rs`
//! exercises one family of constructs the recursive-descent parser must
//! survive — shebangs and inner attributes, nested generics whose closer
//! is a `>>`, where-clauses, `macro_rules!` definitions, item-position
//! macro invocations, and cfg-gated items. The fixtures never compile;
//! only their token streams matter.

use std::path::Path;

use mlf_lint::lexer::lex;
use mlf_lint::parser::{parse_items, Item, ItemKind, Visibility};

fn parse_fixture(file: &str) -> Vec<Item> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(file);
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read fixture {}: {e}", path.display()));
    let lexed = lex(&src);
    parse_items(&src, &lexed.tokens)
}

fn kinds_and_names(items: &[Item]) -> Vec<(ItemKind, Option<&str>)> {
    items
        .iter()
        .map(|it| (it.kind, it.name.as_deref()))
        .collect()
}

#[test]
fn shebang_and_inner_attributes_are_skipped() {
    let items = parse_fixture("parser_shebang.rs");
    assert_eq!(
        kinds_and_names(&items),
        [
            (ItemKind::Use, None),
            (ItemKind::Const, Some("ANSWER")),
            (ItemKind::Static, Some("TABLE")),
            (ItemKind::Fn, Some("main")),
        ],
        "{items:#?}"
    );
    assert_eq!(
        items[0].use_path.as_deref(),
        Some("std::collections::BTreeMap")
    );
    assert_eq!(items[1].vis, Visibility::Public);
    assert_eq!(items[3].vis, Visibility::Private);
}

#[test]
fn nested_generics_and_where_clauses_parse() {
    let items = parse_fixture("parser_generics.rs");
    assert_eq!(
        kinds_and_names(&items),
        [
            (ItemKind::Struct, Some("Matrix")),
            (ItemKind::Fn, Some("transpose")),
            (ItemKind::Fn, Some("fold_pairs")),
            (ItemKind::Impl, None),
            (ItemKind::Trait, Some("Shrink")),
            (ItemKind::TypeAlias, Some("Grid")),
            (ItemKind::Enum, Some("Tree")),
        ],
        "{items:#?}"
    );
    // The impl header's generics (with a const param) resolve to the base
    // type name, and its members are parsed as children.
    let imp = &items[3];
    assert_eq!(imp.impl_target.as_deref(), Some("Matrix"));
    assert!(!imp.trait_impl);
    assert_eq!(
        kinds_and_names(&imp.children),
        [(ItemKind::Fn, Some("first"))]
    );
    assert_eq!(imp.children[0].vis, Visibility::Public);
}

#[test]
fn macro_definitions_and_invocations_parse() {
    let items = parse_fixture("parser_macros.rs");
    assert_eq!(
        kinds_and_names(&items),
        [
            (ItemKind::MacroRules, Some("tally")),
            (ItemKind::MacroRules, Some("internal_only")),
            (ItemKind::MacroCall, Some("thread_local")),
            (ItemKind::Fn, Some("uses_macros")),
        ],
        "{items:#?}"
    );
    assert!(items[0].macro_export, "#[macro_export] must be tracked");
    assert!(!items[1].macro_export);
}

#[test]
fn cfg_gates_are_classified() {
    let items = parse_fixture("parser_cfg.rs");
    assert_eq!(
        kinds_and_names(&items),
        [
            (ItemKind::Mod, Some("figures")),
            (ItemKind::Fn, Some("shipping_only")),
            (ItemKind::Struct, Some("Tagged")),
            (ItemKind::Mod, Some("tests")),
        ],
        "{items:#?}"
    );
    // Feature gate: gated, but not test-only.
    assert!(items[0].cfg_gated && !items[0].cfg_test);
    assert_eq!(
        kinds_and_names(&items[0].children),
        [(ItemKind::Fn, Some("figure1"))]
    );
    // `cfg(not(test))` is gated but decidedly not test code.
    assert!(items[1].cfg_gated && !items[1].cfg_test);
    // `cfg_attr` gates an attribute, not the item.
    assert!(!items[2].cfg_gated && !items[2].cfg_test);
    // The test module and everything in it is test-only.
    assert!(items[3].cfg_test);
    assert!(items[3].children.iter().all(|c| c.cfg_test));
}
