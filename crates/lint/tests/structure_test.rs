//! Tamper regression tests for the frozen-reference integrity rule.
//!
//! The contract: a frozen module may change comments and whitespace
//! freely, but any *semantic* edit — renaming a local, reordering
//! functions, touching a literal — must shift the committed fingerprint
//! and surface as a `frozen-reference` finding. These tests tamper with
//! an in-memory copy of the real frozen solver and check both directions
//! against the committed snapshots.

use std::path::PathBuf;

use mlf_lint::lexer::lex;
use mlf_lint::parser::{parse_items, ItemKind};
use mlf_lint::structure::{self, fingerprint_source, FROZEN_REFERENCE};
use mlf_lint::{classify, Config, LoadedFile};

const CORE_REFERENCE: &str = "crates/core/src/reference.rs";
const SIM_REFERENCE: &str = "crates/sim/src/reference.rs";
const TREE_REFERENCE: &str = "crates/sim/src/reference_tree.rs";

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

fn read_frozen(rel: &str) -> String {
    std::fs::read_to_string(workspace_root().join(rel)).expect("frozen module readable")
}

fn loaded(rel: &str, src: String, cfg: &Config) -> LoadedFile {
    LoadedFile {
        rel: rel.to_string(),
        info: classify(rel, cfg).expect("frozen module is in scope"),
        src,
    }
}

/// `frozen-reference` findings produced by the structural pass over the
/// two frozen modules, with `core`'s source replaced by `core_src`.
fn frozen_findings(core_src: String) -> Vec<mlf_lint::Finding> {
    let cfg = Config::workspace();
    let files = vec![
        loaded(CORE_REFERENCE, core_src, &cfg),
        loaded(SIM_REFERENCE, read_frozen(SIM_REFERENCE), &cfg),
        loaded(TREE_REFERENCE, read_frozen(TREE_REFERENCE), &cfg),
    ];
    structure::analyze(&workspace_root(), &files, &cfg)
        .into_iter()
        .filter(|f| f.rule == FROZEN_REFERENCE)
        .collect()
}

/// Rename the first `let`-bound local throughout the file. The copy need
/// not compile — only the token stream matters to the fingerprint.
fn rename_first_local(src: &str) -> String {
    let is_ident = |c: char| c.is_ascii_alphanumeric() || c == '_';
    let mut name = None;
    for (pos, _) in src.match_indices("let ") {
        // Require a non-ident char before `let` so `complete` etc. don't match.
        if pos > 0 && src[..pos].chars().next_back().is_some_and(is_ident) {
            continue;
        }
        let rest = &src[pos + 4..];
        let rest = rest.strip_prefix("mut ").unwrap_or(rest);
        let end = rest.find(|c: char| !is_ident(c)).unwrap_or(rest.len());
        let candidate = &rest[..end];
        if !candidate.is_empty() && !candidate.starts_with(|c: char| c.is_ascii_digit()) {
            name = Some(candidate.to_string());
            break;
        }
    }
    let name = name.expect("frozen module has at least one let binding");
    let replacement = format!("{name}_tampered");
    assert!(!src.contains(&replacement), "tampered name must be fresh");
    // Word-boundary replace of every occurrence.
    let mut out = String::with_capacity(src.len());
    let bytes = src.as_bytes();
    let mut i = 0;
    while let Some(off) = src[i..].find(&name) {
        let start = i + off;
        let end = start + name.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1] as char);
        let right_ok = end == src.len() || !is_ident(bytes[end] as char);
        out.push_str(&src[i..start]);
        if left_ok && right_ok {
            out.push_str(&replacement);
        } else {
            out.push_str(&name);
        }
        i = end;
    }
    out.push_str(&src[i..]);
    out
}

/// Swap two adjacent top-level functions, located via the item parser.
fn reorder_two_fns(src: &str) -> String {
    let lexed = lex(src);
    let items = parse_items(src, &lexed.tokens);
    let fns: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.kind == ItemKind::Fn && !it.cfg_test)
        .map(|(i, _)| i)
        .collect();
    let (a, b) = fns
        .windows(2)
        .find(|w| w[1] == w[0] + 1 && w[0] + 2 < items.len())
        .map(|w| (w[0], w[1]))
        .expect("frozen module has two adjacent top-level fns");
    let lines: Vec<&str> = src.lines().collect();
    let (s1, s2, s3) = (
        items[a].line as usize - 1,
        items[b].line as usize - 1,
        items[b + 1].line as usize - 1,
    );
    let mut out: Vec<&str> = Vec::with_capacity(lines.len());
    out.extend_from_slice(&lines[..s1]);
    out.extend_from_slice(&lines[s2..s3]);
    out.extend_from_slice(&lines[s1..s2]);
    out.extend_from_slice(&lines[s3..]);
    let mut joined = out.join("\n");
    if src.ends_with('\n') {
        joined.push('\n');
    }
    joined
}

/// Touch only comments and whitespace: extra doc prose, an added line
/// comment, reindentation noise, and trailing blank lines.
fn comment_only_edit(src: &str) -> String {
    let mut out = String::from("// tamper check: this comment must not shift the fingerprint\n");
    for (i, line) in src.lines().enumerate() {
        if i == 3 {
            out.push_str("    // an interior comment, also invisible\n\n");
        }
        out.push_str(line);
        out.push('\n');
    }
    out.push_str("\n\n// trailing commentary\n");
    out
}

#[test]
fn rename_local_shifts_fingerprint_and_fires() {
    let original = read_frozen(CORE_REFERENCE);
    let tampered = rename_first_local(&original);
    assert_ne!(tampered, original);
    assert_ne!(
        fingerprint_source(&tampered).fnv64,
        fingerprint_source(&original).fnv64,
        "renaming a local must change the token fingerprint"
    );
    let findings = frozen_findings(tampered);
    assert!(
        findings.iter().any(|f| f.path == CORE_REFERENCE),
        "integrity must fire for the tampered module: {findings:?}"
    );
}

#[test]
fn reordering_two_fns_shifts_fingerprint_and_fires() {
    let original = read_frozen(CORE_REFERENCE);
    let tampered = reorder_two_fns(&original);
    assert_ne!(tampered, original);
    // Same token multiset, different order: position sensitivity is the point.
    assert_ne!(
        fingerprint_source(&tampered).fnv64,
        fingerprint_source(&original).fnv64,
        "reordering functions must change the token fingerprint"
    );
    assert_eq!(
        fingerprint_source(&tampered).tokens,
        fingerprint_source(&original).tokens,
        "reordering moves tokens without adding any"
    );
    let findings = frozen_findings(tampered);
    assert!(
        findings.iter().any(|f| f.path == CORE_REFERENCE),
        "integrity must fire for the reordered module: {findings:?}"
    );
}

#[test]
fn comment_and_whitespace_edits_stay_clean() {
    let original = read_frozen(CORE_REFERENCE);
    let edited = comment_only_edit(&original);
    assert_ne!(edited, original);
    assert_eq!(
        fingerprint_source(&edited).fnv64,
        fingerprint_source(&original).fnv64,
        "comment/whitespace edits must not move the fingerprint"
    );
    let findings = frozen_findings(edited);
    assert!(
        findings.is_empty(),
        "no integrity findings expected for comment-only edits: {findings:?}"
    );
}

#[test]
fn pristine_workspace_matches_committed_fingerprints() {
    let findings = frozen_findings(read_frozen(CORE_REFERENCE));
    assert!(
        findings.is_empty(),
        "committed fingerprints must match the working tree: {findings:?}"
    );
}
