//! `mlf-lint` — the workspace determinism-and-hygiene static analyzer.
//!
//! Every result this workspace ships (paper-figure reproductions,
//! serial-vs-parallel sweep differentials, frozen `reference` engines)
//! depends on a **bitwise-reproducibility contract**: same inputs, same
//! bits, on any machine, at any thread count. That contract is one
//! `HashMap` iteration or one `partial_cmp` sort away from silently
//! breaking. This crate machine-checks it on every CI run.
//!
//! # Design
//!
//! A hand-rolled, dependency-free **token-level** analyzer (the build is
//! offline, so no `syn`): the [`lexer`] understands strings, raw strings,
//! char literals, and nested block comments — so rule-pattern text inside
//! literals or comments never fires — and the [`rules`] match token
//! patterns, not syntax trees. Files are classified into scope classes
//! ([`FileClass`]): *library* code carries the full contract, *harness*
//! code (tests/benches/examples/bins) and *tooling* crates are exempt from
//! the rules that only make sense for deterministic library paths.
//! `#[cfg(test)]` regions inside library files count as harness code.
//!
//! # Suppression
//!
//! Deliberate violations are annotated in place and the annotations are
//! themselves validated:
//!
//! ```text
//! // mlf-lint: allow(panic-unwrap, reason = "invariant: every receiver froze")
//! let rate = frozen.expect("every receiver froze");
//! ```
//!
//! `allow(rule, reason = "…")` suppresses `rule` on the same line (when the
//! comment trails code) or on the next code line; `allow-file(rule,
//! reason = "…")` suppresses a rule for the whole file. Unknown rule names,
//! missing reasons, and allows that suppress nothing are **errors**
//! ([`meta::BAD_ALLOW`], [`meta::UNUSED_ALLOW`]) — a stale allow is a hole
//! in the contract.
//!
//! See [`rules::ALL`] for the rule set and `README`-level rationale on each.
//!
//! # The structural pass
//!
//! On a whole-workspace run ([`lint_workspace`], and the CLI with no path
//! arguments) the token rules are joined by an **item-level structural
//! pass**: the [`parser`] builds item headers (kind, name, visibility,
//! attributes, `mod`/`impl` nesting) on top of the lexer, and
//! [`structure`] runs five cross-file analyses over them —
//! frozen-reference integrity, the crate-layering DAG, public-API surface
//! snapshots, unused-pub, and differential coverage of frozen modules.
//! The integrity and API analyses diff against **committed snapshots**
//! under `crates/lint/snapshots/`:
//!
//! ```text
//! crates/lint/snapshots/
//! ├── frozen/   one fingerprint file per frozen reference module
//! │             (comment/whitespace-normalized token-stream FNV-1a 64)
//! └── api/      one sorted `pub`-item inventory per library crate
//! ```
//!
//! Deliberate changes are **re-blessed** — `cargo run -p mlf-lint --
//! --bless` regenerates every snapshot deterministically (same sources,
//! same bytes), so the diff of the snapshot files *is* the review artifact
//! for a re-freeze or an API change. Structural findings honor the same
//! `// mlf-lint: allow(rule, reason = "…")` directives as token rules; a
//! directive above an item (including above its attributes) targets it.

pub mod lexer;
pub mod parser;
pub mod rules;
pub mod structure;

use lexer::{lex, Lexed, Token, TokenKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Names of the meta-rules that validate suppression directives.
pub mod meta {
    /// A malformed allow directive: unknown rule name, missing reason, or
    /// unparseable syntax.
    pub const BAD_ALLOW: &str = "bad-allow";
    /// An allow directive that suppressed no finding.
    pub const UNUSED_ALLOW: &str = "unused-allow";
}

/// Which contract a file is held to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Shipping library code: the full determinism contract applies.
    Library,
    /// Tests, benches, examples, and `src/bin` binaries: hygiene rules
    /// only.
    Harness,
    /// Tooling crates (`mlf-bench`, `mlf-lint` itself): clocks, env vars,
    /// and printing are their job; only universal hygiene rules apply.
    Tooling,
}

/// The analyzer's policy: which crates are deterministic, which files are
/// solver/engine hot paths, and which files may use `unsafe`.
#[derive(Debug, Clone)]
pub struct Config {
    /// Crates whose library code carries the determinism contract
    /// (`"root"` is the umbrella crate at the workspace root).
    pub deterministic_crates: Vec<String>,
    /// Crates whose library code must not depend on unordered-map
    /// iteration order.
    pub map_iter_crates: Vec<String>,
    /// Workspace-relative files counting as solver/engine hot paths for
    /// the `as-float-cast` rule.
    pub hot_path_files: Vec<String>,
    /// Workspace-relative files allowed to contain `unsafe`.
    pub unsafe_allow_files: Vec<String>,
    /// Crates classified [`FileClass::Tooling`].
    pub tooling_crates: Vec<String>,
    /// Workspace-relative files frozen for differential testing: only
    /// comments and whitespace may change (checked against committed
    /// fingerprints by [`structure`]).
    pub frozen_files: Vec<String>,
    /// The declared crate layering, low → high (directory names under
    /// `crates/`): every dependency edge must point strictly downward.
    pub layering: Vec<String>,
    /// Standalone tooling crates that must depend on no workspace crate
    /// (and that nothing in the layering may depend on).
    pub standalone_crates: Vec<String>,
    /// Crates (directory names; `"root"` = the umbrella crate) whose
    /// public API surface is snapshotted and diffed.
    pub api_crates: Vec<String>,
    /// Workspace-relative directory holding the committed snapshots.
    pub snapshot_dir: String,
}

impl Config {
    /// The policy for this workspace — the single source of truth the CI
    /// lint job and the self-check test both run under.
    pub fn workspace() -> Self {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect();
        Config {
            deterministic_crates: v(&[
                "root",
                "net",
                "core",
                "layering",
                "sim",
                "protocols",
                "scenario",
            ]),
            map_iter_crates: v(&["core", "sim", "scenario", "protocols"]),
            hot_path_files: v(&[
                "crates/core/src/maxmin.rs",
                "crates/core/src/weighted.rs",
                "crates/core/src/unicast.rs",
                "crates/core/src/allocation.rs",
                "crates/core/src/index.rs",
                "crates/sim/src/engine.rs",
                "crates/sim/src/index.rs",
                "crates/sim/src/tree.rs",
            ]),
            unsafe_allow_files: v(&["crates/bench/benches/workspace_reuse.rs"]),
            tooling_crates: v(&["bench", "lint"]),
            frozen_files: v(&[
                "crates/core/src/reference.rs",
                "crates/sim/src/reference.rs",
                "crates/sim/src/reference_tree.rs",
            ]),
            layering: v(&[
                "net",
                "core",
                "layering",
                "sim",
                "protocols",
                "scenario",
                "bench",
            ]),
            standalone_crates: v(&["lint"]),
            api_crates: v(&[
                "root",
                "net",
                "core",
                "layering",
                "sim",
                "protocols",
                "scenario",
            ]),
            snapshot_dir: "crates/lint/snapshots".to_string(),
        }
    }
}

/// Every rule name an allow directive may target: token rules, structural
/// rules, and the directive meta-rules are all addressable.
pub fn known_rule_names() -> Vec<&'static str> {
    rules::ALL
        .iter()
        .map(|r| r.name)
        .chain(structure::STRUCTURAL.iter().map(|(n, _)| *n))
        .collect()
}

/// One diagnostic: rule, location, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The rule that fired (a name from [`rules::ALL`] or [`meta`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

/// The classification of one source file.
#[derive(Debug, Clone)]
pub struct FileInfo {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// Scope class.
    pub class: FileClass,
    /// Owning crate (`"root"` for the umbrella crate), if recognizable.
    pub krate: Option<String>,
}

/// Classify a workspace-relative path, or `None` when the file is out of
/// scope (vendored stand-ins, the linter's own fixture corpus, generated
/// artifacts).
pub fn classify(rel: &str, cfg: &Config) -> Option<FileInfo> {
    if !rel.ends_with(".rs") {
        return None;
    }
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.first() == Some(&"vendor") || parts.first() == Some(&"target") {
        return None;
    }
    // The linter's fixture corpus contains deliberate violations.
    if rel.contains("tests/fixtures/") {
        return None;
    }
    let krate = if parts.first() == Some(&"crates") && parts.len() >= 3 {
        Some(parts[1].to_string())
    } else if parts.first() == Some(&"src") {
        Some("root".to_string())
    } else {
        None
    };
    let harness = parts
        .iter()
        .any(|p| matches!(*p, "tests" | "benches" | "examples"))
        || rel.contains("/src/bin/");
    let class = match &krate {
        Some(k) if cfg.tooling_crates.iter().any(|t| t == k) => FileClass::Tooling,
        _ if harness => FileClass::Harness,
        Some(_) => FileClass::Library,
        None => FileClass::Harness,
    };
    Some(FileInfo {
        rel: rel.to_string(),
        class,
        krate,
    })
}

/// Everything a rule needs to inspect one file.
pub struct FileCtx<'a> {
    /// The raw source.
    pub src: &'a str,
    /// File identity and scope.
    pub info: &'a FileInfo,
    /// The token stream (comments excluded).
    pub tokens: &'a [Token],
    /// `in_test[i]` — token `i` sits inside a `#[cfg(test)]`/`#[test]`
    /// item and is held to harness scope.
    pub in_test: &'a [bool],
    /// The active policy.
    pub cfg: &'a Config,
}

impl<'a> FileCtx<'a> {
    /// Token text.
    pub fn text(&self, i: usize) -> &'a str {
        self.tokens[i].text(self.src)
    }

    /// Whether token `i` is the identifier `name` (raw identifiers
    /// `r#name` match too).
    pub fn is_ident(&self, i: usize, name: &str) -> bool {
        self.tokens.get(i).is_some_and(|t| {
            t.kind == TokenKind::Ident && {
                let text = t.text(self.src);
                text == name || text.strip_prefix("r#") == Some(name)
            }
        })
    }

    /// Whether token `i` is the punctuation `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        self.tokens.get(i).is_some_and(|t| t.is_punct(self.src, c))
    }

    /// Whether tokens `i, i+1` spell `::`.
    pub fn is_path_sep(&self, i: usize) -> bool {
        self.is_punct(i, ':') && self.is_punct(i + 1, ':')
    }

    /// Whether the crate this file belongs to is in `list`.
    pub fn crate_in(&self, list: &[String]) -> bool {
        self.info
            .krate
            .as_ref()
            .is_some_and(|k| list.iter().any(|c| c == k))
    }

    /// Library-scope tokens only: true when the file is library class and
    /// token `i` is outside `#[cfg(test)]` regions.
    pub fn is_library_code(&self, i: usize) -> bool {
        self.info.class == FileClass::Library && !self.in_test[i]
    }
}

/// Mark tokens that live inside test-gated items: `#[cfg(test)] mod … { }`,
/// `#[test] fn … { }`, `#[bench] …`. `#[cfg(not(test))]` does *not* count.
fn test_regions(tokens: &[Token], src: &str) -> Vec<bool> {
    let mut in_test = vec![false; tokens.len()];
    let text = |i: usize| tokens[i].text(src);
    let is_p = |i: usize, c: char| tokens[i].is_punct(src, c);
    let mut i = 0;
    while i < tokens.len() {
        if !(is_p(i, '#') && i + 1 < tokens.len() && is_p(i + 1, '[')) {
            i += 1;
            continue;
        }
        // Scan the attribute to its matching `]`.
        let mut depth = 0usize;
        let mut j = i + 1;
        let mut idents: Vec<&str> = Vec::new();
        while j < tokens.len() {
            if is_p(j, '[') {
                depth += 1;
            } else if is_p(j, ']') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if tokens[j].kind == TokenKind::Ident {
                idents.push(text(j));
            }
            j += 1;
        }
        let attr_end = j; // index of `]` (or end)
        let gates_test = (idents.first() == Some(&"cfg")
            && idents.contains(&"test")
            && !idents.contains(&"not"))
            || idents.first() == Some(&"test")
            || idents.first() == Some(&"bench");
        if !gates_test || attr_end >= tokens.len() {
            i = attr_end.max(i + 1);
            continue;
        }
        // Skip any further attributes, then find the item's extent: the
        // matching `}` of its first top-level `{`, or a top-level `;`.
        let mut k = attr_end + 1;
        while k + 1 < tokens.len() && is_p(k, '#') && is_p(k + 1, '[') {
            let mut d = 0usize;
            while k < tokens.len() {
                if is_p(k, '[') {
                    d += 1;
                } else if is_p(k, ']') {
                    d -= 1;
                    if d == 0 {
                        break;
                    }
                }
                k += 1;
            }
            k += 1;
        }
        let mut paren = 0i32;
        let mut brace = 0i32;
        let mut end = k;
        while end < tokens.len() {
            if is_p(end, '(') || is_p(end, '[') {
                paren += 1;
            } else if is_p(end, ')') || is_p(end, ']') {
                paren -= 1;
            } else if is_p(end, '{') {
                brace += 1;
            } else if is_p(end, '}') {
                brace -= 1;
                if brace == 0 {
                    break;
                }
            } else if is_p(end, ';') && paren == 0 && brace == 0 {
                break;
            }
            end += 1;
        }
        let end = end.min(tokens.len().saturating_sub(1));
        for flag in in_test.iter_mut().take(end + 1).skip(i) {
            *flag = true;
        }
        i = end + 1;
    }
    in_test
}

/// One parsed suppression directive.
#[derive(Debug)]
struct Directive {
    rule: String,
    file_wide: bool,
    line: u32,
    col: u32,
    /// Lines this directive suppresses (empty for file-wide).
    targets: Vec<u32>,
    used: bool,
}

/// Parse `mlf-lint: allow(rule, reason = "…")` directives out of comments.
/// Malformed directives become `bad-allow` findings immediately.
fn parse_directives(
    lexed: &Lexed,
    src: &str,
    rel: &str,
    findings: &mut Vec<Finding>,
) -> Vec<Directive> {
    let known = known_rule_names();
    let mut directives = Vec::new();
    for c in &lexed.comments {
        let body = &src[c.start..c.end];
        // Directives live in plain `//` comments only: doc comments
        // (`///`, `//!`) hold *examples* of directives, and block comments
        // are prose.
        if !body.starts_with("//") || body.starts_with("///") || body.starts_with("//!") {
            continue;
        }
        let Some(at) = body.find("mlf-lint:") else {
            continue;
        };
        let rest = body[at + "mlf-lint:".len()..].trim_start();
        let bad = |findings: &mut Vec<Finding>, msg: String| {
            findings.push(Finding {
                rule: meta::BAD_ALLOW,
                path: rel.to_string(),
                line: c.line,
                col: c.col + at as u32,
                message: msg,
            });
        };
        let (file_wide, args) = if let Some(a) = rest.strip_prefix("allow-file") {
            (true, a)
        } else if let Some(a) = rest.strip_prefix("allow") {
            (false, a)
        } else {
            bad(
                findings,
                format!("unrecognized mlf-lint directive `{}`", rest.trim_end()),
            );
            continue;
        };
        let args = args.trim_start();
        let Some(inner) = args
            .strip_prefix('(')
            .and_then(|a| a.split_once(')').map(|(i, _)| i))
        else {
            bad(findings, "malformed allow directive: expected `(…)`".into());
            continue;
        };
        let (rule_name, reason) = match inner.split_once(',') {
            Some((r, tail)) => (r.trim(), Some(tail.trim())),
            None => (inner.trim(), None),
        };
        if !known.contains(&rule_name) {
            bad(
                findings,
                format!(
                    "allow names unknown rule `{rule_name}` (known: {})",
                    known.join(", ")
                ),
            );
            continue;
        }
        let reason_ok = reason.is_some_and(|r| {
            r.strip_prefix("reason")
                .map(str::trim_start)
                .and_then(|r| r.strip_prefix('='))
                .map(str::trim_start)
                .is_some_and(|r| r.starts_with('"') && r.trim_end().len() > 2)
        });
        if !reason_ok {
            bad(
                findings,
                format!("allow({rule_name}) needs a non-empty `reason = \"…\"`"),
            );
            continue;
        }
        // Targets: the directive's own line when code precedes the comment
        // on it, otherwise the next token-bearing line.
        let mut targets = Vec::new();
        if !file_wide {
            let trailing = lexed
                .tokens
                .iter()
                .any(|t| t.line == c.line && t.start < c.start);
            if trailing {
                targets.push(c.line);
            } else if let Some(next) = lexed.tokens.iter().find(|t| t.line > c.line) {
                targets.push(next.line);
            }
        }
        directives.push(Directive {
            rule: rule_name.to_string(),
            file_wide,
            line: c.line,
            col: c.col + at as u32,
            targets,
            used: false,
        });
    }
    directives
}

/// The token-rule findings for one file, before directive resolution.
fn raw_token_findings(info: &FileInfo, src: &str, lexed: &Lexed, cfg: &Config) -> Vec<Finding> {
    let in_test = test_regions(&lexed.tokens, src);
    let ctx = FileCtx {
        src,
        info,
        tokens: &lexed.tokens,
        in_test: &in_test,
        cfg,
    };
    let mut findings = Vec::new();
    for rule in rules::ALL {
        (rule.check)(&ctx, &mut findings);
    }
    findings
}

/// Resolve suppression directives against `findings` for one file: drop
/// suppressed findings, add `bad-allow`/`unused-allow` meta-findings.
///
/// `structural_ran` says whether the structural pass contributed findings
/// for this run: when it did not (per-file linting via [`lint_source`] /
/// [`lint_paths`]), allows naming structural rules are exempt from the
/// unused-allow check — they may well suppress something on the full
/// workspace run.
fn apply_directives(
    rel: &str,
    src: &str,
    lexed: &Lexed,
    mut findings: Vec<Finding>,
    structural_ran: bool,
) -> Vec<Finding> {
    let mut meta_findings = Vec::new();
    let mut directives = parse_directives(lexed, src, rel, &mut meta_findings);
    findings.retain(|f| {
        let suppressed = directives.iter_mut().any(|d| {
            let hit = d.rule == f.rule && (d.file_wide || d.targets.contains(&f.line));
            if hit {
                d.used = true;
            }
            hit
        });
        !suppressed
    });
    let structural_rule = |name: &str| structure::STRUCTURAL.iter().any(|(n, _)| *n == name);
    for d in &directives {
        if !d.used && (structural_ran || !structural_rule(&d.rule)) {
            meta_findings.push(Finding {
                rule: meta::UNUSED_ALLOW,
                path: rel.to_string(),
                line: d.line,
                col: d.col,
                message: format!(
                    "allow({}) suppresses nothing — remove it or fix the annotation target",
                    d.rule
                ),
            });
        }
    }
    findings.extend(meta_findings);
    findings.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    findings
}

/// Lint one file's source with the token rules. `rel` chooses the scope
/// class and per-file policy; pass workspace-relative paths
/// (`crates/core/src/maxmin.rs`). The structural pass needs the whole
/// workspace and runs only in [`lint_workspace`].
pub fn lint_source(rel: &str, src: &str, cfg: &Config) -> Vec<Finding> {
    let Some(info) = classify(rel, cfg) else {
        return Vec::new();
    };
    let lexed = lex(src);
    let findings = raw_token_findings(&info, src, &lexed, cfg);
    apply_directives(rel, src, &lexed, findings, false)
}

/// A whole-run report.
#[derive(Debug, Default)]
pub struct Report {
    /// Findings across all scanned files, in path order.
    pub findings: Vec<Finding>,
    /// Number of files actually linted (in-scope `.rs` files).
    pub files_scanned: usize,
    /// Whether the structural pass ran (whole-workspace runs only).
    pub structural: bool,
}

/// One in-scope source file loaded for a workspace run.
#[derive(Debug)]
pub struct LoadedFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// The raw source text.
    pub src: String,
    /// The classification [`classify`] produced.
    pub info: FileInfo,
}

/// Recursively collect `.rs` files under `path`, sorted for deterministic
/// output. Skips `target/`, `.git/`, `vendor/`, and the fixture corpus.
fn collect_rs_files(path: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if path.is_file() {
        if path.extension().is_some_and(|e| e == "rs") {
            out.push(path.to_path_buf());
        }
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(path)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for entry in entries {
        let name = entry.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if entry.is_dir() {
            if matches!(name, "target" | ".git" | "vendor" | "fixtures") {
                continue;
            }
            collect_rs_files(&entry, out)?;
        } else if name.ends_with(".rs") {
            out.push(entry);
        }
    }
    Ok(())
}

/// Lint every in-scope `.rs` file under `paths` with the token rules
/// (workspace `root` anchors the relative paths used for classification
/// and reporting). For the full contract — token rules *plus* the
/// structural pass — use [`lint_workspace`].
pub fn lint_paths(root: &Path, paths: &[PathBuf], cfg: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    for p in paths {
        collect_rs_files(p, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut report = Report::default();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        if classify(&rel, cfg).is_none() {
            continue;
        }
        let src = fs::read_to_string(file)?;
        report.files_scanned += 1;
        report.findings.extend(lint_source(&rel, &src, cfg));
    }
    Ok(report)
}

/// Load every in-scope `.rs` file of the workspace rooted at `root`, in
/// sorted path order.
pub fn load_workspace(root: &Path, cfg: &Config) -> io::Result<Vec<LoadedFile>> {
    let mut files = Vec::new();
    collect_rs_files(root, &mut files)?;
    files.sort();
    files.dedup();
    let mut loaded = Vec::new();
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(info) = classify(&rel, cfg) else {
            continue;
        };
        loaded.push(LoadedFile {
            rel,
            src: fs::read_to_string(file)?,
            info,
        });
    }
    Ok(loaded)
}

/// Lint the whole workspace: token rules over every in-scope file, plus
/// the item-level structural pass ([`structure::analyze`]). Directive
/// resolution sees the union, so one `allow(unused-pub, …)` both
/// suppresses its structural finding and is validated as used.
pub fn lint_workspace(root: &Path, cfg: &Config) -> io::Result<Report> {
    let loaded = load_workspace(root, cfg)?;
    // Raw findings grouped per file; structural findings may also land on
    // non-Rust paths (Cargo.toml, snapshot files), which carry no
    // directives and pass through unfiltered.
    let mut per_file: BTreeMap<&str, Vec<Finding>> = BTreeMap::new();
    let mut passthrough: Vec<Finding> = Vec::new();
    let mut lexed_by_rel: BTreeMap<&str, Lexed> = BTreeMap::new();
    for f in &loaded {
        let lexed = lex(&f.src);
        let raw = raw_token_findings(&f.info, &f.src, &lexed, cfg);
        per_file.insert(f.rel.as_str(), raw);
        lexed_by_rel.insert(f.rel.as_str(), lexed);
    }
    for finding in structure::analyze(root, &loaded, cfg) {
        match per_file.get_mut(finding.path.as_str()) {
            Some(list) => list.push(finding),
            None => passthrough.push(finding),
        }
    }
    let mut report = Report {
        findings: passthrough,
        files_scanned: loaded.len(),
        structural: true,
    };
    for f in &loaded {
        let raw = per_file.remove(f.rel.as_str()).unwrap_or_default();
        let lexed = &lexed_by_rel[f.rel.as_str()];
        report
            .findings
            .extend(apply_directives(&f.rel, &f.src, lexed, raw, true));
    }
    report
        .findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(report)
}

fn json_escape(s: &str, out: &mut String) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Render a report as JSON (hand-rolled; the workspace builds offline,
/// so no serde).
pub fn to_json(report: &Report) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"files_scanned\":{},\"structural\":{},\"finding_count\":{},\"findings\":[",
        report.files_scanned,
        report.structural,
        report.findings.len()
    );
    for (i, f) in report.findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":\"");
        json_escape(f.rule, &mut out);
        out.push_str("\",\"path\":\"");
        json_escape(&f.path, &mut out);
        let _ = write!(
            out,
            "\",\"line\":{},\"col\":{},\"message\":\"",
            f.line, f.col
        );
        json_escape(&f.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str("]}");
    out
}

/// Render a report for humans, grouped by file, `rustc`-style.
pub fn to_human(report: &Report) -> String {
    let mut out = String::new();
    let mut by_file: BTreeMap<&str, Vec<&Finding>> = BTreeMap::new();
    for f in &report.findings {
        by_file.entry(&f.path).or_default().push(f);
    }
    for (path, findings) in &by_file {
        for f in findings {
            let _ = writeln!(
                out,
                "error[{}]: {}\n  --> {}:{}:{}",
                f.rule, f.message, path, f.line, f.col
            );
        }
    }
    let _ = writeln!(
        out,
        "mlf-lint: {} finding(s) in {} file(s), {} file(s) scanned",
        report.findings.len(),
        by_file.len(),
        report.files_scanned
    );
    out
}
