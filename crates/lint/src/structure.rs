//! The item-level **structural pass**: cross-file analyses over the
//! [`parser`](crate::parser) output that machine-check the architectural
//! half of the determinism contract.
//!
//! Four analyses plus one coverage check, each a named rule suppression
//! directives can target (see [`STRUCTURAL`]):
//!
//! * **`frozen-reference`** — the frozen reference engines
//!   (`Config::frozen_files`) carry committed comment/whitespace-
//!   normalized fingerprints under `crates/lint/snapshots/frozen/`. Any
//!   edit that changes the token stream (a rename, a reorder, a tweaked
//!   constant) is a finding; comment and formatting changes are not.
//!   Deliberate re-freezes run `cargo run -p mlf-lint -- --bless`.
//! * **`crate-layering`** — workspace dependency edges (from each crate's
//!   `Cargo.toml` *and* from `mlf_*` identifiers in its sources) must
//!   point strictly downward in the declared layering
//!   (`Config::layering`, low → high). Upward edges — which include
//!   every possible cycle, since the layering is a total order — and any
//!   dependency of/on the standalone tooling crates are findings.
//! * **`api-surface`** — each library crate's `pub` item inventory is
//!   committed under `crates/lint/snapshots/api/<crate>.txt`. Items that
//!   appear or disappear relative to the snapshot are findings, so public
//!   API drift is a reviewed diff, never an accident. `--bless`
//!   regenerates the inventories deterministically (sorted, stable text).
//! * **`unused-pub`** — a `pub` item whose name is never referenced
//!   outside its defining crate's library code (other crates, the crate's
//!   own tests/benches/examples, the workspace-root harness) should be
//!   `pub(crate)`. Matching is by identifier, so a shared name anywhere
//!   outside the crate counts as use — the rule errs toward silence.
//!   Intentional API (e.g. items used only from doc examples, which are
//!   comments to the analyzer) carries
//!   `// mlf-lint: allow(unused-pub, reason = "…")` on the item.
//! * **`differential-coverage`** — every frozen reference module (and
//!   every non-test `mod` nested in one) must be named, together with its
//!   crate, by at least one workspace test file: freezing an engine
//!   without a differential test is itself a finding.
//!
//! Reachability caveat: the API inventory records `pub` items at their
//! definition path. Whether a deep item is *exported* additionally depends
//! on parent-module visibility and re-exports; recording the definition
//! site is what makes drift reviewable without a full name-resolution
//! pass.

use crate::lexer::lex;
use crate::parser::{parse_items, Item, ItemKind, Visibility};
use crate::{Config, Finding, LoadedFile};
use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Rule name: frozen reference module fingerprint mismatch.
pub const FROZEN_REFERENCE: &str = "frozen-reference";
/// Rule name: crate dependency edge violating the declared layering.
pub const CRATE_LAYERING: &str = "crate-layering";
/// Rule name: public API drift against the committed snapshot.
pub const API_SURFACE: &str = "api-surface";
/// Rule name: `pub` item never referenced outside its defining crate.
pub const UNUSED_PUB: &str = "unused-pub";
/// Rule name: frozen reference module with no naming test file.
pub const DIFFERENTIAL_COVERAGE: &str = "differential-coverage";

/// The structural rules: `(name, one-line summary)` — the analog of
/// [`crate::rules::ALL`] for `--list` and allow-directive validation.
pub const STRUCTURAL: &[(&str, &str)] = &[
    (
        FROZEN_REFERENCE,
        "frozen reference engines only change in comments/whitespace (re-bless with --bless)",
    ),
    (
        CRATE_LAYERING,
        "crate dependency edges follow the declared layering; tooling crates stay leaves",
    ),
    (
        API_SURFACE,
        "per-crate pub item inventories match the committed snapshots (re-bless with --bless)",
    ),
    (
        UNUSED_PUB,
        "pub items referenced nowhere outside their crate should be pub(crate)",
    ),
    (
        DIFFERENTIAL_COVERAGE,
        "every frozen reference module is named by at least one workspace test file",
    ),
];

/// A comment/whitespace-normalized fingerprint of one source file: the
/// FNV-1a 64 hash of the token stream (kinds + texts) plus its length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fingerprint {
    /// Number of code tokens.
    pub tokens: usize,
    /// FNV-1a 64 over the token kind/text sequence.
    pub fnv64: u64,
}

/// Fingerprint `src`: lex (comments vanish, whitespace collapses) and hash
/// the token sequence. Two sources get equal fingerprints iff they agree
/// token-for-token — i.e. differ at most in comments and formatting.
pub fn fingerprint_source(src: &str) -> Fingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let lexed = lex(src);
    let mut h = OFFSET;
    let mut mix = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    for t in &lexed.tokens {
        mix(&[t.kind as u8]);
        mix(t.text(src).as_bytes());
        mix(&[0xff]);
    }
    Fingerprint {
        tokens: lexed.tokens.len(),
        fnv64: h,
    }
}

/// One line of a per-crate public-API inventory, with its definition site.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct ApiEntry {
    /// The snapshot line: `<kind> <module_path>::<name>`.
    pub entry: String,
    /// Workspace-relative file of the definition.
    pub rel: String,
    /// 1-based line of the item (first attribute line).
    pub line: u32,
}

fn crate_dir_to_lib(dir: &str) -> String {
    if dir == "root" {
        "multicast_fairness".to_string()
    } else {
        format!("mlf_{dir}")
    }
}

fn crate_dir_to_package(dir: &str) -> String {
    if dir == "root" {
        "multicast-fairness".to_string()
    } else {
        format!("mlf-{dir}")
    }
}

/// The module path of a library source file within its crate, or `None`
/// when the file is not part of a library tree (`bin/`, tests, …).
fn file_module_path(rel: &str, krate: &str) -> Option<String> {
    let lib = crate_dir_to_lib(krate);
    let src_prefix = if krate == "root" {
        "src/".to_string()
    } else {
        format!("crates/{krate}/src/")
    };
    let tail = rel.strip_prefix(&src_prefix)?;
    if tail.contains("bin/") {
        return None;
    }
    let tail = tail.strip_suffix(".rs")?;
    let mut path = lib;
    if tail != "lib" {
        for seg in tail.split('/') {
            if seg == "mod" {
                continue;
            }
            path.push_str("::");
            path.push_str(seg);
        }
    }
    Some(path)
}

/// Walk one file's items collecting `pub` API entries under `path`.
fn collect_api(items: &[Item], path: &str, rel: &str, out: &mut Vec<ApiEntry>) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        let push = |out: &mut Vec<ApiEntry>, word: &str, name: &str| {
            out.push(ApiEntry {
                entry: format!("{word} {path}::{name}"),
                rel: rel.to_string(),
                line: item.line,
            });
        };
        match item.kind {
            ItemKind::Mod => {
                if let Some(n) = &item.name {
                    if item.vis == Visibility::Public {
                        push(out, "mod", n);
                    }
                    let sub = format!("{path}::{n}");
                    collect_api(&item.children, &sub, rel, out);
                }
            }
            ItemKind::Use if item.vis == Visibility::Public => {
                if let Some(p) = &item.use_path {
                    out.push(ApiEntry {
                        entry: format!("use {path}::[{p}]"),
                        rel: rel.to_string(),
                        line: item.line,
                    });
                }
            }
            ItemKind::Fn
            | ItemKind::Struct
            | ItemKind::Enum
            | ItemKind::Union
            | ItemKind::Trait
            | ItemKind::TypeAlias
            | ItemKind::Const
            | ItemKind::Static
                if item.vis == Visibility::Public =>
            {
                if let Some(n) = &item.name {
                    push(out, item.kind.word(), n);
                }
            }
            ItemKind::MacroRules if item.macro_export => {
                if let Some(n) = &item.name {
                    push(out, "macro", n);
                }
            }
            // Inherent-impl members with explicit `pub` are API.
            ItemKind::Impl if !item.trait_impl => {
                if let Some(target) = &item.impl_target {
                    let sub = format!("{path}::{target}");
                    for m in &item.children {
                        if m.cfg_test || m.vis != Visibility::Public {
                            continue;
                        }
                        if let Some(n) = &m.name {
                            out.push(ApiEntry {
                                entry: format!("{} {sub}::{n}", m.kind.word()),
                                rel: rel.to_string(),
                                line: m.line,
                            });
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Compute the per-crate public API inventories for every crate in
/// `Config::api_crates`, sorted and deduplicated.
pub fn api_surface(files: &[LoadedFile], cfg: &Config) -> BTreeMap<String, Vec<ApiEntry>> {
    let mut out: BTreeMap<String, Vec<ApiEntry>> = BTreeMap::new();
    for dir in &cfg.api_crates {
        out.insert(dir.clone(), Vec::new());
    }
    for f in files {
        let Some(krate) = &f.info.krate else { continue };
        if !cfg.api_crates.contains(krate) {
            continue;
        }
        let Some(path) = file_module_path(&f.rel, krate) else {
            continue;
        };
        let lexed = lex(&f.src);
        let items = parse_items(&f.src, &lexed.tokens);
        let entries = out.entry(krate.clone()).or_default();
        collect_api(&items, &path, &f.rel, entries);
    }
    for entries in out.values_mut() {
        entries.sort();
        entries.dedup_by(|a, b| a.entry == b.entry);
    }
    out
}

// ---------------------------------------------------------------------------
// Snapshot I/O
// ---------------------------------------------------------------------------

fn frozen_snapshot_path(root: &Path, cfg: &Config, rel: &str) -> PathBuf {
    root.join(&cfg.snapshot_dir)
        .join("frozen")
        .join(format!("{}.fp", rel.replace('/', "__")))
}

fn api_snapshot_path(root: &Path, cfg: &Config, krate: &str) -> PathBuf {
    root.join(&cfg.snapshot_dir)
        .join("api")
        .join(format!("{krate}.txt"))
}

fn snapshot_rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn parse_fp_snapshot(text: &str) -> Option<Fingerprint> {
    let mut tokens = None;
    let mut fnv = None;
    for line in text.lines() {
        let line = line.trim();
        if let Some(v) = line.strip_prefix("tokens ") {
            tokens = v.trim().parse::<usize>().ok();
        } else if let Some(v) = line.strip_prefix("fnv64 ") {
            fnv = u64::from_str_radix(v.trim().trim_start_matches("0x"), 16).ok();
        }
    }
    Some(Fingerprint {
        tokens: tokens?,
        fnv64: fnv?,
    })
}

fn render_fp_snapshot(rel: &str, fp: Fingerprint) -> String {
    format!(
        "# mlf-lint frozen-reference fingerprint (comment/whitespace-normalized).\n\
         # Re-bless a deliberate re-freeze: cargo run -p mlf-lint -- --bless\n\
         file {rel}\n\
         tokens {}\n\
         fnv64 0x{:016x}\n",
        fp.tokens, fp.fnv64
    )
}

fn render_api_snapshot(krate: &str, entries: &[ApiEntry]) -> String {
    let mut out = format!(
        "# mlf-lint public-API surface snapshot for crate `{}`.\n\
         # One `pub` item per line, sorted; drift against this file is a finding.\n\
         # Re-bless deliberate API changes: cargo run -p mlf-lint -- --bless\n",
        crate_dir_to_package(krate)
    );
    for e in entries {
        out.push_str(&e.entry);
        out.push('\n');
    }
    out
}

fn parse_api_snapshot(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

// ---------------------------------------------------------------------------
// Analyses
// ---------------------------------------------------------------------------

fn check_frozen(root: &Path, files: &[LoadedFile], cfg: &Config, findings: &mut Vec<Finding>) {
    for frozen in &cfg.frozen_files {
        let snap_path = frozen_snapshot_path(root, cfg, frozen);
        let snap_rel = snapshot_rel(root, &snap_path);
        let Some(file) = files.iter().find(|f| &f.rel == frozen) else {
            findings.push(Finding {
                rule: FROZEN_REFERENCE,
                path: frozen.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "frozen reference file `{frozen}` is configured but missing from the \
                     workspace scan"
                ),
            });
            continue;
        };
        let current = fingerprint_source(&file.src);
        let committed = fs::read_to_string(&snap_path)
            .ok()
            .and_then(|t| parse_fp_snapshot(&t));
        match committed {
            None => findings.push(Finding {
                rule: FROZEN_REFERENCE,
                path: frozen.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "no committed fingerprint for frozen reference `{frozen}` (expected \
                     `{snap_rel}`) — run `cargo run -p mlf-lint -- --bless`"
                ),
            }),
            Some(fp) if fp != current => findings.push(Finding {
                rule: FROZEN_REFERENCE,
                path: frozen.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "frozen reference `{frozen}` changed semantically: fingerprint \
                     0x{:016x}/{} tokens vs committed 0x{:016x}/{} — frozen engines may \
                     only change in comments/whitespace; if this re-freeze is deliberate, \
                     re-bless with `cargo run -p mlf-lint -- --bless` and call it out in review",
                    current.fnv64, current.tokens, fp.fnv64, fp.tokens
                ),
            }),
            Some(_) => {}
        }
    }
}

/// Parse the `mlf-*` dependency names (with line numbers) out of one
/// `Cargo.toml`, from its `[dependencies]` / `[dev-dependencies]` /
/// `[build-dependencies]` sections.
fn manifest_mlf_deps(text: &str) -> Vec<(String, u32)> {
    let mut deps = Vec::new();
    let mut in_deps = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = matches!(
                line,
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]"
            );
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name: &str = line
            .split(|c: char| c == '=' || c == '.' || c.is_whitespace())
            .next()
            .unwrap_or("");
        if let Some(dir) = name.strip_prefix("mlf-") {
            deps.push((dir.to_string(), idx as u32 + 1));
        }
    }
    deps
}

fn check_layering(root: &Path, files: &[LoadedFile], cfg: &Config, findings: &mut Vec<Finding>) {
    let layer_of = |dir: &str| cfg.layering.iter().position(|l| l == dir);
    let chain = cfg.layering.join(" → ");
    let mut emit = |path: String, line: u32, message: String| {
        findings.push(Finding {
            rule: CRATE_LAYERING,
            path,
            line,
            col: 1,
            message,
        });
    };
    let mut check_edge = |from: &str, to: &str, path: String, line: u32, via: &str| {
        if from == to {
            return;
        }
        if cfg.standalone_crates.iter().any(|s| s == from) {
            emit(
                path,
                line,
                format!(
                    "standalone tooling crate `{}` must depend on no workspace crate, but {via} \
                     pulls in `{}`",
                    crate_dir_to_package(from),
                    crate_dir_to_package(to)
                ),
            );
            return;
        }
        if cfg.standalone_crates.iter().any(|s| s == to) {
            emit(
                path,
                line,
                format!(
                    "`{}` depends on standalone tooling crate `{}` — the analyzer stays a leaf",
                    crate_dir_to_package(from),
                    crate_dir_to_package(to)
                ),
            );
            return;
        }
        let (Some(lf), Some(lt)) = (layer_of(from), layer_of(to)) else {
            return;
        };
        if lt >= lf {
            emit(
                path,
                line,
                format!(
                    "upward dependency edge `{}` → `{}` inverts the declared crate layering \
                     ({chain}); cycles are impossible only while every edge points downward",
                    crate_dir_to_package(from),
                    crate_dir_to_package(to)
                ),
            );
        }
    };

    // Manifest edges.
    let manifest_crates: Vec<&String> = cfg
        .layering
        .iter()
        .chain(cfg.standalone_crates.iter())
        .collect();
    for dir in manifest_crates {
        let manifest = root.join("crates").join(dir).join("Cargo.toml");
        let Ok(text) = fs::read_to_string(&manifest) else {
            continue;
        };
        let rel = snapshot_rel(root, &manifest);
        for (dep, line) in manifest_mlf_deps(&text) {
            check_edge(dir, &dep, rel.clone(), line, "its Cargo.toml");
        }
    }

    // Source edges: `mlf_*` identifiers anywhere under a crate's directory
    // (library, tests, benches — all impose real dependency edges). The
    // root umbrella sits above the whole layering and is exempt.
    let lib_names: Vec<(String, String)> = cfg
        .layering
        .iter()
        .chain(cfg.standalone_crates.iter())
        .map(|d| (crate_dir_to_lib(d), d.clone()))
        .collect();
    for f in files {
        let Some(krate) = &f.info.krate else { continue };
        if krate == "root" {
            continue;
        }
        if layer_of(krate).is_none() && !cfg.standalone_crates.iter().any(|s| s == krate) {
            continue;
        }
        let lexed = lex(&f.src);
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for t in &lexed.tokens {
            if t.kind != crate::lexer::TokenKind::Ident {
                continue;
            }
            let text = t.text(&f.src);
            let Some((_, dep_dir)) = lib_names.iter().find(|(lib, _)| lib == text) else {
                continue;
            };
            if !seen.insert(text) {
                continue; // one finding per (file, dep) pair
            }
            check_edge(
                krate,
                dep_dir,
                f.rel.clone(),
                t.line,
                "this source reference",
            );
        }
    }
}

fn check_api_surface(root: &Path, files: &[LoadedFile], cfg: &Config, findings: &mut Vec<Finding>) {
    let surfaces = api_surface(files, cfg);
    for (krate, entries) in &surfaces {
        let snap_path = api_snapshot_path(root, cfg, krate);
        let snap_rel = snapshot_rel(root, &snap_path);
        let Ok(text) = fs::read_to_string(&snap_path) else {
            findings.push(Finding {
                rule: API_SURFACE,
                path: snap_rel,
                line: 1,
                col: 1,
                message: format!(
                    "no committed API snapshot for crate `{}` — run \
                     `cargo run -p mlf-lint -- --bless`",
                    crate_dir_to_package(krate)
                ),
            });
            continue;
        };
        let committed = parse_api_snapshot(&text);
        let current: BTreeSet<&str> = entries.iter().map(|e| e.entry.as_str()).collect();
        for e in entries {
            if !committed.contains(&e.entry) {
                findings.push(Finding {
                    rule: API_SURFACE,
                    path: e.rel.clone(),
                    line: e.line,
                    col: 1,
                    message: format!(
                        "public item `{}` is not in the committed API snapshot for `{}` — \
                         deliberate API growth is re-blessed with \
                         `cargo run -p mlf-lint -- --bless`",
                        e.entry,
                        crate_dir_to_package(krate)
                    ),
                });
            }
        }
        for gone in committed.iter().filter(|c| !current.contains(c.as_str())) {
            findings.push(Finding {
                rule: API_SURFACE,
                path: snap_rel.clone(),
                line: 1,
                col: 1,
                message: format!(
                    "public item `{gone}` disappeared from crate `{}` — removing API is a \
                     breaking change; re-bless with `cargo run -p mlf-lint -- --bless`",
                    crate_dir_to_package(krate)
                ),
            });
        }
    }
}

/// A `pub` item that is a candidate for the unused-pub check.
struct PubCandidate {
    name: String,
    kind_word: &'static str,
    rel: String,
    line: u32,
    krate: String,
}

fn collect_pub_candidates(items: &[Item], rel: &str, krate: &str, out: &mut Vec<PubCandidate>) {
    for item in items {
        if item.cfg_test {
            continue;
        }
        match item.kind {
            ItemKind::Fn
            | ItemKind::Struct
            | ItemKind::Enum
            | ItemKind::Union
            | ItemKind::Trait
            | ItemKind::TypeAlias
            | ItemKind::Const
            | ItemKind::Static
                if item.vis == Visibility::Public =>
            {
                if let Some(n) = &item.name {
                    out.push(PubCandidate {
                        name: n.clone(),
                        kind_word: item.kind.word(),
                        rel: rel.to_string(),
                        line: item.line,
                        krate: krate.to_string(),
                    });
                }
            }
            ItemKind::Mod => collect_pub_candidates(&item.children, rel, krate, out),
            ItemKind::Impl if !item.trait_impl => {
                for m in &item.children {
                    if m.cfg_test || m.vis != Visibility::Public {
                        continue;
                    }
                    if let Some(n) = &m.name {
                        out.push(PubCandidate {
                            name: n.clone(),
                            kind_word: m.kind.word(),
                            rel: rel.to_string(),
                            line: m.line,
                            krate: krate.to_string(),
                        });
                    }
                }
            }
            _ => {}
        }
    }
}

fn check_unused_pub(files: &[LoadedFile], cfg: &Config, findings: &mut Vec<Finding>) {
    use crate::FileClass;
    // Usage units: the library code of crate X is one unit ("lib:X");
    // everything else (harness files, other crates, root tests) is grouped
    // by its own identity. An item of crate X is "used" iff its name
    // appears in any unit other than "lib:X".
    let mut usage: BTreeMap<&str, BTreeSet<String>> = BTreeMap::new();
    let mut candidates: Vec<PubCandidate> = Vec::new();
    for f in files {
        let unit = match (&f.info.class, &f.info.krate) {
            (FileClass::Library, Some(k)) => format!("lib:{k}"),
            (_, Some(k)) => format!("harness:{k}"),
            (_, None) => "harness:".to_string(),
        };
        let lexed = lex(&f.src);
        for t in &lexed.tokens {
            if t.kind == crate::lexer::TokenKind::Ident {
                let text = t.text(&f.src);
                let name = text.strip_prefix("r#").unwrap_or(text);
                usage.entry(name).or_default().insert(unit.clone());
            }
        }
        if f.info.class == FileClass::Library {
            if let Some(k) = &f.info.krate {
                if cfg.deterministic_crates.contains(k) {
                    let items = parse_items(&f.src, &lexed.tokens);
                    collect_pub_candidates(&items, &f.rel, k, &mut candidates);
                }
            }
        }
    }
    for c in &candidates {
        let own = format!("lib:{}", c.krate);
        let used_elsewhere = usage
            .get(c.name.as_str())
            .is_some_and(|units| units.iter().any(|u| u != &own));
        if !used_elsewhere {
            findings.push(Finding {
                rule: UNUSED_PUB,
                path: c.rel.clone(),
                line: c.line,
                col: 1,
                message: format!(
                    "`pub {} {}` is never referenced outside its defining crate — downgrade to \
                     `pub(crate)`, or keep it public with \
                     `// mlf-lint: allow(unused-pub, reason = \"…\")` naming why the API is \
                     intentional",
                    c.kind_word, c.name
                ),
            });
        }
    }
}

fn check_differential_coverage(files: &[LoadedFile], cfg: &Config, findings: &mut Vec<Finding>) {
    // Identifier sets of every workspace test file.
    let test_files: Vec<(&LoadedFile, BTreeSet<String>)> = files
        .iter()
        .filter(|f| f.rel.starts_with("tests/") || f.rel.contains("/tests/"))
        .map(|f| {
            let lexed = lex(&f.src);
            let idents: BTreeSet<String> = lexed
                .tokens
                .iter()
                .filter(|t| t.kind == crate::lexer::TokenKind::Ident)
                .map(|t| {
                    let text = t.text(&f.src);
                    text.strip_prefix("r#").unwrap_or(text).to_string()
                })
                .collect();
            (f, idents)
        })
        .collect();
    for frozen in &cfg.frozen_files {
        let Some(file) = files.iter().find(|f| &f.rel == frozen) else {
            continue; // check_frozen already reported the missing file
        };
        let Some(krate) = &file.info.krate else {
            continue;
        };
        let lib = crate_dir_to_lib(krate);
        let stem = Path::new(frozen)
            .file_stem()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_default();
        let lexed = lex(&file.src);
        let items = parse_items(&file.src, &lexed.tokens);
        let mut required: Vec<(String, u32)> = vec![(stem.clone(), 1)];
        for item in &items {
            if item.kind == ItemKind::Mod && !item.cfg_test {
                if let Some(n) = &item.name {
                    required.push((n.clone(), item.line));
                }
            }
        }
        for (module, line) in required {
            let covered = test_files
                .iter()
                .any(|(_, idents)| idents.contains(&lib) && idents.contains(&module));
            if !covered {
                findings.push(Finding {
                    rule: DIFFERENTIAL_COVERAGE,
                    path: frozen.clone(),
                    line,
                    col: 1,
                    message: format!(
                        "frozen reference module `{lib}::{module}` is named by no workspace \
                         test file — freezing an engine without a differential test leaves \
                         the bitwise contract unchecked"
                    ),
                });
            }
        }
    }
}

/// Run the whole structural pass over a loaded workspace. `root` anchors
/// the `Cargo.toml` and snapshot reads; findings come back unsorted (the
/// caller merges them with the token-pass findings and applies
/// suppression directives).
pub fn analyze(root: &Path, files: &[LoadedFile], cfg: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    check_frozen(root, files, cfg, &mut findings);
    check_layering(root, files, cfg, &mut findings);
    check_api_surface(root, files, cfg, &mut findings);
    check_unused_pub(files, cfg, &mut findings);
    check_differential_coverage(files, cfg, &mut findings);
    findings
}

/// Regenerate every snapshot (frozen fingerprints + per-crate API
/// surfaces) from the current workspace state. Output is deterministic:
/// same sources, same bytes. Returns the workspace-relative paths written.
pub fn bless(root: &Path, files: &[LoadedFile], cfg: &Config) -> io::Result<Vec<String>> {
    let mut written = Vec::new();
    for frozen in &cfg.frozen_files {
        let Some(file) = files.iter().find(|f| &f.rel == frozen) else {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("frozen file `{frozen}` not found in workspace scan"),
            ));
        };
        let fp = fingerprint_source(&file.src);
        let path = frozen_snapshot_path(root, cfg, frozen);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(&path, render_fp_snapshot(frozen, fp))?;
        written.push(snapshot_rel(root, &path));
    }
    for (krate, entries) in &api_surface(files, cfg) {
        let path = api_snapshot_path(root, cfg, krate);
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir)?;
        }
        fs::write(&path, render_api_snapshot(krate, entries))?;
        written.push(snapshot_rel(root, &path));
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_comments_and_whitespace() {
        let a = "pub fn f(x: u32) -> u32 { x + 1 }";
        let b = "// a comment\npub fn f(\n    x: u32\n) -> u32 {\n    /* inline */ x + 1\n}";
        assert_eq!(fingerprint_source(a).fnv64, fingerprint_source(b).fnv64);
    }

    #[test]
    fn fingerprint_sees_semantic_changes() {
        let a = "pub fn f(x: u32) -> u32 { x + 1 }";
        let renamed = "pub fn f(y: u32) -> u32 { y + 1 }";
        let retuned = "pub fn f(x: u32) -> u32 { x + 2 }";
        assert_ne!(
            fingerprint_source(a).fnv64,
            fingerprint_source(renamed).fnv64
        );
        assert_ne!(
            fingerprint_source(a).fnv64,
            fingerprint_source(retuned).fnv64
        );
    }

    #[test]
    fn manifest_dep_parsing() {
        let toml = "[package]\nname = \"mlf-sim\"\n\n[dependencies]\nmlf-net.workspace = true\n\
                    mlf-layering = { path = \"../layering\" }\n\n[dev-dependencies]\nproptest.workspace = true\n";
        let deps = manifest_mlf_deps(toml);
        let names: Vec<&str> = deps.iter().map(|(d, _)| d.as_str()).collect();
        assert_eq!(names, ["net", "layering"]);
    }

    #[test]
    fn module_paths_from_rel() {
        assert_eq!(
            file_module_path("crates/core/src/lib.rs", "core").as_deref(),
            Some("mlf_core")
        );
        assert_eq!(
            file_module_path("crates/core/src/properties/mod.rs", "core").as_deref(),
            Some("mlf_core::properties")
        );
        assert_eq!(
            file_module_path("crates/core/src/properties/same_path.rs", "core").as_deref(),
            Some("mlf_core::properties::same_path")
        );
        assert_eq!(
            file_module_path("src/lib.rs", "root").as_deref(),
            Some("multicast_fairness")
        );
        assert_eq!(file_module_path("crates/core/tests/x.rs", "core"), None);
    }
}
