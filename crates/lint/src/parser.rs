//! A lightweight recursive-descent **item** parser over the token stream.
//!
//! The token-level rules in [`crate::rules`] see a flat token sequence;
//! the structural analyses in [`crate::structure`] need to know *what the
//! items are*: their kind, name, visibility, attributes, and nesting. This
//! module parses exactly that — item **headers** plus the `mod`/`impl`
//! nesting structure — and deliberately nothing more. Function bodies,
//! expressions, patterns, and types are skipped as balanced token blobs;
//! the compiler, not the linter, owns full syntax.
//!
//! Handled surface (the shapes that actually occur in this workspace plus
//! the classic traps):
//!
//! * `#!`-shebang lines and `#![…]` inner attributes (skipped),
//! * outer attributes, with `#[cfg(test)]` / `#[test]` / `#[bench]`
//!   detection (`#[cfg(not(test))]` does **not** count as test-gated) and
//!   `#[macro_export]` tracking,
//! * visibility: `pub`, `pub(crate)`, `pub(super)` / `pub(self)` /
//!   `pub(in …)`,
//! * `mod` (inline and out-of-line), `use`, `extern crate`,
//! * `fn` with modifiers (`const`/`async`/`unsafe`/`extern "C"`),
//!   generics, where-clauses,
//! * `struct` (unit/tuple/braced), `enum`, `union`, `trait`, `type`,
//!   `const`, `static`,
//! * `impl Type { … }` and `impl Trait for Type { … }` with member items,
//! * `macro_rules!` definitions and item-position macro invocations.
//!
//! Generics are skipped with angle-depth tracking; because the
//! [`lexer`](crate::lexer) emits one token per punctuation byte, a closing
//! `>>` in `Vec<Vec<u64>>` is already two `>` tokens, so no dedicated
//! `>>`-splitting state is needed — the depth counter simply decrements
//! twice. The `>` of `->` and `=>` never closes an angle bracket (the
//! previous token is checked), and `{ … }` / `( … )` regions inside
//! generics are skipped balanced so const-generic default expressions
//! cannot desynchronize the depth.
//!
//! The parser never fails: unrecognized constructs become
//! [`ItemKind::Unknown`] and are skipped to the next item boundary, so a
//! file the parser only partially understands still yields every item it
//! does understand.

use crate::lexer::{Token, TokenKind};

/// Item visibility, as written at the definition site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// No `pub` at all.
    Private,
    /// `pub(crate)`.
    Crate,
    /// `pub(super)`, `pub(self)`, or `pub(in …)`.
    Restricted,
    /// Plain `pub`.
    Public,
}

/// What sort of item a parsed node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `mod name;` or `mod name { … }`.
    Mod,
    /// `extern crate name;`.
    ExternCrate,
    /// `use path::to::{Thing};`.
    Use,
    /// `fn name(…) { … }` (with any modifier prefix).
    Fn,
    /// `struct Name …`.
    Struct,
    /// `enum Name { … }`.
    Enum,
    /// `union Name { … }`.
    Union,
    /// `trait Name { … }`.
    Trait,
    /// `type Name = …;`.
    TypeAlias,
    /// `const NAME: … = …;`.
    Const,
    /// `static NAME: … = …;`.
    Static,
    /// `impl Type { … }` or `impl Trait for Type { … }`.
    Impl,
    /// `macro_rules! name { … }`.
    MacroRules,
    /// An item-position macro invocation (`proptest! { … }`).
    MacroCall,
    /// Anything the parser skipped over without understanding.
    Unknown,
}

impl ItemKind {
    /// The keyword used for this kind in API-snapshot lines.
    pub fn word(self) -> &'static str {
        match self {
            ItemKind::Mod => "mod",
            ItemKind::ExternCrate => "extern-crate",
            ItemKind::Use => "use",
            ItemKind::Fn => "fn",
            ItemKind::Struct => "struct",
            ItemKind::Enum => "enum",
            ItemKind::Union => "union",
            ItemKind::Trait => "trait",
            ItemKind::TypeAlias => "type",
            ItemKind::Const => "const",
            ItemKind::Static => "static",
            ItemKind::Impl => "impl",
            ItemKind::MacroRules => "macro",
            ItemKind::MacroCall => "macro-call",
            ItemKind::Unknown => "unknown",
        }
    }
}

/// One parsed item: header facts plus children for `mod` and `impl`
/// bodies.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// The declared name (`r#` prefixes stripped); `None` for `impl`
    /// blocks, `use` items, and unrecognized constructs.
    pub name: Option<String>,
    /// Visibility as written.
    pub vis: Visibility,
    /// Whether the item is gated behind `#[cfg(test)]` / `#[test]` /
    /// `#[bench]` (directly — inherited gating is the *caller's* job via
    /// the parent item).
    pub cfg_test: bool,
    /// Whether the item carries any `#[cfg(…)]` attribute at all.
    pub cfg_gated: bool,
    /// Whether the item carries `#[macro_export]`.
    pub macro_export: bool,
    /// 1-based line of the item's first token **including attributes** —
    /// the line a suppression directive placed above the item targets.
    pub line: u32,
    /// 1-based line of the visibility/keyword token itself.
    pub decl_line: u32,
    /// For [`ItemKind::Impl`]: whether this is a trait impl
    /// (`impl Trait for Type`).
    pub trait_impl: bool,
    /// For [`ItemKind::Impl`]: the base name of the self type (`Foo` for
    /// `impl<T> crate::x::Foo<T> where …`).
    pub impl_target: Option<String>,
    /// For [`ItemKind::Use`]: the normalized path text
    /// (`crate::cache::{CacheStats, SolveCache}`).
    pub use_path: Option<String>,
    /// Members of `mod { … }` and `impl { … }` bodies.
    pub children: Vec<Item>,
}

impl Item {
    fn new(kind: ItemKind, line: u32, decl_line: u32) -> Self {
        Item {
            kind,
            name: None,
            vis: Visibility::Private,
            cfg_test: false,
            cfg_gated: false,
            macro_export: false,
            line,
            decl_line,
            trait_impl: false,
            impl_target: None,
            use_path: None,
            children: Vec::new(),
        }
    }
}

/// Parse the items of one source file. `tokens` must be the token stream
/// [`lex`](crate::lexer::lex) produced for `src` (comments are already
/// absent from it). Never fails; see the module docs for the recovery
/// strategy.
pub fn parse_items(src: &str, tokens: &[Token]) -> Vec<Item> {
    let mut p = Parser {
        src,
        toks: tokens,
        i: 0,
    };
    // A shebang is `#!` at byte 0 *not* followed by `[` (that would be an
    // inner attribute). The lexer tokenizes the line as noise; skip it.
    if p.is_punct(0, '#')
        && p.is_punct(1, '!')
        && !p.is_punct(2, '[')
        && tokens.first().is_some_and(|t| t.line == 1 && t.col == 1)
    {
        while p.toks.get(p.i).is_some_and(|t| t.line == 1) {
            p.i += 1;
        }
    }
    p.parse_block(false)
}

struct Parser<'a> {
    src: &'a str,
    toks: &'a [Token],
    i: usize,
}

impl<'a> Parser<'a> {
    fn eof(&self) -> bool {
        self.i >= self.toks.len()
    }

    fn text(&self, at: usize) -> &'a str {
        self.toks.get(at).map_or("", |t| t.text(self.src))
    }

    fn is_ident(&self, at: usize, name: &str) -> bool {
        self.toks.get(at).is_some_and(|t| {
            t.kind == TokenKind::Ident && {
                let text = t.text(self.src);
                text == name || text.strip_prefix("r#") == Some(name)
            }
        })
    }

    fn is_any_ident(&self, at: usize) -> bool {
        self.toks
            .get(at)
            .is_some_and(|t| t.kind == TokenKind::Ident)
    }

    fn is_punct(&self, at: usize, c: char) -> bool {
        self.toks.get(at).is_some_and(|t| t.is_punct(self.src, c))
    }

    fn line(&self, at: usize) -> u32 {
        self.toks.get(at).map_or(0, |t| t.line)
    }

    /// Consume an identifier and return it with any `r#` prefix stripped.
    fn take_name(&mut self) -> Option<String> {
        if self.is_any_ident(self.i) {
            let t = self.text(self.i);
            self.i += 1;
            Some(t.strip_prefix("r#").unwrap_or(t).to_string())
        } else {
            None
        }
    }

    /// With the cursor on `open`, consume through the matching `close`.
    fn skip_balanced(&mut self, open: char, close: char) {
        let mut depth = 0usize;
        while !self.eof() {
            if self.is_punct(self.i, open) {
                depth += 1;
            } else if self.is_punct(self.i, close) {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// With the cursor on `<`, consume through the matching `>`. `{…}` and
    /// `(…)` regions inside are skipped balanced (const-generic defaults,
    /// `Fn(…)` bounds), and a `>` preceded by `-` or `=` (`->`, `=>`)
    /// never closes. A `>>` close is two `>` tokens, so it simply
    /// decrements twice.
    fn skip_generics(&mut self) {
        let mut depth = 0usize;
        while !self.eof() {
            if self.is_punct(self.i, '{') {
                self.skip_balanced('{', '}');
                continue;
            }
            if self.is_punct(self.i, '(') {
                self.skip_balanced('(', ')');
                continue;
            }
            if self.is_punct(self.i, '<') {
                depth += 1;
            } else if self.is_punct(self.i, '>')
                && !(self.i > 0
                    && (self.is_punct(self.i - 1, '-') || self.is_punct(self.i - 1, '=')))
            {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    self.i += 1;
                    return;
                }
            }
            self.i += 1;
        }
    }

    /// Consume the rest of a `fn`/`struct`/`enum`/`union`/`trait` item
    /// after its name and generics: through the where-clause to either a
    /// terminating `;` or a balanced `{ … }` body.
    fn skip_to_body_or_semi(&mut self) {
        let mut angle = 0usize;
        let mut paren = 0usize;
        while !self.eof() {
            if self.is_punct(self.i, '(') || self.is_punct(self.i, '[') {
                paren += 1;
            } else if self.is_punct(self.i, ')') || self.is_punct(self.i, ']') {
                paren = paren.saturating_sub(1);
            } else if self.is_punct(self.i, '<') {
                angle += 1;
            } else if self.is_punct(self.i, '>')
                && !(self.i > 0
                    && (self.is_punct(self.i - 1, '-') || self.is_punct(self.i - 1, '=')))
            {
                angle = angle.saturating_sub(1);
            } else if self.is_punct(self.i, '{') {
                if angle == 0 && paren == 0 {
                    self.skip_balanced('{', '}');
                    return;
                }
                // Const-generic expression inside a type: skip balanced.
                self.skip_balanced('{', '}');
                continue;
            } else if self.is_punct(self.i, ';') && angle == 0 && paren == 0 {
                self.i += 1;
                return;
            }
            self.i += 1;
        }
    }

    /// Consume through the next `;` at brace/paren/bracket depth 0 — the
    /// terminator of `use`/`type`/`const`/`static`/`extern crate` items,
    /// whose initializer expressions may contain `;` inside blocks.
    fn skip_to_semi(&mut self) {
        let mut depth = 0usize;
        while !self.eof() {
            if self.is_punct(self.i, '{')
                || self.is_punct(self.i, '(')
                || self.is_punct(self.i, '[')
            {
                depth += 1;
            } else if self.is_punct(self.i, '}')
                || self.is_punct(self.i, ')')
                || self.is_punct(self.i, ']')
            {
                depth = depth.saturating_sub(1);
            } else if self.is_punct(self.i, ';') && depth == 0 {
                self.i += 1;
                return;
            }
            self.i += 1;
        }
    }

    /// Render `toks[from..to]` as compact text: no spaces except between
    /// two word-like tokens (`impl Display for Foo`, `Vec<Vec<u64>>`).
    fn normalize(&self, from: usize, to: usize) -> String {
        let mut out = String::new();
        let mut prev_wordy = false;
        for at in from..to.min(self.toks.len()) {
            let t = &self.toks[at];
            let wordy = !matches!(t.kind, TokenKind::Punct);
            if prev_wordy && wordy {
                out.push(' ');
            }
            out.push_str(t.text(self.src));
            prev_wordy = wordy;
        }
        out
    }

    /// Parse items until EOF (`until_brace == false`) or an unmatched `}`
    /// (`until_brace == true`, which consumes the `}`).
    fn parse_block(&mut self, until_brace: bool) -> Vec<Item> {
        let mut items = Vec::new();
        while !self.eof() {
            if self.is_punct(self.i, '}') {
                if until_brace {
                    self.i += 1;
                    return items;
                }
                // Stray close brace at top level: skip it and continue.
                self.i += 1;
                continue;
            }
            // Inner attributes `#![…]` attach to the enclosing scope.
            if self.is_punct(self.i, '#')
                && self.is_punct(self.i + 1, '!')
                && self.is_punct(self.i + 2, '[')
            {
                self.i += 2;
                self.skip_balanced('[', ']');
                continue;
            }
            let before = self.i;
            items.push(self.parse_item());
            if self.i == before {
                // Absolute progress guarantee.
                self.i += 1;
            }
        }
        items
    }

    /// Scan one outer attribute (cursor on `#`), returning its collected
    /// identifier list.
    fn scan_attr(&mut self) -> Vec<String> {
        self.i += 1; // '#'
        let mut idents = Vec::new();
        if !self.is_punct(self.i, '[') {
            return idents;
        }
        let mut depth = 0usize;
        while !self.eof() {
            if self.is_punct(self.i, '[') {
                depth += 1;
            } else if self.is_punct(self.i, ']') {
                depth -= 1;
                if depth == 0 {
                    self.i += 1;
                    return idents;
                }
            } else if self.is_any_ident(self.i) {
                idents.push(self.text(self.i).to_string());
            }
            self.i += 1;
        }
        idents
    }

    fn parse_item(&mut self) -> Item {
        let first_line = self.line(self.i);
        let mut cfg_test = false;
        let mut cfg_gated = false;
        let mut macro_export = false;
        // Outer attributes.
        while self.is_punct(self.i, '#') && self.is_punct(self.i + 1, '[') {
            let idents = self.scan_attr();
            match idents.first().map(String::as_str) {
                Some("cfg") => {
                    cfg_gated = true;
                    if idents.iter().any(|x| x == "test") && !idents.iter().any(|x| x == "not") {
                        cfg_test = true;
                    }
                }
                Some("test") | Some("bench") => cfg_test = true,
                Some("macro_export") => macro_export = true,
                _ => {}
            }
        }
        let decl_line = self.line(self.i);
        // Visibility.
        let mut vis = Visibility::Private;
        if self.is_ident(self.i, "pub") {
            self.i += 1;
            vis = Visibility::Public;
            if self.is_punct(self.i, '(') {
                let start = self.i;
                self.skip_balanced('(', ')');
                let inner = self.normalize(start + 1, self.i - 1);
                vis = if inner == "crate" {
                    Visibility::Crate
                } else {
                    Visibility::Restricted
                };
            }
        }
        // Modifier prefix before `fn` (and `unsafe` before `impl`/`trait`).
        loop {
            if (self.is_ident(self.i, "const")
                && (self.is_ident(self.i + 1, "fn")
                    || self.is_ident(self.i + 1, "unsafe")
                    || self.is_ident(self.i + 1, "async")
                    || self.is_ident(self.i + 1, "extern")))
                || self.is_ident(self.i, "async")
                || (self.is_ident(self.i, "unsafe") && !self.is_punct(self.i + 1, '{'))
                || (self.is_ident(self.i, "default") && self.is_ident(self.i + 1, "fn"))
            {
                self.i += 1;
                continue;
            }
            // `extern "C" fn` — but leave `extern crate` / `extern { }`
            // for the dispatch below.
            if self.is_ident(self.i, "extern")
                && (self.is_ident(self.i + 1, "fn")
                    || (self
                        .toks
                        .get(self.i + 1)
                        .is_some_and(|t| t.kind == TokenKind::Literal)
                        && self.is_ident(self.i + 2, "fn")))
            {
                self.i += 1;
                if !self.is_ident(self.i, "fn") {
                    self.i += 1; // ABI literal
                }
                continue;
            }
            break;
        }

        let mut item = Item::new(ItemKind::Unknown, first_line, decl_line);
        item.vis = vis;
        item.cfg_test = cfg_test;
        item.cfg_gated = cfg_gated;
        item.macro_export = macro_export;

        if self.is_ident(self.i, "mod") && self.is_any_ident(self.i + 1) {
            self.i += 1;
            item.kind = ItemKind::Mod;
            item.name = self.take_name();
            if self.is_punct(self.i, ';') {
                self.i += 1;
            } else if self.is_punct(self.i, '{') {
                self.i += 1;
                item.children = self.parse_block(true);
            }
        } else if self.is_ident(self.i, "extern") && self.is_ident(self.i + 1, "crate") {
            self.i += 2;
            item.kind = ItemKind::ExternCrate;
            item.name = self.take_name();
            self.skip_to_semi();
        } else if self.is_ident(self.i, "extern")
            && (self.is_punct(self.i + 1, '{')
                || (self
                    .toks
                    .get(self.i + 1)
                    .is_some_and(|t| t.kind == TokenKind::Literal)
                    && self.is_punct(self.i + 2, '{')))
        {
            item.kind = ItemKind::Unknown;
            while !self.eof() && !self.is_punct(self.i, '{') {
                self.i += 1;
            }
            self.skip_balanced('{', '}');
        } else if self.is_ident(self.i, "use") {
            self.i += 1;
            item.kind = ItemKind::Use;
            let start = self.i;
            self.skip_to_semi();
            item.use_path = Some(self.normalize(start, self.i.saturating_sub(1)));
        } else if self.is_ident(self.i, "fn") {
            self.i += 1;
            item.kind = ItemKind::Fn;
            item.name = self.take_name();
            if self.is_punct(self.i, '<') {
                self.skip_generics();
            }
            self.skip_to_body_or_semi();
        } else if self.is_ident(self.i, "struct")
            || self.is_ident(self.i, "enum")
            || self.is_ident(self.i, "union")
            || self.is_ident(self.i, "trait")
        {
            item.kind = match self.text(self.i) {
                "struct" => ItemKind::Struct,
                "enum" => ItemKind::Enum,
                "union" => ItemKind::Union,
                _ => ItemKind::Trait,
            };
            self.i += 1;
            item.name = self.take_name();
            if self.is_punct(self.i, '<') {
                self.skip_generics();
            }
            self.skip_to_body_or_semi();
        } else if self.is_ident(self.i, "type") && self.is_any_ident(self.i + 1) {
            self.i += 1;
            item.kind = ItemKind::TypeAlias;
            item.name = self.take_name();
            self.skip_to_semi();
        } else if (self.is_ident(self.i, "const") || self.is_ident(self.i, "static"))
            && (self.is_any_ident(self.i + 1)
                || (self.is_ident(self.i + 1, "mut") && self.is_any_ident(self.i + 2)))
        {
            item.kind = if self.is_ident(self.i, "const") {
                ItemKind::Const
            } else {
                ItemKind::Static
            };
            self.i += 1;
            if self.is_ident(self.i, "mut") {
                self.i += 1;
            }
            item.name = self.take_name();
            self.skip_to_semi();
        } else if self.is_ident(self.i, "impl") {
            self.i += 1;
            item.kind = ItemKind::Impl;
            if self.is_punct(self.i, '<') {
                self.skip_generics();
            }
            let start = self.i;
            // Scan the header to its body `{`, tracking angle depth and
            // spotting a depth-0 `for` (trait impl marker).
            let mut angle = 0usize;
            let mut for_at: Option<usize> = None;
            while !self.eof() {
                if self.is_punct(self.i, '{') && angle == 0 {
                    break;
                }
                if self.is_punct(self.i, '<') {
                    angle += 1;
                } else if self.is_punct(self.i, '>')
                    && !(self.i > 0
                        && (self.is_punct(self.i - 1, '-') || self.is_punct(self.i - 1, '=')))
                {
                    angle = angle.saturating_sub(1);
                } else if self.is_ident(self.i, "for") && angle == 0 && for_at.is_none() {
                    for_at = Some(self.i);
                }
                self.i += 1;
            }
            let header_end = self.i;
            item.trait_impl = for_at.is_some();
            let target_from = for_at.map_or(start, |f| f + 1);
            item.impl_target = impl_base_name(self, target_from, header_end);
            if self.is_punct(self.i, '{') {
                self.i += 1;
                item.children = self.parse_block(true);
            }
        } else if self.is_ident(self.i, "macro_rules") && self.is_punct(self.i + 1, '!') {
            self.i += 2;
            item.kind = ItemKind::MacroRules;
            item.name = self.take_name();
            if self.is_punct(self.i, '{') {
                self.skip_balanced('{', '}');
            } else if self.is_punct(self.i, '(') {
                self.skip_balanced('(', ')');
                if self.is_punct(self.i, ';') {
                    self.i += 1;
                }
            } else if self.is_punct(self.i, '[') {
                self.skip_balanced('[', ']');
                if self.is_punct(self.i, ';') {
                    self.i += 1;
                }
            }
        } else if self.is_any_ident(self.i)
            && (self.is_punct(self.i + 1, '!')
                || (self.is_path_seg(self.i + 1) && self.macro_path_bang(self.i)))
        {
            // Item-position macro invocation: `name! { … }`,
            // `path::to::name! { … }`.
            item.kind = ItemKind::MacroCall;
            while !self.eof() && !self.is_punct(self.i, '!') {
                self.i += 1;
            }
            item.name = Some(self.text(self.i.saturating_sub(1)).to_string());
            self.i += 1; // '!'
            if self.is_punct(self.i, '{') {
                self.skip_balanced('{', '}');
            } else if self.is_punct(self.i, '(') {
                self.skip_balanced('(', ')');
                if self.is_punct(self.i, ';') {
                    self.i += 1;
                }
            } else if self.is_punct(self.i, '[') {
                self.skip_balanced('[', ']');
                if self.is_punct(self.i, ';') {
                    self.i += 1;
                }
            }
        } else {
            // Unknown construct: skip to the next item boundary.
            while !self.eof() {
                if self.is_punct(self.i, ';') {
                    self.i += 1;
                    break;
                }
                if self.is_punct(self.i, '{') {
                    self.skip_balanced('{', '}');
                    break;
                }
                if self.is_punct(self.i, '}') {
                    break;
                }
                self.i += 1;
            }
        }
        item
    }

    /// Whether tokens `at, at+1` spell `::`.
    fn is_path_seg(&self, at: usize) -> bool {
        self.is_punct(at, ':') && self.is_punct(at + 1, ':')
    }

    /// Whether an ident at `at` heads a `path::to::macro!` chain.
    fn macro_path_bang(&self, at: usize) -> bool {
        let mut j = at;
        while self.is_any_ident(j) && self.is_path_seg(j + 1) {
            j += 3;
        }
        self.is_any_ident(j) && self.is_punct(j + 1, '!')
    }
}

/// The base name of an impl self type: the last depth-0 identifier before
/// the body / a depth-0 `where` (`crate::maxmin::Foo<T> where …` → `Foo`).
fn impl_base_name(p: &Parser<'_>, from: usize, to: usize) -> Option<String> {
    let mut angle = 0usize;
    let mut base: Option<String> = None;
    for at in from..to.min(p.toks.len()) {
        if p.is_punct(at, '<') {
            angle += 1;
        } else if p.is_punct(at, '>')
            && !(at > 0 && (p.is_punct(at - 1, '-') || p.is_punct(at - 1, '=')))
        {
            angle = angle.saturating_sub(1);
        } else if angle == 0 && p.is_any_ident(at) {
            let t = p.text(at);
            if t == "where" {
                break;
            }
            if !matches!(t, "dyn" | "mut" | "for") {
                base = Some(t.strip_prefix("r#").unwrap_or(t).to_string());
            }
        }
    }
    base
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Vec<Item> {
        let lexed = lex(src);
        parse_items(src, &lexed.tokens)
    }

    #[test]
    fn basic_items() {
        let items = parse(
            "pub fn f(x: u32) -> u32 { x }\n\
             struct S { a: u32 }\n\
             pub(crate) enum E { A, B }\n\
             pub type T = Vec<Vec<u64>>;\n\
             pub const C: usize = { let v = 1; v };\n\
             static mut G: u8 = 0;\n",
        );
        let kinds: Vec<ItemKind> = items.iter().map(|i| i.kind).collect();
        assert_eq!(
            kinds,
            [
                ItemKind::Fn,
                ItemKind::Struct,
                ItemKind::Enum,
                ItemKind::TypeAlias,
                ItemKind::Const,
                ItemKind::Static
            ]
        );
        assert_eq!(items[0].vis, Visibility::Public);
        assert_eq!(items[1].vis, Visibility::Private);
        assert_eq!(items[2].vis, Visibility::Crate);
        assert_eq!(items[3].name.as_deref(), Some("T"));
        assert_eq!(items[5].name.as_deref(), Some("G"));
    }

    #[test]
    fn nested_generics_split_double_close() {
        let items = parse("pub fn g<T: Into<Vec<Vec<u64>>>>(t: T) -> Vec<Vec<u64>> { t.into() }\npub struct After;");
        assert_eq!(items.len(), 2);
        assert_eq!(items[1].name.as_deref(), Some("After"));
    }

    #[test]
    fn impl_blocks_and_members() {
        let items = parse(
            "impl<T: Clone> crate::x::Foo<T> {\n\
                 pub fn method(&self) -> u32 { 1 }\n\
                 fn private(&self) {}\n\
                 pub const K: u32 = 3;\n\
             }\n\
             impl std::fmt::Display for Foo<u8> {\n\
                 fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result { Ok(()) }\n\
             }\n",
        );
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert!(!items[0].trait_impl);
        assert_eq!(items[0].impl_target.as_deref(), Some("Foo"));
        assert_eq!(items[0].children.len(), 3);
        assert_eq!(items[0].children[0].vis, Visibility::Public);
        assert_eq!(items[0].children[0].name.as_deref(), Some("method"));
        assert_eq!(items[0].children[1].vis, Visibility::Private);
        assert!(items[1].trait_impl);
        assert_eq!(items[1].impl_target.as_deref(), Some("Foo"));
    }

    #[test]
    fn mods_nest_and_cfg_test_is_detected() {
        let items = parse(
            "#[cfg(test)]\nmod tests {\n  #[test]\n  fn t() {}\n}\n\
             #[cfg(not(test))]\npub mod real { pub fn f() {} }\n\
             pub mod plain;\n",
        );
        assert!(items[0].cfg_test);
        assert_eq!(items[0].children.len(), 1);
        assert!(items[0].children[0].cfg_test);
        assert!(!items[1].cfg_test);
        assert!(items[1].cfg_gated);
        assert_eq!(items[1].children[0].name.as_deref(), Some("f"));
        assert_eq!(items[2].kind, ItemKind::Mod);
        assert!(items[2].children.is_empty());
    }

    #[test]
    fn shebang_and_inner_attrs_are_skipped() {
        let items =
            parse("#!/usr/bin/env run-cargo-script\n#![allow(dead_code)]\npub fn main_like() {}\n");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name.as_deref(), Some("main_like"));
    }

    #[test]
    fn macro_rules_and_macro_calls() {
        let items = parse(
            "macro_rules! gen { () => {} }\n\
             proptest! { fn looks_like_an_item() {} }\n\
             pub fn after() {}\n",
        );
        assert_eq!(items[0].kind, ItemKind::MacroRules);
        assert_eq!(items[0].name.as_deref(), Some("gen"));
        assert_eq!(items[1].kind, ItemKind::MacroCall);
        assert_eq!(items[2].name.as_deref(), Some("after"));
    }

    #[test]
    fn where_clauses_and_fn_modifiers() {
        let items = parse(
            "pub const fn c() -> u32 { 0 }\n\
             pub unsafe extern \"C\" fn raw() {}\n\
             pub fn w<T>(t: T) -> impl Iterator<Item = T> where T: Clone + Fn() -> u32 { std::iter::once(t) }\n\
             pub struct Tail;\n",
        );
        let names: Vec<&str> = items.iter().filter_map(|i| i.name.as_deref()).collect();
        assert_eq!(names, ["c", "raw", "w", "Tail"]);
        assert!(items.iter().all(|i| i.kind != ItemKind::Unknown));
    }

    #[test]
    fn use_paths_are_normalized() {
        let items = parse("pub use crate::cache::{CacheStats, SolveCache};\n");
        assert_eq!(items[0].kind, ItemKind::Use);
        assert_eq!(
            items[0].use_path.as_deref(),
            Some("crate::cache::{CacheStats,SolveCache}")
        );
    }

    #[test]
    fn directive_line_vs_decl_line() {
        let items = parse("#[derive(Debug)]\n#[repr(C)]\npub struct Annotated(u32);\n");
        assert_eq!(items[0].line, 1);
        assert_eq!(items[0].decl_line, 3);
    }
}
