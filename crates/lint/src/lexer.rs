//! A minimal token-level Rust lexer.
//!
//! The analyzer runs in an offline build (no `syn`, no `proc-macro2`), so
//! this module hand-rolls exactly the lexical structure the rules need to
//! be false-positive-free: rule-pattern text inside string literals, raw
//! strings, char literals, and (nested) block comments must never produce
//! tokens. Everything else — precise expression grammar, macro expansion —
//! is deliberately out of scope; the rules work on token patterns.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `sort_by`, `r#match`, …).
    Ident,
    /// Integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// String, raw-string, byte-string, or char literal (content opaque).
    Literal,
    /// Lifetime (`'a`) — kept distinct so char-literal handling stays exact.
    Lifetime,
    /// A single punctuation byte (`.`, `:`, `(`, `!`, …).
    Punct,
}

/// One token: kind, byte span, and 1-based line/column of its start.
#[derive(Debug, Clone)]
pub struct Token {
    /// The lexical class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in bytes) on that line.
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// Whether this is punctuation equal to `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src).starts_with(c)
    }
}

/// A comment (line or block), kept separately from the token stream so
/// suppression directives can be parsed out of it.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Byte offset of the `//` or `/*`.
    pub start: usize,
    /// Byte offset one past the comment end.
    pub end: usize,
    /// 1-based line of the comment start.
    pub line: u32,
    /// 1-based column of the comment start.
    pub col: u32,
}

/// The output of [`lex`]: code tokens plus comments.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens and comments. Never fails: unterminated literals
/// and comments simply run to end of input (the compiler, not the linter,
/// owns syntax errors).
pub fn lex(src: &str) -> Lexed {
    let mut cur = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    while let Some(b) = cur.peek() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                while let Some(c) = cur.peek() {
                    if c == b'\n' {
                        break;
                    }
                    cur.bump();
                }
                out.comments.push(Comment {
                    start,
                    end: cur.pos,
                    line,
                    col,
                });
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            cur.bump();
                            cur.bump();
                            depth += 1;
                        }
                        (Some(b'*'), Some(b'/')) => {
                            cur.bump();
                            cur.bump();
                            depth -= 1;
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    start,
                    end: cur.pos,
                    line,
                    col,
                });
            }
            b'"' => {
                lex_string(&mut cur);
                push(&mut out, TokenKind::Literal, start, &cur, line, col);
            }
            b'\'' => {
                let kind = lex_char_or_lifetime(&mut cur);
                push(&mut out, kind, start, &cur, line, col);
            }
            b if b.is_ascii_digit() => {
                let kind = lex_number(&mut cur);
                push(&mut out, kind, start, &cur, line, col);
            }
            b if is_ident_start(b) => {
                while cur.peek().is_some_and(is_ident_continue) {
                    cur.bump();
                }
                let ident = &src[start..cur.pos];
                // String prefixes: r"", r#""#, b"", br"", br#""#.
                let raw_capable = matches!(ident, "r" | "br");
                let str_capable = raw_capable || ident == "b";
                match cur.peek() {
                    Some(b'"') if str_capable => {
                        lex_string(&mut cur);
                        push(&mut out, TokenKind::Literal, start, &cur, line, col);
                    }
                    Some(b'\'') if ident == "b" => {
                        cur.bump();
                        lex_char_or_lifetime(&mut cur);
                        push(&mut out, TokenKind::Literal, start, &cur, line, col);
                    }
                    Some(b'#') if raw_capable && followed_by_raw_string(&cur) => {
                        lex_raw_hashed_string(&mut cur);
                        push(&mut out, TokenKind::Literal, start, &cur, line, col);
                    }
                    Some(b'#') if ident == "r" && cur.peek_at(1).is_some_and(is_ident_start) => {
                        // Raw identifier r#foo: token text includes the
                        // prefix; rules match on the trailing name.
                        cur.bump();
                        while cur.peek().is_some_and(is_ident_continue) {
                            cur.bump();
                        }
                        push(&mut out, TokenKind::Ident, start, &cur, line, col);
                    }
                    _ => push(&mut out, TokenKind::Ident, start, &cur, line, col),
                }
            }
            _ => {
                cur.bump();
                push(&mut out, TokenKind::Punct, start, &cur, line, col);
            }
        }
    }
    out
}

fn push(out: &mut Lexed, kind: TokenKind, start: usize, cur: &Cursor<'_>, line: u32, col: u32) {
    out.tokens.push(Token {
        kind,
        start,
        end: cur.pos,
        line,
        col,
    });
}

/// Whether the cursor (sitting on `#` after an `r`/`br` prefix) opens a raw
/// string: one or more `#` then `"`.
fn followed_by_raw_string(cur: &Cursor<'_>) -> bool {
    let mut ahead = 0;
    while cur.peek_at(ahead) == Some(b'#') {
        ahead += 1;
    }
    ahead > 0 && cur.peek_at(ahead) == Some(b'"')
}

/// Consume a `#`-delimited raw string starting at the first `#`.
fn lex_raw_hashed_string(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        cur.bump();
        hashes += 1;
    }
    if cur.peek() != Some(b'"') {
        return;
    }
    cur.bump();
    // Scan for `"` followed by exactly `hashes` `#`s.
    while cur.peek().is_some() {
        if cur.peek() == Some(b'"') {
            let mut ahead = 1;
            while ahead <= hashes && cur.peek_at(ahead) == Some(b'#') {
                ahead += 1;
            }
            if ahead == hashes + 1 {
                for _ in 0..=hashes {
                    cur.bump();
                }
                return;
            }
        }
        cur.bump();
    }
}

/// Consume a `"`-delimited (possibly raw, when called after `r`) string;
/// the cursor sits on the opening quote. Raw strings without hashes have no
/// escapes, but treating `\"` as an escape inside them is harmless for
/// linting purposes only when it cannot eat the closing quote — so the
/// caller distinguishes: this function handles escaped strings, and raw
/// no-hash strings are close-on-first-quote, which `\` handling respects
/// because a raw string cannot contain `\"` before its terminator without
/// also terminating.
fn lex_string(cur: &mut Cursor<'_>) {
    cur.bump(); // opening quote
    while let Some(c) = cur.peek() {
        match c {
            b'\\' => {
                cur.bump();
                cur.bump();
            }
            b'"' => {
                cur.bump();
                return;
            }
            _ => {
                cur.bump();
            }
        }
    }
}

/// Disambiguate `'a'` (char), `'\n'` (escaped char), `'a` (lifetime).
/// The cursor sits on the opening `'`.
fn lex_char_or_lifetime(cur: &mut Cursor<'_>) -> TokenKind {
    cur.bump(); // '
    match cur.peek() {
        Some(b'\\') => {
            // Escaped char literal: consume escape then to closing quote.
            cur.bump();
            cur.bump();
            while let Some(c) = cur.peek() {
                cur.bump();
                if c == b'\'' {
                    break;
                }
            }
            TokenKind::Literal
        }
        Some(c) if is_ident_start(c) => {
            while cur.peek().is_some_and(is_ident_continue) {
                cur.bump();
            }
            if cur.peek() == Some(b'\'') {
                cur.bump();
                TokenKind::Literal
            } else {
                TokenKind::Lifetime
            }
        }
        Some(_) => {
            // Single-char literal like '(' or '9'.
            cur.bump();
            if cur.peek() == Some(b'\'') {
                cur.bump();
            }
            TokenKind::Literal
        }
        None => TokenKind::Lifetime,
    }
}

/// Consume a numeric literal; the cursor sits on its first digit.
fn lex_number(cur: &mut Cursor<'_>) -> TokenKind {
    let mut is_float = false;
    let radix_prefixed = cur.peek() == Some(b'0')
        && matches!(
            cur.peek_at(1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        );
    if radix_prefixed {
        cur.bump();
        cur.bump();
        while cur
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            cur.bump();
        }
        return TokenKind::Int;
    }
    while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
        cur.bump();
    }
    // Fractional part — only when followed by a digit, so `1..n` ranges and
    // `1.max(2)` method calls stay integer + punct.
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
        is_float = true;
        cur.bump();
        while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e') | Some(b'E')) {
        let sign = matches!(cur.peek_at(1), Some(b'+') | Some(b'-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek_at(digit_at).is_some_and(|c| c.is_ascii_digit()) {
            is_float = true;
            cur.bump();
            if sign {
                cur.bump();
            }
            while cur.peek().is_some_and(|c| c.is_ascii_digit() || c == b'_') {
                cur.bump();
            }
        }
    }
    // Type suffix (`u32`, `f64`, …).
    if cur.peek().is_some_and(is_ident_start) {
        if matches!(cur.peek(), Some(b'f') | Some(b'F')) {
            is_float = true;
        }
        while cur.peek().is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
    if is_float {
        TokenKind::Float
    } else {
        TokenKind::Int
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .tokens
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let toks = texts("let x = a.unwrap();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn strings_hide_their_content() {
        let src = r#"let s = "call .unwrap() and partial_cmp here";"#;
        let toks = texts(src);
        assert!(toks
            .iter()
            .all(|(_, t)| t != "unwrap" && t != "partial_cmp"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Literal));
    }

    #[test]
    fn raw_strings_hide_their_content() {
        let src = "let s = r#\"nested \"quote\" with .unwrap()\"#; let t = done;";
        let toks = texts(src);
        assert!(toks.iter().all(|(_, t)| t != "unwrap"));
        assert!(toks.iter().any(|(_, t)| t == "done"));
    }

    #[test]
    fn nested_block_comments_are_skipped() {
        let src = "/* outer /* inner .unwrap() */ still comment */ let x = 1;";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert!(lexed
            .tokens
            .iter()
            .all(|t| t.text(src) != "unwrap" && t.text(src) != "inner"));
        assert!(lexed.tokens.iter().any(|t| t.text(src) == "let"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let src = "fn f<'a>(c: char) { let q = '\\''; let p = '('; let x: &'a u8 = &0; }";
        let toks = texts(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "'('"));
    }

    #[test]
    fn numbers_classify_float_vs_int() {
        let toks = texts("1 1.5 2e3 0xFF 1_000u64 3f64 1..4 1.max(2)");
        let kinds: Vec<TokenKind> = toks.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds[0], TokenKind::Int);
        assert_eq!(kinds[1], TokenKind::Float);
        assert_eq!(kinds[2], TokenKind::Float);
        assert_eq!(kinds[3], TokenKind::Int);
        assert_eq!(kinds[4], TokenKind::Int);
        assert_eq!(kinds[5], TokenKind::Float);
        // 1..4 lexes as Int Punct Punct Int.
        assert_eq!(
            &kinds[6..9],
            &[TokenKind::Int, TokenKind::Punct, TokenKind::Punct]
        );
        // 1.max(2): the 1 stays an integer.
        assert_eq!(kinds[10], TokenKind::Int);
    }

    #[test]
    fn line_and_col_are_tracked() {
        let src = "a\n  b";
        let toks = lex(src).tokens;
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn raw_ident_is_one_token() {
        let toks = texts("let r#match = 1;");
        assert_eq!(toks[1], (TokenKind::Ident, "r#match".into()));
    }
}
