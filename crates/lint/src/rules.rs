//! The rule registry: the determinism and hygiene invariants the
//! workspace actually relies on, as token-pattern checks.
//!
//! Every rule documents *which contract it guards*. Rules are scoped by
//! [`FileClass`] and crate lists from the [`Config`](crate::Config): the
//! determinism rules bind library code of the deterministic crates;
//! harness and tooling code is exempt where the hazard doesn't apply.

use crate::lexer::TokenKind;
use crate::{FileClass, FileCtx, Finding};

/// One registered rule.
pub struct Rule {
    /// Stable rule name (used in diagnostics and allow directives).
    pub name: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
    /// The token-pattern check.
    pub check: fn(&FileCtx<'_>, &mut Vec<Finding>),
}

/// The full registry, in diagnostic-priority order.
pub const ALL: &[Rule] = &[
    Rule {
        name: "map-iteration",
        summary: "no iteration-order dependence on HashMap/HashSet in deterministic library code",
        check: map_iteration,
    },
    Rule {
        name: "float-sort",
        summary: "float comparators must use total_cmp, never partial_cmp",
        check: float_sort,
    },
    Rule {
        name: "ambient-entropy",
        summary: "no wall clocks, env vars, thread ids, or RandomState in deterministic paths",
        check: ambient_entropy,
    },
    Rule {
        name: "panic-unwrap",
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in library code",
        check: panic_unwrap,
    },
    Rule {
        name: "unsafe-code",
        summary: "no `unsafe` outside the explicit allowlist",
        check: unsafe_code,
    },
    Rule {
        name: "as-float-cast",
        summary: "no `as` float<->int casts in solver/engine hot paths",
        check: as_float_cast,
    },
    Rule {
        name: "ignore-without-reason",
        summary: "#[ignore] needs a reason string",
        check: ignore_without_reason,
    },
    Rule {
        name: "print-debug",
        summary: "no dbg!/println! in library code",
        check: print_debug,
    },
];

fn emit(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>, rule: &'static str, i: usize, msg: String) {
    let t = &ctx.tokens[i];
    findings.push(Finding {
        rule,
        path: ctx.info.rel.clone(),
        line: t.line,
        col: t.col,
        message: msg,
    });
}

/// Methods whose result order reflects a map's internal (seed-dependent)
/// bucket order. Construction, `get`, `contains_key`, `remove`, `insert`,
/// `len`, `clear` are order-independent and allowed.
const ORDER_DEPENDENT_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
    "into_iter",
    "into_keys",
    "into_values",
];

/// **map-iteration** — `HashMap`/`HashSet` iteration order varies across
/// `RandomState` seeds (and std versions), so any path that folds, emits,
/// or evicts in iteration order breaks bitwise reproducibility. The
/// check tracks identifiers bound or typed as unordered maps in the file
/// (`let m = HashMap::new()`, `field: HashSet<…>`) and flags
/// order-dependent method calls and `for … in` loops over them.
fn map_iteration(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.info.class != FileClass::Library || !ctx.crate_in(&ctx.cfg.map_iter_crates) {
        return;
    }
    // Pass 1: collect names bound or typed as HashMap/HashSet.
    let mut map_names: Vec<&str> = Vec::new();
    for i in 0..ctx.tokens.len() {
        if !(ctx.is_ident(i, "HashMap") || ctx.is_ident(i, "HashSet")) {
            continue;
        }
        // Walk back over a `std::collections::` style path prefix.
        let mut j = i;
        while j >= 2 && ctx.is_path_sep(j - 2) {
            j -= 2;
            if j >= 1 && ctx.tokens[j - 1].kind == TokenKind::Ident {
                j -= 1;
            }
        }
        if j == 0 {
            continue;
        }
        let name = if ctx.is_punct(j - 1, ':') && !(j >= 2 && ctx.is_punct(j - 2, ':')) {
            // Type ascription `name: HashMap<…>` (field or let).
            (j >= 2 && ctx.tokens[j - 2].kind == TokenKind::Ident).then(|| ctx.text(j - 2))
        } else if ctx.is_punct(j - 1, '=') {
            // Binding `let name = HashMap::new()` / `name = HashMap::…`.
            (j >= 2 && ctx.tokens[j - 2].kind == TokenKind::Ident).then(|| ctx.text(j - 2))
        } else {
            None
        };
        if let Some(n) = name {
            if n != "mut" && !map_names.contains(&n) {
                map_names.push(n);
            }
        }
    }
    if map_names.is_empty() {
        return;
    }
    // Pass 2: flag order-dependent uses of those names.
    for i in 0..ctx.tokens.len() {
        if !ctx.is_library_code(i) {
            continue;
        }
        // `name.method(` with an order-dependent method.
        if ctx.is_punct(i, '.')
            && i >= 1
            && ctx.tokens[i - 1].kind == TokenKind::Ident
            && map_names.contains(&ctx.text(i - 1))
        {
            if let Some(m) = ORDER_DEPENDENT_METHODS
                .iter()
                .find(|m| ctx.is_ident(i + 1, m))
            {
                if ctx.is_punct(i + 2, '(') {
                    emit(
                        ctx,
                        findings,
                        "map-iteration",
                        i + 1,
                        format!(
                            "`.{m}()` on unordered map/set `{}` — iteration order is \
                             nondeterministic; walk an explicit order (sorted keys, \
                             insertion queue) instead",
                            ctx.text(i - 1)
                        ),
                    );
                }
            }
        }
        // `for x in [&[mut]] …name {`.
        if ctx.is_ident(i, "for") {
            // Find the `in` within a short window, not crossing a brace.
            let mut j = i + 1;
            let mut found_in = None;
            while j < ctx.tokens.len() && j < i + 12 {
                if ctx.is_punct(j, '{') || ctx.is_punct(j, ';') {
                    break;
                }
                if ctx.is_ident(j, "in") {
                    found_in = Some(j);
                    break;
                }
                j += 1;
            }
            let Some(in_idx) = found_in else { continue };
            // The iterated expression: last identifier of the chain before
            // the loop body's `{` (stopping at calls — those are handled by
            // the method check above).
            let mut k = in_idx + 1;
            let mut last_ident: Option<usize> = None;
            while k < ctx.tokens.len() {
                if ctx.is_punct(k, '{') {
                    break;
                }
                if ctx.is_punct(k, '(') || ctx.is_punct(k, '[') {
                    last_ident = None;
                    break;
                }
                if ctx.tokens[k].kind == TokenKind::Ident
                    && !ctx.is_ident(k, "mut")
                    && !ctx.is_ident(k, "ref")
                {
                    last_ident = Some(k);
                }
                k += 1;
            }
            if let Some(l) = last_ident {
                if map_names.contains(&ctx.text(l)) {
                    emit(
                        ctx,
                        findings,
                        "map-iteration",
                        l,
                        format!(
                            "`for … in` over unordered map/set `{}` — iteration order is \
                             nondeterministic; walk an explicit order instead",
                            ctx.text(l)
                        ),
                    );
                }
            }
        }
    }
}

const COMPARATOR_SINKS: &[&str] = &[
    "sort_by",
    "sort_unstable_by",
    "max_by",
    "min_by",
    "binary_search_by",
];

/// **float-sort** — a `partial_cmp`-based comparator either panics on NaN
/// (`.unwrap()`) or silently reports `Equal`/`Less` for incomparable
/// pairs, making the sort order input-dependent in exactly the cases that
/// matter. `f64::total_cmp` is total, NaN-safe, and bit-stable. Applies
/// everywhere (tests sort expectation vectors too — a panic or unstable
/// order there flakes the differentials).
fn float_sort(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        let Some(sink) = COMPARATOR_SINKS.iter().find(|m| ctx.is_ident(i, m)) else {
            continue;
        };
        if !ctx.is_punct(i + 1, '(') {
            continue;
        }
        // Scan the argument list for a `partial_cmp` identifier.
        let mut depth = 0i32;
        let mut j = i + 1;
        while j < ctx.tokens.len() {
            if ctx.is_punct(j, '(') {
                depth += 1;
            } else if ctx.is_punct(j, ')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if ctx.is_ident(j, "partial_cmp") {
                emit(
                    ctx,
                    findings,
                    "float-sort",
                    j,
                    format!(
                        "`{sink}` comparator uses `partial_cmp` — panics or degrades on NaN; \
                         use `f64::total_cmp`/`f32::total_cmp`"
                    ),
                );
                break;
            }
            j += 1;
        }
    }
}

/// **ambient-entropy** — wall clocks, environment variables, thread
/// identity, and `RandomState` smuggle per-run entropy into results.
/// Deterministic library code takes seeds and configuration as explicit
/// inputs; only harness/tooling code may read the ambient world.
///
/// The one sanctioned allow-pattern: **timeout clocks for scheduling**.
/// Fault-tolerant runtimes (the sweep coordinator) may read the
/// monotonic clock to decide *when* to retry, reassign, or give up
/// waiting — provided the clock can never influence *what* is produced.
/// The allow's reason must state that boundary; the differential that
/// enforces it is the coordinator's fault-injection suite, which pins
/// the merged bytes to the fault-free serial sweep under every timeout
/// schedule. A clock that selects, orders, truncates, or transforms
/// result data is a real finding — never allow it.
fn ambient_entropy(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.info.class != FileClass::Library || !ctx.crate_in(&ctx.cfg.deterministic_crates) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if !ctx.is_library_code(i) {
            continue;
        }
        for name in ["Instant", "SystemTime", "RandomState"] {
            if ctx.is_ident(i, name) {
                emit(
                    ctx,
                    findings,
                    "ambient-entropy",
                    i,
                    format!(
                        "`{name}` in deterministic library code — wall clocks and seeded-by-\
                         default hashers break bitwise reproducibility; take explicit \
                         seeds/times as inputs"
                    ),
                );
            }
        }
        // `env::var…` / `env::args…` and `thread::current`.
        if ctx.is_ident(i, "env") && ctx.is_path_sep(i + 1) {
            for f in ["var", "vars", "var_os", "vars_os", "args", "args_os"] {
                if ctx.is_ident(i + 3, f) {
                    emit(
                        ctx,
                        findings,
                        "ambient-entropy",
                        i,
                        format!(
                            "`env::{f}` in deterministic library code — ambient configuration \
                             must arrive through explicit parameters"
                        ),
                    );
                }
            }
        }
        if ctx.is_ident(i, "thread") && ctx.is_path_sep(i + 1) && ctx.is_ident(i + 3, "current") {
            emit(
                ctx,
                findings,
                "ambient-entropy",
                i,
                "`thread::current` in deterministic library code — thread identity varies \
                 per run; shard by explicit worker index"
                    .to_string(),
            );
        }
    }
}

/// **panic-unwrap** — library code panicking tears down a whole sweep (and
/// a worker panic aborts a parallel run mid-merge). Library paths return
/// typed errors; `.unwrap()`/`.expect()` are confined to tests, examples,
/// and explicitly-allowed invariant sites. `assert!`/`debug_assert!`
/// stay allowed: they *document* invariants rather than papering over
/// fallible APIs.
fn panic_unwrap(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.info.class != FileClass::Library || !ctx.crate_in(&ctx.cfg.deterministic_crates) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if !ctx.is_library_code(i) {
            continue;
        }
        if ctx.is_punct(i, '.')
            && (ctx.is_ident(i + 1, "unwrap") || ctx.is_ident(i + 1, "expect"))
            && ctx.is_punct(i + 2, '(')
        {
            emit(
                ctx,
                findings,
                "panic-unwrap",
                i + 1,
                format!(
                    "`.{}()` in library code — return a typed error, rewrite infallibly, or \
                     add `// mlf-lint: allow(panic-unwrap, reason = …)` naming the invariant",
                    ctx.text(i + 1)
                ),
            );
        }
        for mac in ["panic", "todo", "unimplemented"] {
            if ctx.is_ident(i, mac) && ctx.is_punct(i + 1, '!') {
                emit(
                    ctx,
                    findings,
                    "panic-unwrap",
                    i,
                    format!("`{mac}!` in library code — return a typed error instead"),
                );
            }
        }
    }
}

/// **unsafe-code** — the workspace is `forbid(unsafe_code)` by policy;
/// the single exception (the counting allocator in the alloc bench) is
/// allowlisted by path in the [`Config`](crate::Config).
fn unsafe_code(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx
        .cfg
        .unsafe_allow_files
        .iter()
        .any(|f| f == &ctx.info.rel)
    {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if ctx.is_ident(i, "unsafe") {
            emit(
                ctx,
                findings,
                "unsafe-code",
                i,
                "`unsafe` outside the allowlist — this workspace proves its performance \
                 with safe code; extend Config::unsafe_allow_files only with review"
                    .to_string(),
            );
        }
    }
}

const INT_TYPES: &[&str] = &[
    "usize", "isize", "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128",
];

/// **as-float-cast** — in solver/engine hot paths, `as` conversions
/// between ints and floats silently lose precision (`usize as f64` is
/// inexact past 2^53; float→int truncates and saturates). Hot-path
/// arithmetic feeds bitwise-compared results, so conversions must be
/// provably lossless (`f64::from`, `try_from`) or carry an allow naming
/// the bound that makes them exact.
fn as_float_cast(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if !ctx.cfg.hot_path_files.iter().any(|f| f == &ctx.info.rel) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if !ctx.is_library_code(i) || !ctx.is_ident(i, "as") {
            continue;
        }
        if ctx.is_ident(i + 1, "f64") || ctx.is_ident(i + 1, "f32") {
            emit(
                ctx,
                findings,
                "as-float-cast",
                i,
                format!(
                    "`as {}` in a hot path — inexact for wide integers; use `f64::from` \
                     (lossless widths) or an allow naming the range bound",
                    ctx.text(i + 1)
                ),
            );
        }
        if i >= 1
            && ctx.tokens[i - 1].kind == TokenKind::Float
            && INT_TYPES.iter().any(|t| ctx.is_ident(i + 1, t))
        {
            emit(
                ctx,
                findings,
                "as-float-cast",
                i,
                format!(
                    "float literal cast `as {}` truncates — compute in the integer domain \
                     or use `try_from`",
                    ctx.text(i + 1)
                ),
            );
        }
    }
}

/// **ignore-without-reason** — `#[ignore]` with no reason string rots: six
/// months later nobody knows whether the test is slow, flaky, or broken.
/// `#[ignore = "why"]` keeps the cost visible.
fn ignore_without_reason(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    for i in 0..ctx.tokens.len() {
        if ctx.is_punct(i, '#') && ctx.is_punct(i + 1, '[') && ctx.is_ident(i + 2, "ignore") {
            let has_reason = ctx.is_punct(i + 3, '=')
                && ctx
                    .tokens
                    .get(i + 4)
                    .is_some_and(|t| t.kind == TokenKind::Literal);
            if !has_reason {
                emit(
                    ctx,
                    findings,
                    "ignore-without-reason",
                    i + 2,
                    "`#[ignore]` without a reason — write `#[ignore = \"why\"]`".to_string(),
                );
            }
        }
    }
}

/// **print-debug** — library code writing to stdout corrupts `--json`
/// consumers and benches; `dbg!` is leftover scaffolding by definition.
/// CLI binaries, examples, and tests print freely.
fn print_debug(ctx: &FileCtx<'_>, findings: &mut Vec<Finding>) {
    if ctx.info.class != FileClass::Library || !ctx.crate_in(&ctx.cfg.deterministic_crates) {
        return;
    }
    for i in 0..ctx.tokens.len() {
        if !ctx.is_library_code(i) {
            continue;
        }
        for mac in ["println", "print", "eprintln", "eprint", "dbg"] {
            if ctx.is_ident(i, mac) && ctx.is_punct(i + 1, '!') {
                emit(
                    ctx,
                    findings,
                    "print-debug",
                    i,
                    format!(
                        "`{mac}!` in library code — return data and let the caller render it \
                         (CLI bins and examples are exempt)"
                    ),
                );
            }
        }
    }
}
