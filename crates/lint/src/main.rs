//! `mlf-lint` CLI: lint the workspace (or given paths) and exit nonzero
//! on findings.
//!
//! ```text
//! cargo run -p mlf-lint -- [--json] [paths…]
//! cargo run -p mlf-lint -- --bless
//! ```
//!
//! With no paths the whole workspace is linted: token rules plus the
//! item-level structural pass (frozen-reference integrity, crate-layering
//! DAG, API-surface snapshots, unused-pub, differential coverage). With
//! explicit paths only the token rules run — the structural analyses need
//! the whole workspace. `--bless` regenerates the committed snapshots
//! under `crates/lint/snapshots/` deterministically.
//!
//! Exit codes follow the `mlf-bench` convention: 0 clean, 1 findings,
//! 2 bad invocation.

use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
mlf-lint: workspace determinism-and-hygiene static analyzer

USAGE:
    cargo run -p mlf-lint -- [OPTIONS] [PATHS…]

OPTIONS:
    --json     emit the report as JSON on stdout
    --bless    regenerate the committed snapshots (frozen-reference
               fingerprints, per-crate API surfaces) from the current
               workspace state, then exit
    --list     list the registered rules and exit
    --help     show this help

With no PATHS the whole workspace is linted, including the structural
pass against the committed snapshots; with PATHS, token rules only.
Exit code 0 = clean, 1 = findings, 2 = bad invocation.";

fn main() -> ExitCode {
    let mut json = false;
    let mut bless = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--bless" => bless = true,
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for rule in mlf_lint::rules::ALL {
                    println!("{:<24} {}", rule.name, rule.summary);
                }
                for (name, summary) in mlf_lint::structure::STRUCTURAL {
                    println!("{name:<24} {summary}");
                }
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("mlf-lint: unknown flag `{flag}`\n\n{HELP}");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    // The workspace root: two levels above this crate's manifest. Anchors
    // the default scan, the snapshots, and the relative paths findings
    // report.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."));
    for p in &paths {
        if !p.exists() {
            eprintln!("mlf-lint: no such path `{}`", p.display());
            return ExitCode::from(2);
        }
    }

    let cfg = mlf_lint::Config::workspace();

    if bless {
        if !paths.is_empty() {
            eprintln!("mlf-lint: --bless takes no paths (snapshots cover the whole workspace)");
            return ExitCode::from(2);
        }
        let loaded = match mlf_lint::load_workspace(&root, &cfg) {
            Ok(l) => l,
            Err(e) => {
                eprintln!("mlf-lint: io error: {e}");
                return ExitCode::from(2);
            }
        };
        match mlf_lint::structure::bless(&root, &loaded, &cfg) {
            Ok(written) => {
                for w in &written {
                    println!("blessed {w}");
                }
                println!("mlf-lint: {} snapshot(s) regenerated", written.len());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("mlf-lint: bless failed: {e}");
                ExitCode::from(2)
            }
        }
    } else {
        let report = if paths.is_empty() {
            mlf_lint::lint_workspace(&root, &cfg)
        } else {
            mlf_lint::lint_paths(&root, &paths, &cfg)
        };
        let report = match report {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mlf-lint: io error: {e}");
                return ExitCode::from(2);
            }
        };
        if json {
            println!("{}", mlf_lint::to_json(&report));
        } else {
            print!("{}", mlf_lint::to_human(&report));
        }
        if report.findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        }
    }
}
