//! `mlf-lint` CLI: lint the workspace (or given paths) and exit nonzero
//! on findings.
//!
//! ```text
//! cargo run -p mlf-lint -- [--json] [paths…]
//! ```
//!
//! Exit codes follow the `mlf-bench` convention: 0 clean, 1 findings,
//! 2 bad invocation.

use std::path::PathBuf;
use std::process::ExitCode;

const HELP: &str = "\
mlf-lint: workspace determinism-and-hygiene static analyzer

USAGE:
    cargo run -p mlf-lint -- [OPTIONS] [PATHS…]

OPTIONS:
    --json     emit the report as JSON on stdout
    --list     list the registered rules and exit
    --help     show this help

PATHS default to the workspace root. Exit code 0 = clean, 1 = findings,
2 = bad invocation.";

fn main() -> ExitCode {
    let mut json = false;
    let mut paths: Vec<PathBuf> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{HELP}");
                return ExitCode::SUCCESS;
            }
            "--list" => {
                for rule in mlf_lint::rules::ALL {
                    println!("{:<24} {}", rule.name, rule.summary);
                }
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("mlf-lint: unknown flag `{flag}`\n\n{HELP}");
                return ExitCode::from(2);
            }
            p => paths.push(PathBuf::from(p)),
        }
    }

    // The workspace root: two levels above this crate's manifest. Anchors
    // both the default scan and the relative paths findings report.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from("."));
    if paths.is_empty() {
        paths.push(root.clone());
    }
    for p in &paths {
        if !p.exists() {
            eprintln!("mlf-lint: no such path `{}`", p.display());
            return ExitCode::from(2);
        }
    }

    let cfg = mlf_lint::Config::workspace();
    let report = match mlf_lint::lint_paths(&root, &paths, &cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mlf-lint: io error: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        println!("{}", mlf_lint::to_json(&report));
    } else {
        print!("{}", mlf_lint::to_human(&report));
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
