//! Property tests of `MembershipTable`'s latency semantics under the level
//! index: random join/leave request streams with random graft/prune
//! latencies, driven the way the engine drives time (monotone
//! `advance_to`, then requests at the current slot).
//!
//! Two families of claims:
//!
//! * **Ordering** — stale queued changes never overwrite newer ones: after
//!   draining every scheduled event, each receiver's effective level equals
//!   its most recent request, regardless of how in-flight grafts/prunes
//!   interleaved; and a newer instant change is never clobbered by an older
//!   delayed one landing afterwards.
//! * **Index invariants** — after *every* operation, the per-level bucket
//!   counts equal a recount from the `effective` levels, the cached
//!   `max_effective_level` equals the true maximum, and the per-layer
//!   subscriber bitsets equal a recount from `min(requested, effective)`
//!   (`MembershipTable::check_index_invariants`).

use mlf_sim::{MembershipTable, SimRng};
use proptest::prelude::*;

/// Replay a deterministic random op stream on a table, checking the index
/// invariants after every step, and return the table plus the last
/// requested level per receiver.
fn drive(
    receivers: usize,
    layers: usize,
    join_latency: u64,
    leave_latency: u64,
    ops: usize,
    seed: u64,
) -> MembershipTable {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut table =
        MembershipTable::new(receivers, layers, 1).with_latencies(join_latency, leave_latency);
    table.check_index_invariants().expect("fresh table");
    let mut now = 0u64;
    for _ in 0..ops {
        now += rng.below(40);
        table.advance_to(now);
        table
            .check_index_invariants()
            .unwrap_or_else(|e| panic!("after advance_to({now}): {e}"));
        let r = rng.below(receivers as u64) as usize;
        let level = rng.below(layers as u64 + 1) as usize;
        table.request_level(now, r, level);
        table
            .check_index_invariants()
            .unwrap_or_else(|e| panic!("after request_level({now}, {r}, {level}): {e}"));
    }
    table
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Index invariants hold across arbitrary request/advance interleavings
    /// (all four latency regimes), and once every pending change has
    /// drained the effective level equals the newest requested level — no
    /// stale queued change survives to overwrite it.
    #[test]
    fn invariants_hold_and_effective_converges_to_requested(
        receivers in 1usize..90,
        layers in 1usize..9,
        join_latency in 0u64..30,
        leave_latency in 0u64..30,
        ops in 1usize..120,
        seed in any::<u64>(),
    ) {
        let mut table = drive(receivers, layers, join_latency, leave_latency, ops, seed);
        // Drain everything still in flight: the newest request per
        // receiver must win.
        let far = u64::MAX / 2;
        table.advance_to(far);
        table.check_index_invariants().unwrap_or_else(|e| panic!("after final drain: {e}"));
        for r in 0..receivers {
            prop_assert_eq!(
                table.effective_level(r),
                table.requested_level(r),
                "receiver {} still off its newest request after the drain",
                r
            );
        }
        prop_assert_eq!(
            table.max_effective_level(),
            (0..receivers).map(|r| table.effective_level(r)).max().unwrap_or(0)
        );
    }

    /// The targeted stale-overwrite shape: a delayed change scheduled
    /// first, then a newer (instant or delayed) change; whatever lands
    /// later in wall-clock order, the *newer request* decides the final
    /// effective level.
    #[test]
    fn stale_scheduled_change_never_overwrites_a_newer_one(
        first in 1usize..9,
        second in 1usize..9,
        join_latency in 1u64..50,
        leave_latency in 0u64..50,
        gap in 0u64..60,
        start in 1usize..9,
    ) {
        let mut t = MembershipTable::new(1, 8, start).with_latencies(join_latency, leave_latency);
        t.request_level(0, 0, first);
        t.advance_to(gap);
        t.request_level(gap, 0, second);
        // Past every possible landing time of either change.
        t.advance_to(gap + join_latency + leave_latency + 1);
        prop_assert_eq!(t.requested_level(0), second);
        prop_assert_eq!(
            t.effective_level(0),
            second,
            "an in-flight change from the older request (to {}) overwrote the newer one",
            first
        );
        t.check_index_invariants().unwrap();
    }

    /// Buckets equal a recount after a burst of instant changes alone
    /// (the zero-latency fast path skips the event queue entirely).
    #[test]
    fn instant_changes_keep_buckets_exact(
        receivers in 1usize..130,
        layers in 1usize..9,
        ops in 1usize..80,
        seed in any::<u64>(),
    ) {
        let table = drive(receivers, layers, 0, 0, ops, seed);
        for r in 0..receivers {
            prop_assert_eq!(table.effective_level(r), table.requested_level(r));
        }
        let index = table.index();
        let total: usize = (0..=layers).map(|v| index.effective_count(v)).sum();
        prop_assert_eq!(total, receivers, "buckets must partition the receivers");
    }
}
