//! Property tests of the simulator substrate: the interleaver's rate
//! guarantees, membership-latency semantics and engine accounting.

use mlf_sim::engine::LayerInterleaver;
use mlf_sim::{
    run_star, Action, LossProcess, MembershipTable, NoMarkers, PacketEvent, ReceiverController,
    SimRng, StarConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The smooth WRR interleaver emits each layer in exact proportion to
    /// its (integer) rate over whole frames.
    #[test]
    fn interleaver_exact_over_frames(
        rates in proptest::collection::vec(1u32..9, 1..7),
        frames in 1usize..20,
    ) {
        let total: u32 = rates.iter().sum();
        let mut il = LayerInterleaver::new(
            &rates.iter().map(|&r| r as f64).collect::<Vec<_>>(),
        );
        let mut counts = vec![0u32; rates.len()];
        for _ in 0..(total as usize * frames) {
            counts[il.next_layer() - 1] += 1;
        }
        for (c, &r) in counts.iter().zip(&rates) {
            prop_assert_eq!(*c, r * frames as u32);
        }
    }

    /// Membership latency semantics: requested level changes instantly,
    /// effective level changes exactly at request-time + latency.
    #[test]
    fn membership_latency_boundaries(
        start in 1usize..8,
        target in 1usize..8,
        latency in 1u64..100,
        t0 in 0u64..1000,
    ) {
        let mut table = MembershipTable::new(1, 8, start).with_latencies(latency, latency);
        table.request_level(t0, 0, target);
        prop_assert_eq!(table.requested_level(0), target);
        if start != target {
            table.advance_to(t0 + latency - 1);
            prop_assert_eq!(table.effective_level(0), start);
            table.advance_to(t0 + latency);
            prop_assert_eq!(table.effective_level(0), target);
        } else {
            prop_assert_eq!(table.effective_level(0), start);
        }
    }

    /// Engine conservation: offered = delivered + congestion events when
    /// latencies are zero (every requested packet either arrives or counts
    /// as a loss), and the shared link never carries more than the slots.
    #[test]
    fn engine_conserves_packets(
        level in 1usize..9,
        p_shared in 0.0f64..0.2,
        p_ind in 0.0f64..0.2,
        seed in any::<u64>(),
    ) {
        struct Pin(usize);
        impl ReceiverController for Pin {
            fn on_packet(&mut self, ev: &PacketEvent) -> Action {
                use std::cmp::Ordering::*;
                match ev.level.cmp(&self.0) {
                    Less => Action::JoinUp,
                    Equal => Action::Stay,
                    Greater => Action::LeaveDown,
                }
            }
        }
        let cfg = StarConfig {
            layer_rates: vec![1.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0],
            shared_loss: LossProcess::bernoulli(p_shared),
            fanout_loss: vec![LossProcess::bernoulli(p_ind); 3],
            join_latency: 0,
            leave_latency: 0,
        };
        let mut ctls = vec![Pin(level), Pin(level.max(2) - 1), Pin(1)];
        let slots = 4000;
        let report = run_star(&cfg, &mut ctls, &mut NoMarkers, slots, seed);
        prop_assert!(report.shared_carried <= slots);
        for r in 0..3 {
            prop_assert_eq!(
                report.offered[r],
                report.delivered[r] + report.congestion_events[r]
            );
        }
        // The busiest receiver's offered packets bound the carried count
        // from below.
        prop_assert!(report.shared_carried >= *report.offered.iter().max().unwrap());
    }

    /// RNG substreams: distinct stream ids give distinct draw sequences and
    /// the parent is never perturbed by splitting.
    #[test]
    fn rng_substreams_are_stable(seed in any::<u64>(), a in 0u64..1000, b in 0u64..1000) {
        prop_assume!(a != b);
        let base = SimRng::seed_from_u64(seed);
        let mut s_a = base.split(a);
        let mut s_b = base.split(b);
        let mut equal = 0;
        for _ in 0..32 {
            if s_a.next_u64() == s_b.next_u64() {
                equal += 1;
            }
        }
        prop_assert!(equal <= 1, "streams {a} and {b} collide");
        prop_assert_eq!(base.split(a), {
            let _ = base.clone();
            base.split(a)
        });
    }
}
