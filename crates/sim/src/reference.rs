//! Frozen pre-index reference star engine, kept verbatim for differential
//! testing.
//!
//! The production [`crate::engine::run_star_into`] runs on the
//! level-bucketed [`crate::index::LevelIndex`]: the delivery loop visits
//! only receivers effectively subscribed to the slot's layer, the shared
//! link's `max_effective_level` is an O(1) cached bucket maximum, and the
//! per-receiver `offered`/`level_slot_sum` accounting is settled lazily at
//! join/leave events instead of every slot. This module preserves the
//! *original* scan-everything implementation — the two full `0..n` receiver
//! loops per slot plus the O(n) membership scans they replaced — so
//! property tests can assert the indexed engine is **bitwise identical** to
//! it on arbitrary configurations (`tests/star_engine_differential.rs` at
//! the workspace root, plus the in-crate unit tests).
//!
//! The copy includes the pre-index [`MembershipTable`] (as the private
//! `RefMembershipTable`), because the production table now maintains the
//! level index incrementally; the reference must not depend on any of that
//! machinery. Nothing here is meant for production use: every call
//! allocates fresh buffers and no attempt is made to keep the hot loop
//! tight. Treat the module as executable documentation of the engine
//! semantics — in particular the **RNG draw order** — that the indexed
//! engine must reproduce bit for bit.
//!
//! [`MembershipTable`]: crate::multicast::MembershipTable

use crate::engine::{
    Action, LayerInterleaver, MarkerSource, PacketEvent, ReceiverController, StarConfig, StarReport,
};
use crate::events::{EventQueue, Tick};
use crate::loss::LossProcess;
use crate::rng::SimRng;

/// Pending membership-change event (the pre-index `Change`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Change {
    receiver: usize,
    level: usize,
    seq: u64,
}

/// The pre-index membership table: plain `requested`/`effective` vectors,
/// with `max_effective_level` an O(n) scan.
#[derive(Debug, Clone)]
struct RefMembershipTable {
    requested: Vec<usize>,
    effective: Vec<usize>,
    latest_seq: Vec<u64>,
    queue: EventQueue<Change>,
    join_latency: Tick,
    leave_latency: Tick,
    layer_count: usize,
    next_seq: u64,
}

impl RefMembershipTable {
    fn new(receivers: usize, layer_count: usize, initial: usize) -> Self {
        assert!(initial <= layer_count);
        RefMembershipTable {
            requested: vec![initial; receivers],
            effective: vec![initial; receivers],
            latest_seq: vec![0; receivers],
            queue: EventQueue::new(),
            join_latency: 0,
            leave_latency: 0,
            layer_count,
            next_seq: 0,
        }
    }

    fn with_latencies(mut self, join: Tick, leave: Tick) -> Self {
        self.join_latency = join;
        self.leave_latency = leave;
        self
    }

    fn requested_level(&self, r: usize) -> usize {
        self.requested[r]
    }

    fn request_level(&mut self, now: Tick, r: usize, level: usize) {
        assert!(level <= self.layer_count, "level beyond layer count");
        if level == self.requested[r] {
            return;
        }
        let raising = level > self.requested[r];
        self.requested[r] = level;
        let latency = if raising {
            self.join_latency
        } else {
            self.leave_latency
        };
        self.next_seq += 1;
        self.latest_seq[r] = self.next_seq;
        if latency == 0 {
            self.effective[r] = level;
        } else {
            let change = Change {
                receiver: r,
                level,
                seq: self.next_seq,
            };
            if self.queue.now() < now {
                self.queue.drain_until(now);
            }
            self.queue.schedule_at(now + latency, change);
        }
    }

    fn advance_to(&mut self, now: Tick) {
        for (_, change) in self.queue.drain_until(now) {
            if change.seq >= self.latest_seq[change.receiver] {
                self.effective[change.receiver] = change.level;
            }
        }
    }

    fn max_effective_level(&self) -> usize {
        self.effective.iter().copied().max().unwrap_or(0)
    }

    fn subscribed(&self, r: usize, layer: usize) -> bool {
        layer >= 1 && layer <= self.effective[r]
    }

    fn wants(&self, r: usize, layer: usize) -> bool {
        layer >= 1 && layer <= self.requested[r]
    }
}

/// The pre-index star engine, preserved verbatim: two full `0..n` receiver
/// loops per slot (requested-level accounting, then delivery) plus an O(n)
/// `max_effective_level` scan.
///
/// Deterministic in exactly the same inputs as the production engine; the
/// differential tests assert the two produce bitwise-equal [`StarReport`]s
/// (every counter and the final levels) for identical inputs.
pub fn run_star<C: ReceiverController, M: MarkerSource>(
    cfg: &StarConfig,
    controllers: &mut [C],
    marker: &mut M,
    slots: u64,
    seed: u64,
) -> StarReport {
    let n = cfg.receiver_count();
    assert_eq!(controllers.len(), n, "one controller per receiver");
    let m = cfg.layer_count();
    assert!(m >= 1);

    let base = SimRng::seed_from_u64(seed);
    let mut shared_rng = base.split(u64::MAX);
    let mut fanout_rng: Vec<SimRng> = (0..n).map(|r| base.split(r as u64)).collect();
    let mut shared_loss = cfg.shared_loss.clone();
    let mut fanout_loss: Vec<LossProcess> = cfg.fanout_loss.clone();

    let mut membership =
        RefMembershipTable::new(n, m, 1).with_latencies(cfg.join_latency, cfg.leave_latency);
    let mut interleaver = LayerInterleaver::new(&cfg.layer_rates);

    let mut report = StarReport {
        slots,
        shared_carried: 0,
        offered: vec![0; n],
        delivered: vec![0; n],
        congestion_events: vec![0; n],
        level_slot_sum: vec![0; n],
        final_levels: vec![1; n],
    };

    for slot in 0..slots {
        membership.advance_to(slot);
        let layer = interleaver.next_layer();
        let mk = marker.marker(slot, layer);

        // Account the requested levels (receiver nominal rates).
        for r in 0..n {
            let lvl = membership.requested_level(r);
            report.level_slot_sum[r] += lvl as u64;
            if layer <= lvl {
                report.offered[r] += 1;
            }
        }

        // Shared link: carried iff any receiver is effectively subscribed.
        let carried = layer <= membership.max_effective_level();
        let lost_shared = if carried {
            report.shared_carried += 1;
            shared_loss.sample(&mut shared_rng)
        } else {
            false
        };

        // Deliver to each receiver that requested and effectively holds the
        // layer.
        for r in 0..n {
            let wants = membership.wants(r, layer);
            let has = membership.subscribed(r, layer);
            if !(wants && has) {
                continue;
            }
            let lost = lost_shared || fanout_loss[r].sample(&mut fanout_rng[r]);
            if lost {
                report.congestion_events[r] += 1;
            } else {
                report.delivered[r] += 1;
            }
            let level = membership.requested_level(r);
            let ev = PacketEvent {
                slot,
                layer,
                lost,
                marker: if lost { None } else { mk },
                level,
                layer_count: m,
            };
            match controllers[r].on_packet(&ev) {
                Action::Stay => {}
                Action::JoinUp => {
                    if level < m {
                        membership.request_level(slot, r, level + 1);
                    }
                }
                Action::LeaveDown => {
                    if level > 1 {
                        membership.request_level(slot, r, level - 1);
                    }
                }
            }
        }
    }
    for r in 0..n {
        report.final_levels[r] = membership.requested_level(r);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_star as run_star_indexed, NoMarkers};

    struct Pinned(usize);
    impl ReceiverController for Pinned {
        fn on_packet(&mut self, ev: &PacketEvent) -> Action {
            use std::cmp::Ordering::*;
            match ev.level.cmp(&self.0) {
                Less => Action::JoinUp,
                Equal => Action::Stay,
                Greater => Action::LeaveDown,
            }
        }
    }

    #[test]
    fn reference_matches_indexed_engine_on_a_small_star() {
        let mut cfg = StarConfig::figure8(6, 5, 0.01, 0.04);
        cfg.join_latency = 3;
        cfg.leave_latency = 11;
        let mk = |target: usize| vec![Pinned(target), Pinned(1), Pinned(6), Pinned(3), Pinned(2)];
        let reference = run_star(&cfg, &mut mk(4), &mut NoMarkers, 20_000, 9);
        let indexed = run_star_indexed(&cfg, &mut mk(4), &mut NoMarkers, 20_000, 9);
        assert_eq!(reference, indexed);
    }
}
