//! A generic future-event list for discrete-event simulation.
//!
//! The Figure 8 experiments run in packet-slot time, but join/leave latency
//! (the Section 5 ablation) and any finer-grained extension need genuinely
//! asynchronous events. [`EventQueue`] is a classic calendar built on a
//! binary heap with two guarantees the reproduction relies on:
//!
//! * **deterministic tie-breaking** — events at the same timestamp pop in
//!   insertion order (a monotone sequence number breaks ties), so runs are
//!   bit-for-bit repeatable;
//! * **monotone time** — popping never goes backwards, and scheduling in
//!   the past is a caller bug caught by an assertion.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in discrete ticks (packet slots for the Section 4
/// experiments).
pub type Tick = u64;

/// An event queue over payloads of type `E`.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: Tick,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    at: Tick,
    seq: u64,
    payload: E,
}

// Min-heap by (time, seq): BinaryHeap is a max-heap, so invert the ordering.
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current time.
    pub(crate) fn schedule_at(&mut self, at: Tick, payload: E) {
        assert!(at >= self.now, "cannot schedule into the past");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Schedule `payload` `delay` ticks from now.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn schedule_in(&mut self, delay: Tick, payload: E) {
        self.schedule_at(self.now + delay, payload);
    }

    /// Pop the next event, advancing the clock to its timestamp.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn pop(&mut self) -> Option<(Tick, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Timestamp of the next event without popping it.
    pub(crate) fn peek_time(&self) -> Option<Tick> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pop all events scheduled at or before `t` (advancing the clock to at
    /// most `t`).
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn drain_until(&mut self, t: Tick) -> Vec<(Tick, E)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|at| at <= t) {
            // A successful peek guarantees the pop; `break` degrades safely.
            let Some(ev) = self.pop() else { break };
            out.push(ev);
        }
        self.advance_clock(t);
        out
    }

    /// Advance the clock to `t` without popping anything (no-op when `t` is
    /// in the past). Callers that pop due events by hand (peek/pop loops
    /// that avoid `drain_until`'s `Vec`) use this to finish the drain.
    pub(crate) fn advance_clock(&mut self, t: Tick) {
        if self.now < t {
            self.now = t;
        }
    }

    /// Remove all pending events and rewind the clock (and tie-break
    /// sequence) to zero — the same post-state as a fresh queue, reusing
    /// the heap allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.next_seq = 0;
        self.now = 0;
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5, "c");
        q.schedule_at(1, "a");
        q.schedule_at(3, "b");
        assert_eq!(q.pop(), Some((1, "a")));
        assert_eq!(q.pop(), Some((3, "b")));
        assert_eq!(q.now(), 3);
        assert_eq!(q.pop(), Some((5, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(7, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn relative_scheduling_tracks_now() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "x");
        let _ = q.pop();
        q.schedule_in(5, "y");
        assert_eq!(q.pop(), Some((15, "y")));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(10, "x");
        let _ = q.pop();
        q.schedule_at(5, "y");
    }

    #[test]
    fn clear_restores_the_fresh_state() {
        let mut q = EventQueue::new();
        q.schedule_at(4, "a");
        q.schedule_at(9, "b");
        let _ = q.pop();
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.now(), 0);
        // Scheduling at time 0 works again and ties break from seq 0.
        q.schedule_at(0, "x");
        q.schedule_at(0, "y");
        assert_eq!(q.pop(), Some((0, "x")));
        assert_eq!(q.pop(), Some((0, "y")));
    }

    #[test]
    fn advance_clock_never_goes_backwards() {
        let mut q = EventQueue::<()>::new();
        q.advance_clock(7);
        assert_eq!(q.now(), 7);
        q.advance_clock(3);
        assert_eq!(q.now(), 7);
    }

    #[test]
    fn drain_until_collects_due_events_and_advances() {
        let mut q = EventQueue::new();
        q.schedule_at(1, "a");
        q.schedule_at(2, "b");
        q.schedule_at(9, "c");
        let due = q.drain_until(5);
        assert_eq!(due, vec![(1, "a"), (2, "b")]);
        assert_eq!(q.now(), 5);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
