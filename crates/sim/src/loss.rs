//! Per-link packet-loss processes.
//!
//! Section 4 models loss (equivalently, ECN congestion marking) as a
//! **Bernoulli** process per link, arguing this is accurate when links carry
//! many flows so one flow's rate barely moves the link's loss rate
//! (Yajnik et al.). We implement that model plus a **Gilbert–Elliott**
//! two-state burst-loss process as a clearly-flagged extension: the paper's
//! related-work section points at temporal loss correlation as exactly the
//! thing its Bernoulli model abstracts away, and the Figure 8 ablation
//! benches quantify how much burstiness moves the redundancy curves.

use crate::rng::SimRng;

/// A packet-loss process for one link.
#[derive(Debug, Clone, PartialEq)]
pub enum LossProcess {
    /// Independent loss with fixed probability `p` (the paper's model).
    Bernoulli {
        /// Loss probability per packet.
        p: f64,
    },
    /// Two-state Markov (Gilbert–Elliott) burst loss. The chain moves
    /// between a Good and a Bad state; each state has its own loss rate.
    GilbertElliott {
        /// P(Good → Bad) per packet.
        p_good_to_bad: f64,
        /// P(Bad → Good) per packet.
        p_bad_to_good: f64,
        /// Loss probability while Good (usually ≈ 0).
        loss_good: f64,
        /// Loss probability while Bad (usually large).
        loss_bad: f64,
        /// Current state: `true` = Bad.
        in_bad: bool,
    },
}

impl LossProcess {
    /// A Bernoulli process with per-packet loss probability `p`.
    pub fn bernoulli(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "loss probability out of range");
        LossProcess::Bernoulli { p }
    }

    /// A Gilbert–Elliott process started in the Good state.
    pub(crate) fn gilbert_elliott(
        p_good_to_bad: f64,
        p_bad_to_good: f64,
        loss_good: f64,
        loss_bad: f64,
    ) -> Self {
        for p in [p_good_to_bad, p_bad_to_good, loss_good, loss_bad] {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
        }
        LossProcess::GilbertElliott {
            p_good_to_bad,
            p_bad_to_good,
            loss_good,
            loss_bad,
            in_bad: false,
        }
    }

    /// A Gilbert–Elliott process with the same *average* loss rate as a
    /// Bernoulli process of rate `p`, with mean burst length `burst` (in
    /// packets) and lossless Good state. Useful for like-for-like ablations.
    ///
    /// Stationary Bad probability `π_b = p / loss_bad`; with `loss_bad = 1`
    /// and mean Bad dwell `burst = 1/p_bg`, we need `π_b = p`, i.e.
    /// `p_gb = p_bg · p / (1 − p)`.
    pub fn bursty_with_average(p: f64, burst: f64) -> Self {
        assert!((0.0..1.0).contains(&p) && burst >= 1.0);
        let p_bg = 1.0 / burst;
        let p_gb = (p_bg * p / (1.0 - p)).min(1.0);
        Self::gilbert_elliott(p_gb, p_bg, 0.0, 1.0)
    }

    /// Draw the fate of one packet: `true` = lost. Advances internal state
    /// for the Markov variant.
    pub fn sample(&mut self, rng: &mut SimRng) -> bool {
        match self {
            LossProcess::Bernoulli { p } => rng.bernoulli(*p),
            LossProcess::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
                in_bad,
            } => {
                // Transition first, then draw loss in the new state; the
                // order is a modelling convention, fixed for determinism.
                if *in_bad {
                    if rng.bernoulli(*p_bad_to_good) {
                        *in_bad = false;
                    }
                } else if rng.bernoulli(*p_good_to_bad) {
                    *in_bad = true;
                }
                let p = if *in_bad { *loss_bad } else { *loss_good };
                rng.bernoulli(p)
            }
        }
    }

    /// The long-run average loss rate of the process.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn average_loss_rate(&self) -> f64 {
        match *self {
            LossProcess::Bernoulli { p } => p,
            LossProcess::GilbertElliott {
                p_good_to_bad,
                p_bad_to_good,
                loss_good,
                loss_bad,
                ..
            } => {
                let denom = p_good_to_bad + p_bad_to_good;
                if denom == 0.0 {
                    return loss_good; // chain never leaves its start state
                }
                let pi_bad = p_good_to_bad / denom;
                pi_bad * loss_bad + (1.0 - pi_bad) * loss_good
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bernoulli_empirical_rate() {
        let mut lp = LossProcess::bernoulli(0.05);
        let mut rng = SimRng::seed_from_u64(1);
        let n = 100_000;
        let losses = (0..n).filter(|_| lp.sample(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.005, "rate {rate}");
        assert_eq!(lp.average_loss_rate(), 0.05);
    }

    #[test]
    fn gilbert_elliott_matches_target_average() {
        let lp = LossProcess::bursty_with_average(0.05, 10.0);
        assert!((lp.average_loss_rate() - 0.05).abs() < 1e-12);
        let mut lp = lp;
        let mut rng = SimRng::seed_from_u64(2);
        let n = 400_000;
        let losses = (0..n).filter(|_| lp.sample(&mut rng)).count();
        let rate = losses as f64 / n as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn gilbert_elliott_is_bursty() {
        // Measure mean run length of consecutive losses; must exceed the
        // Bernoulli expectation (~1/(1-p) ≈ 1.05) by a wide margin.
        let mut lp = LossProcess::bursty_with_average(0.05, 10.0);
        let mut rng = SimRng::seed_from_u64(3);
        let mut runs = 0usize;
        let mut losses = 0usize;
        let mut in_run = false;
        for _ in 0..200_000 {
            if lp.sample(&mut rng) {
                losses += 1;
                if !in_run {
                    runs += 1;
                    in_run = true;
                }
            } else {
                in_run = false;
            }
        }
        let mean_run = losses as f64 / runs as f64;
        assert!(mean_run > 3.0, "mean burst length {mean_run}");
    }

    #[test]
    fn zero_and_one_probabilities() {
        let mut rng = SimRng::seed_from_u64(4);
        let mut never = LossProcess::bernoulli(0.0);
        let mut always = LossProcess::bernoulli(1.0);
        for _ in 0..100 {
            assert!(!never.sample(&mut rng));
            assert!(always.sample(&mut rng));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        let _ = LossProcess::bernoulli(1.5);
    }
}
