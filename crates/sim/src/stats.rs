//! Statistics aggregation for multi-trial experiments.
//!
//! Figure 8 reports, for each parameter point, "the mean of 30 experiments
//! ... the variance is less than 1% with 95% confidence". [`RunningStats`]
//! accumulates trial results with Welford's numerically-stable online
//! algorithm and reports the mean, variance, and a normal-approximation 95%
//! confidence half-width.

/// Online mean/variance accumulator (Welford).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Fold another accumulator into this one (Chan et al.'s parallel
    /// update), as if `other`'s observations had been pushed here.
    ///
    /// Exact for count/mean/M2 up to floating-point associativity; the
    /// sweep binaries use it to pool per-seed replicate outcomes into one
    /// statistic. Merging an empty accumulator is the identity in both
    /// directions.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.n as f64, other.n as f64);
        let delta = other.mean - self.mean;
        let n = na + nb;
        self.mean += delta * (nb / n);
        self.m2 += other.m2 + delta * delta * (na * nb / n);
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Build from a slice of observations.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Self::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean. Zero when empty.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance. Zero for fewer than two observations.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub(crate) fn std_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.std_dev() / (self.n as f64).sqrt()
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean (`1.96 · SE`). The paper's 30-trial experiments are well
    /// inside the normal regime.
    pub fn ci95_half_width(&self) -> f64 {
        1.96 * self.std_error()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Relative 95% CI half-width (`ci95 / mean`), the "variance less than
    /// 1% with 95% confidence" figure-of-merit the paper quotes. Zero when
    /// the mean is zero.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn relative_ci95(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.ci95_half_width() / self.mean.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form_on_small_sample() {
        let s = RunningStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        // Sample variance (n-1): Σ(x-5)^2 = 32, /7.
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn empty_and_single_are_degenerate() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.variance(), 0.0);
        let s = RunningStats::from_slice(&[3.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn ci_shrinks_with_sample_size() {
        let small = RunningStats::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut big = RunningStats::new();
        for _ in 0..25 {
            for x in [1.0, 2.0, 3.0, 4.0] {
                big.push(x);
            }
        }
        assert!(big.ci95_half_width() < small.ci95_half_width() / 2.0);
        assert!(big.relative_ci95() < 0.1);
    }

    #[test]
    fn merge_matches_pushing_everything_into_one_accumulator() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let whole = RunningStats::from_slice(&xs);
        for split in 0..=xs.len() {
            let mut left = RunningStats::from_slice(&xs[..split]);
            let right = RunningStats::from_slice(&xs[split..]);
            left.merge(&right);
            assert_eq!(left.count(), whole.count(), "split {split}");
            assert!((left.mean() - whole.mean()).abs() < 1e-12, "split {split}");
            assert!(
                (left.variance() - whole.variance()).abs() < 1e-12,
                "split {split}"
            );
            assert_eq!(left.min(), whole.min());
            assert_eq!(left.max(), whole.max());
        }
        // Empty merges are identities in both directions.
        let mut empty = RunningStats::new();
        empty.merge(&whole);
        assert_eq!(empty, whole);
        let mut pooled = whole.clone();
        pooled.merge(&RunningStats::new());
        assert_eq!(pooled, whole);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let base = 1e9;
        let s = RunningStats::from_slice(&[base + 1.0, base + 2.0, base + 3.0]);
        assert!((s.variance() - 1.0).abs() < 1e-6);
    }
}
