//! Multicast group membership with optional join/leave latency, indexed so
//! the packet engine's per-slot cost scales with the slot layer's
//! subscriber count (plus a per-64-receivers word-scan), not the receiver
//! count.
//!
//! Each receiver holds a *subscription level* `0..=M` with cumulative
//! semantics (level `i` = joined to layers `1..=i`). The Section 4 model is
//! idealized — "network propagation delays and leave latencies are
//! negligible" — so by default changes take effect instantly. The Section 5
//! discussion predicts that join/leave latency *increases* redundancy ("a
//! link continues to receive at the rate prior to the leave, until the leave
//! takes effect, while the receiver's rate reduces immediately");
//! [`MembershipTable`] therefore supports per-operation latencies so the
//! ablation benches can quantify that prediction.
//!
//! The table distinguishes, per receiver:
//!
//! * the **requested** level — what the receiver's protocol asked for; the
//!   receiver counts its own goodput against this;
//! * the **effective** level — what the network is still delivering (grafted
//!   /pruned state); link usage is driven by this;
//! * the **active** level — `min(requested, effective)`, the prefix of
//!   layers the receiver both wants and holds: exactly the packets the
//!   engine delivers to it.
//!
//! A leave keeps the effective level high until the prune latency elapses; a
//! join keeps it low until the graft latency elapses.
//!
//! ## The level index and its invariants
//!
//! The table owns a [`LevelIndex`] and maintains it **incrementally**: every
//! place a requested or effective level changes ([`request_level`] applying
//! a zero-latency change, [`advance_to`] landing a delayed one) reports the
//! `old → new` transition to the index before returning. The invariants,
//! property-tested in `tests/membership_proptest.rs`:
//!
//! * `index.effective_count(v)` equals a recount of receivers with
//!   `effective_level == v`, for every `v`, after every operation — so
//!   [`max_effective_level`] is a cached O(1) bucket maximum, not an O(n)
//!   scan;
//! * the layer-`L` subscriber bitset holds exactly the receivers with
//!   `active_level ≥ L` — so the engine's delivery loop visits only
//!   receivers it would deliver to;
//! * stale queued changes never overwrite newer state: each request gets a
//!   monotone per-receiver sequence number, and a delayed change only lands
//!   if no newer request superseded it (zero-latency changes bump the
//!   sequence too, so a stale in-flight join can never override a newer
//!   instant leave).
//!
//! A table can additionally carry a [`LinkLevelIndex`]
//! ([`attach_link_index`]/[`detach_link_index`]) for the tree engine:
//! both effective-level notification sites — the zero-latency fast path
//! in [`request_level`] and delayed changes landing in [`advance_to`] —
//! forward the same `old → new` transition to it, so per-link carry sets
//! stay exact under join/leave latencies without any extra bookkeeping at
//! the call sites.
//!
//! ## The RNG-draw-preservation contract
//!
//! The star engine's reproducibility across the indexed rewrite rests on
//! this table answering the *same questions with the same answers* as the
//! pre-index scan code (frozen in [`crate::reference`]): `max_effective_level`
//! decides whether the shared link draws a loss sample, and the layer-`L`
//! subscriber set — iterated in **ascending receiver id** — decides which
//! per-receiver RNG streams draw and in what order controllers run. Because
//! every receiver owns a private RNG substream, preserving each receiver's
//! *visit set* (not the interleaving) preserves its draw sequence exactly;
//! the ascending-id iteration preserves controller/marker observation order
//! for the shared state. Any index bug that adds or drops a visit breaks
//! bitwise equality — which is what `tests/star_engine_differential.rs`
//! pins.
//!
//! The tree engine extends the same contract to links: every link owns a
//! private RNG substream too, so preserving each link's *carried-slot set*
//! (which the link-index carry bitsets decide) preserves its loss-sample
//! sequence exactly, whatever order links are visited within a slot.
//! `tests/tree_engine_differential.rs` pins that side against the frozen
//! [`crate::reference_tree`].
//!
//! [`request_level`]: MembershipTable::request_level
//! [`advance_to`]: MembershipTable::advance_to
//! [`max_effective_level`]: MembershipTable::max_effective_level
//! [`attach_link_index`]: MembershipTable::attach_link_index
//! [`detach_link_index`]: MembershipTable::detach_link_index

use crate::events::{EventQueue, Tick};
use crate::index::{LevelIndex, LinkLevelIndex};

/// Pending membership-change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Change {
    receiver: usize,
    level: usize,
    seq: u64,
}

/// Subscription state for a set of receivers of one layered session.
#[derive(Debug, Clone, Default)]
pub struct MembershipTable {
    requested: Vec<usize>,
    effective: Vec<usize>,
    /// Monotone per-receiver sequence numbers so a stale scheduled change
    /// never overwrites a newer one.
    latest_seq: Vec<u64>,
    queue: EventQueue<Change>,
    join_latency: Tick,
    leave_latency: Tick,
    layer_count: usize,
    next_seq: u64,
    /// Incrementally maintained level buckets + subscriber bitsets.
    index: LevelIndex,
    /// Optional per-link index for the tree engine (boxed: star runs
    /// carry no tree topology and pay one null pointer). Kept in sync
    /// with every effective-level transition while attached.
    links: Option<Box<LinkLevelIndex>>,
}

impl MembershipTable {
    /// A table for `receivers` receivers of a session with `layer_count`
    /// layers, all initially at level `initial` (the Section 4 protocols
    /// start everyone at level 1 — every receiver always holds layer 1).
    pub fn new(receivers: usize, layer_count: usize, initial: usize) -> Self {
        let mut table = MembershipTable::default();
        table.reset(receivers, layer_count, initial);
        table
    }

    /// Re-initialize in place — same post-state as
    /// [`MembershipTable::new`] followed by
    /// [`MembershipTable::with_latencies`] with the current latencies, but
    /// reusing every allocation (level vectors, event queue, index rows).
    /// The engine scratch calls this once per trial.
    pub fn reset(&mut self, receivers: usize, layer_count: usize, initial: usize) {
        assert!(initial <= layer_count || receivers == 0);
        self.requested.clear();
        self.requested.resize(receivers, initial);
        self.effective.clear();
        self.effective.resize(receivers, initial);
        self.latest_seq.clear();
        self.latest_seq.resize(receivers, 0);
        self.queue.clear();
        self.layer_count = layer_count;
        self.next_seq = 0;
        self.index.reset(receivers, layer_count, initial);
        // A fresh table has no link index; callers that reuse one across
        // trials detach it first and re-attach after the reset.
        self.links = None;
    }

    /// Builder-style join (graft) and leave (prune) latencies in ticks.
    pub fn with_latencies(mut self, join: Tick, leave: Tick) -> Self {
        self.set_latencies(join, leave);
        self
    }

    /// Set the join (graft) and leave (prune) latencies in place.
    pub(crate) fn set_latencies(&mut self, join: Tick, leave: Tick) {
        self.join_latency = join;
        self.leave_latency = leave;
    }

    /// Number of receivers tracked.
    pub fn receiver_count(&self) -> usize {
        self.requested.len()
    }

    /// Number of layers `M`.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// The level the receiver's protocol most recently requested.
    pub fn requested_level(&self, r: usize) -> usize {
        self.requested[r]
    }

    /// The level the network is currently delivering to the receiver.
    pub fn effective_level(&self, r: usize) -> usize {
        self.effective[r]
    }

    /// The receiver's active level `min(requested, effective)`: the prefix
    /// of layers it both wants and effectively holds.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn active_level(&self, r: usize) -> usize {
        self.requested[r].min(self.effective[r])
    }

    /// The level index: O(1) bucket maximum and per-layer subscriber
    /// bitsets, maintained incrementally by this table.
    pub fn index(&self) -> &LevelIndex {
        &self.index
    }

    /// Attach a per-link index (tree engine). Its static topology must be
    /// built ([`LinkLevelIndex::rebuild`]) for this table's receiver
    /// count; the dynamic state is synced to the current effective levels
    /// here, and every later transition keeps it current until
    /// [`MembershipTable::detach_link_index`].
    // mlf-lint: allow(unused-pub, reason = "documented public API; the tree engine consumes it in-crate, invisibly to the analyzer")
    pub fn attach_link_index(&mut self, mut links: Box<LinkLevelIndex>) {
        assert_eq!(
            links.receiver_count(),
            self.receiver_count(),
            "link index receiver count"
        );
        links.sync_levels(&self.effective);
        self.links = Some(links);
    }

    /// Detach and return the link index (if any), so engine scratch can
    /// reuse its allocations across trials.
    // mlf-lint: allow(unused-pub, reason = "documented public API; the tree engine consumes it in-crate, invisibly to the analyzer")
    pub fn detach_link_index(&mut self) -> Option<Box<LinkLevelIndex>> {
        self.links.take()
    }

    /// The attached per-link index, if any.
    // mlf-lint: allow(unused-pub, reason = "documented public API; the tree engine consumes it in-crate, invisibly to the analyzer")
    pub fn link_index(&self) -> Option<&LinkLevelIndex> {
        self.links.as_deref()
    }

    /// Apply an effective-level change, keeping the indexes in sync. The
    /// requested level must already hold its final value.
    fn apply_effective(&mut self, r: usize, level: usize) {
        let old_eff = self.effective[r];
        self.effective[r] = level;
        self.index.effective_changed(r, old_eff, level);
        if let Some(links) = self.links.as_deref_mut() {
            links.effective_changed(r, old_eff, level);
        }
        let old_active = self.requested[r].min(old_eff);
        let new_active = self.requested[r].min(level);
        self.index.active_changed(r, old_active, new_active);
    }

    /// Request a level change for receiver `r` at time `now`. Takes effect
    /// after the graft/prune latency (instantly at zero latency).
    pub fn request_level(&mut self, now: Tick, r: usize, level: usize) {
        assert!(level <= self.layer_count, "level beyond layer count");
        if level == self.requested[r] {
            return;
        }
        let raising = level > self.requested[r];
        let old_active = self.active_level(r);
        self.requested[r] = level;
        let latency = if raising {
            self.join_latency
        } else {
            self.leave_latency
        };
        self.next_seq += 1;
        self.latest_seq[r] = self.next_seq;
        if latency == 0 {
            // Apply immediately, but still respect ordering with any
            // pending delayed changes by sequence number.
            let old_eff = self.effective[r];
            self.effective[r] = level;
            self.index.effective_changed(r, old_eff, level);
            if let Some(links) = self.links.as_deref_mut() {
                links.effective_changed(r, old_eff, level);
            }
            self.index.active_changed(r, old_active, level);
        } else {
            // The requested level moved while the effective one did not:
            // only the active level (and so the subscriber bitsets) can
            // shrink or grow.
            self.index
                .active_changed(r, old_active, self.active_level(r));
            // Catch the queue up to `now` before scheduling. The engine
            // always `advance_to`s the slot first (making this a no-op),
            // but a direct API caller may not have: apply — never discard —
            // any changes that fell due in the meantime, then schedule.
            let change = Change {
                receiver: r,
                level,
                seq: self.next_seq,
            };
            if self.queue.now() < now {
                self.advance_to(now);
            }
            self.queue.schedule_at(now + latency, change);
        }
    }

    /// Apply all membership changes due at or before `now`.
    pub fn advance_to(&mut self, now: Tick) {
        while self.queue.peek_time().is_some_and(|at| at <= now) {
            // A successful peek guarantees the pop; `break` degrades safely.
            let Some((_, change)) = self.queue.pop() else {
                break;
            };
            // Only the most recent request per receiver wins; anything the
            // receiver superseded (or that a zero-latency change already
            // applied past) is dropped.
            if change.seq >= self.latest_seq[change.receiver] {
                self.apply_effective(change.receiver, change.level);
            }
        }
        self.queue.advance_clock(now);
    }

    /// The highest effective level across receivers — what the shared link
    /// upstream of everyone must carry (cumulative layering: the union of
    /// the receivers' layer sets is the layer prefix up to the max level).
    /// O(1) via the index's cached bucket maximum.
    pub fn max_effective_level(&self) -> usize {
        self.index.max_effective()
    }

    /// The highest requested level across receivers.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn max_requested_level(&self) -> usize {
        self.requested.iter().copied().max().unwrap_or(0)
    }

    /// Whether receiver `r` is effectively subscribed to `layer` (1-based).
    pub fn subscribed(&self, r: usize, layer: usize) -> bool {
        layer >= 1 && layer <= self.effective[r]
    }

    /// Whether receiver `r`'s protocol wants `layer` (1-based).
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn wants(&self, r: usize, layer: usize) -> bool {
        layer >= 1 && layer <= self.requested[r]
    }

    /// Check every index invariant against the table's ground-truth level
    /// vectors (see [`crate::index::LevelIndex::check_invariants`]), plus
    /// the attached link index's (if any).
    pub fn check_index_invariants(&self) -> Result<(), String> {
        self.index
            .check_invariants(&self.requested, &self.effective)?;
        if let Some(links) = self.links.as_deref() {
            links.check_invariants(&self.effective)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_changes_apply_instantly() {
        let mut t = MembershipTable::new(3, 8, 1);
        t.request_level(0, 1, 4);
        assert_eq!(t.effective_level(1), 4);
        assert_eq!(t.requested_level(1), 4);
        assert_eq!(t.max_effective_level(), 4);
        assert!(t.subscribed(1, 4));
        assert!(!t.subscribed(1, 5));
        assert!(!t.subscribed(0, 2));
        t.check_index_invariants().unwrap();
    }

    #[test]
    fn leave_latency_keeps_effective_level_high() {
        let mut t = MembershipTable::new(1, 8, 5).with_latencies(0, 10);
        t.request_level(100, 0, 2);
        assert_eq!(t.requested_level(0), 2);
        assert_eq!(t.effective_level(0), 5, "prune not yet effective");
        assert_eq!(t.active_level(0), 2, "the receiver's own rate drops now");
        t.advance_to(105);
        assert_eq!(t.effective_level(0), 5);
        assert_eq!(t.max_effective_level(), 5);
        t.advance_to(110);
        assert_eq!(t.effective_level(0), 2, "prune lands at +10");
        assert_eq!(t.max_effective_level(), 2);
        t.check_index_invariants().unwrap();
    }

    #[test]
    fn join_latency_keeps_effective_level_low() {
        let mut t = MembershipTable::new(1, 8, 1).with_latencies(7, 0);
        t.request_level(50, 0, 3);
        assert_eq!(t.effective_level(0), 1);
        assert_eq!(t.active_level(0), 1, "nothing new delivered yet");
        t.advance_to(56);
        assert_eq!(t.effective_level(0), 1);
        t.advance_to(57);
        assert_eq!(t.effective_level(0), 3);
        assert_eq!(t.active_level(0), 3);
        t.check_index_invariants().unwrap();
    }

    #[test]
    fn newer_request_supersedes_pending_one() {
        let mut t = MembershipTable::new(1, 8, 1).with_latencies(10, 0);
        t.request_level(0, 0, 3); // lands at 10
        t.request_level(5, 0, 1); // instant leave back to 1
        t.advance_to(20);
        assert_eq!(
            t.effective_level(0),
            1,
            "stale join must not override the newer leave"
        );
        t.check_index_invariants().unwrap();
    }

    #[test]
    fn a_request_applies_other_receivers_due_changes_instead_of_dropping_them() {
        // Receiver 0 schedules a delayed leave due at t=10. A *different*
        // receiver's request at t=12 (without an advance_to in between)
        // must apply that due change, not silently discard it.
        let mut t = MembershipTable::new(2, 8, 5).with_latencies(4, 10);
        t.request_level(0, 0, 2); // prune of receiver 0 lands at t=10
        t.request_level(12, 1, 7); // join of receiver 1, due at t=16
        assert_eq!(
            t.effective_level(0),
            2,
            "receiver 0's due prune was discarded by receiver 1's request"
        );
        t.check_index_invariants().unwrap();
        t.advance_to(16);
        assert_eq!(t.effective_level(1), 7);
        t.check_index_invariants().unwrap();
    }

    #[test]
    fn redundant_requests_are_no_ops() {
        let mut t = MembershipTable::new(1, 4, 2);
        t.request_level(0, 0, 2);
        assert_eq!(t.effective_level(0), 2);
    }

    #[test]
    fn reset_matches_a_fresh_table() {
        let mut t = MembershipTable::new(4, 6, 1).with_latencies(3, 7);
        t.request_level(0, 2, 5);
        t.request_level(1, 0, 2);
        t.advance_to(30);
        t.reset(9, 4, 1);
        assert_eq!(t.receiver_count(), 9);
        assert_eq!(t.layer_count(), 4);
        for r in 0..9 {
            assert_eq!(t.requested_level(r), 1);
            assert_eq!(t.effective_level(r), 1);
        }
        assert_eq!(t.max_effective_level(), 1);
        // Latencies survive a reset; events do not.
        t.request_level(0, 3, 2);
        assert_eq!(t.effective_level(3), 1, "join latency still 3");
        t.advance_to(3);
        assert_eq!(t.effective_level(3), 2);
        t.check_index_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "beyond layer count")]
    fn level_above_m_panics() {
        let mut t = MembershipTable::new(1, 4, 1);
        t.request_level(0, 0, 5);
    }

    #[test]
    fn attached_link_index_follows_latent_transitions() {
        // Star of 3: shared link 0 (rank 0), fanouts 1..=3; receiver r's
        // route is [0, r+1].
        let route_start = [0u32, 2, 4, 6];
        let route_links = [0u32, 1, 0, 2, 0, 3];
        let mut links = Box::<LinkLevelIndex>::default();
        links.rebuild(8, 4, &route_start, &route_links).unwrap();
        let mut t = MembershipTable::new(3, 8, 1).with_latencies(4, 9);
        t.attach_link_index(links);
        t.check_index_invariants().unwrap();
        assert_eq!(t.link_index().unwrap().carrying(1), &[0b1111]);
        assert_eq!(t.link_index().unwrap().carrying(2), &[0]);

        // Receiver 1 joins level 3: nothing carries it until the graft
        // lands, then the shared link and r1's fanout do.
        t.request_level(0, 1, 3);
        t.check_index_invariants().unwrap();
        assert_eq!(t.link_index().unwrap().carrying(3), &[0]);
        t.advance_to(4);
        t.check_index_invariants().unwrap();
        assert_eq!(t.link_index().unwrap().carrying(3), &[0b0101]);

        // An instant (zero-latency) transition flows through the fast
        // path too: drop the leave latency and prune back to 1.
        t.set_latencies(4, 0);
        t.request_level(5, 1, 1);
        t.check_index_invariants().unwrap();
        assert_eq!(t.link_index().unwrap().carrying(2), &[0]);

        // Detach returns the index for reuse; the table stops updating it.
        let links = t.detach_link_index().unwrap();
        assert_eq!(links.rank_count(), 4);
        assert!(t.link_index().is_none());
    }
}
