//! Multicast group membership with optional join/leave latency.
//!
//! Each receiver holds a *subscription level* `0..=M` with cumulative
//! semantics (level `i` = joined to layers `1..=i`). The Section 4 model is
//! idealized — "network propagation delays and leave latencies are
//! negligible" — so by default changes take effect instantly. The Section 5
//! discussion predicts that join/leave latency *increases* redundancy ("a
//! link continues to receive at the rate prior to the leave, until the leave
//! takes effect, while the receiver's rate reduces immediately");
//! [`MembershipTable`] therefore supports per-operation latencies so the
//! ablation benches can quantify that prediction.
//!
//! The table distinguishes, per receiver:
//!
//! * the **requested** level — what the receiver's protocol asked for; the
//!   receiver counts its own goodput against this;
//! * the **effective** level — what the network is still delivering (grafted
//!   /pruned state); link usage is driven by this.
//!
//! A leave keeps the effective level high until the prune latency elapses; a
//! join keeps it low until the graft latency elapses.

use crate::events::{EventQueue, Tick};

/// Pending membership-change event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Change {
    receiver: usize,
    level: usize,
    seq: u64,
}

/// Subscription state for a set of receivers of one layered session.
#[derive(Debug, Clone)]
pub struct MembershipTable {
    requested: Vec<usize>,
    effective: Vec<usize>,
    /// Monotone per-receiver sequence numbers so a stale scheduled change
    /// never overwrites a newer one.
    latest_seq: Vec<u64>,
    queue: EventQueue<Change>,
    join_latency: Tick,
    leave_latency: Tick,
    layer_count: usize,
    next_seq: u64,
}

impl MembershipTable {
    /// A table for `receivers` receivers of a session with `layer_count`
    /// layers, all initially at level `initial` (the Section 4 protocols
    /// start everyone at level 1 — every receiver always holds layer 1).
    pub fn new(receivers: usize, layer_count: usize, initial: usize) -> Self {
        assert!(initial <= layer_count);
        MembershipTable {
            requested: vec![initial; receivers],
            effective: vec![initial; receivers],
            latest_seq: vec![0; receivers],
            queue: EventQueue::new(),
            join_latency: 0,
            leave_latency: 0,
            layer_count,
            next_seq: 0,
        }
    }

    /// Builder-style join (graft) and leave (prune) latencies in ticks.
    pub fn with_latencies(mut self, join: Tick, leave: Tick) -> Self {
        self.join_latency = join;
        self.leave_latency = leave;
        self
    }

    /// Number of receivers tracked.
    pub fn receiver_count(&self) -> usize {
        self.requested.len()
    }

    /// Number of layers `M`.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// The level the receiver's protocol most recently requested.
    pub fn requested_level(&self, r: usize) -> usize {
        self.requested[r]
    }

    /// The level the network is currently delivering to the receiver.
    pub fn effective_level(&self, r: usize) -> usize {
        self.effective[r]
    }

    /// Request a level change for receiver `r` at time `now`. Takes effect
    /// after the graft/prune latency (instantly at zero latency).
    pub fn request_level(&mut self, now: Tick, r: usize, level: usize) {
        assert!(level <= self.layer_count, "level beyond layer count");
        if level == self.requested[r] {
            return;
        }
        let raising = level > self.requested[r];
        self.requested[r] = level;
        let latency = if raising {
            self.join_latency
        } else {
            self.leave_latency
        };
        self.next_seq += 1;
        self.latest_seq[r] = self.next_seq;
        if latency == 0 {
            // Apply immediately, but still respect ordering with any
            // pending delayed changes by sequence number.
            self.effective[r] = level;
        } else {
            // Advance queue clock without processing (caller drives time via
            // `advance_to`), then schedule.
            let change = Change {
                receiver: r,
                level,
                seq: self.next_seq,
            };
            if self.queue.now() < now {
                self.queue.drain_until(now);
            }
            self.queue.schedule_at(now + latency, change);
        }
    }

    /// Apply all membership changes due at or before `now`.
    pub fn advance_to(&mut self, now: Tick) {
        for (_, change) in self.queue.drain_until(now) {
            // Only the most recent request per receiver wins; anything the
            // receiver superseded (or that a zero-latency change already
            // applied past) is dropped.
            if change.seq >= self.latest_seq[change.receiver] {
                self.effective[change.receiver] = change.level;
            } else if change.seq > 0
                && self.effective[change.receiver] != self.requested[change.receiver]
            {
                // A superseded *pending* change may still move the effective
                // level toward an even newer pending one; conservatively
                // ignore — the newer event will land later.
            }
        }
    }

    /// The highest effective level across receivers — what the shared link
    /// upstream of everyone must carry (cumulative layering: the union of
    /// the receivers' layer sets is the layer prefix up to the max level).
    pub fn max_effective_level(&self) -> usize {
        self.effective.iter().copied().max().unwrap_or(0)
    }

    /// The highest requested level across receivers.
    pub fn max_requested_level(&self) -> usize {
        self.requested.iter().copied().max().unwrap_or(0)
    }

    /// Whether receiver `r` is effectively subscribed to `layer` (1-based).
    pub fn subscribed(&self, r: usize, layer: usize) -> bool {
        layer >= 1 && layer <= self.effective[r]
    }

    /// Whether receiver `r`'s protocol wants `layer` (1-based).
    pub fn wants(&self, r: usize, layer: usize) -> bool {
        layer >= 1 && layer <= self.requested[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_changes_apply_instantly() {
        let mut t = MembershipTable::new(3, 8, 1);
        t.request_level(0, 1, 4);
        assert_eq!(t.effective_level(1), 4);
        assert_eq!(t.requested_level(1), 4);
        assert_eq!(t.max_effective_level(), 4);
        assert!(t.subscribed(1, 4));
        assert!(!t.subscribed(1, 5));
        assert!(!t.subscribed(0, 2));
    }

    #[test]
    fn leave_latency_keeps_effective_level_high() {
        let mut t = MembershipTable::new(1, 8, 5).with_latencies(0, 10);
        t.request_level(100, 0, 2);
        assert_eq!(t.requested_level(0), 2);
        assert_eq!(t.effective_level(0), 5, "prune not yet effective");
        t.advance_to(105);
        assert_eq!(t.effective_level(0), 5);
        t.advance_to(110);
        assert_eq!(t.effective_level(0), 2, "prune lands at +10");
    }

    #[test]
    fn join_latency_keeps_effective_level_low() {
        let mut t = MembershipTable::new(1, 8, 1).with_latencies(7, 0);
        t.request_level(50, 0, 3);
        assert_eq!(t.effective_level(0), 1);
        t.advance_to(56);
        assert_eq!(t.effective_level(0), 1);
        t.advance_to(57);
        assert_eq!(t.effective_level(0), 3);
    }

    #[test]
    fn newer_request_supersedes_pending_one() {
        let mut t = MembershipTable::new(1, 8, 1).with_latencies(10, 0);
        t.request_level(0, 0, 3); // lands at 10
        t.request_level(5, 0, 1); // instant leave back to 1
        t.advance_to(20);
        assert_eq!(
            t.effective_level(0),
            1,
            "stale join must not override the newer leave"
        );
    }

    #[test]
    fn redundant_requests_are_no_ops() {
        let mut t = MembershipTable::new(1, 4, 2);
        t.request_level(0, 0, 2);
        assert_eq!(t.effective_level(0), 2);
    }

    #[test]
    #[should_panic(expected = "beyond layer count")]
    fn level_above_m_panics() {
        let mut t = MembershipTable::new(1, 4, 1);
        t.request_level(0, 0, 5);
    }
}
