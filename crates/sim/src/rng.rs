//! Deterministic random-number generation for the simulator.
//!
//! Reproducibility is a hard requirement: the paper's Figure 8 reports means
//! of 30 trials with confidence intervals, and regenerating the figure must
//! give the same numbers run after run, on any platform. We therefore
//! implement xoshiro256** directly (public-domain algorithm by Blackman &
//! Vigna) rather than depend on `rand`'s generator selection, and expose
//! *stream splitting* so every independent stochastic component (each link's
//! loss process, each receiver's coin flips) draws from its own substream —
//! adding a component never perturbs the draws of existing ones.

/// A xoshiro256** generator. Deterministic, fast, and good enough for
/// discrete-event simulation (not cryptographic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed from a single 64-bit value (expanded through SplitMix64, the
    /// recommended seeding procedure).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        // All-zero state is invalid (fixed point); SplitMix64 cannot emit
        // four zeros from any seed, but guard anyway.
        let s = if s == [0, 0, 0, 0] { [1, 2, 3, 4] } else { s };
        SimRng { s }
    }

    /// Derive an independent substream for component `stream`. Streams
    /// derived from the same base with different ids are de-correlated by
    /// mixing the id into the seed material.
    pub fn split(&self, stream: u64) -> SimRng {
        // Hash the current state with the stream id through SplitMix64.
        let mix = self.s[0]
            ^ self.s[1].rotate_left(17)
            ^ self.s[2].rotate_left(31)
            ^ self.s[3].rotate_left(47);
        SimRng::seed_from_u64(mix ^ stream.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` (53-bit precision).
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Uniform integer in `[0, bound)`. `bound` must be non-zero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire-style rejection-free mapping is fine at simulation quality.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn unit_is_in_range_and_roughly_uniform() {
        let mut rng = SimRng::seed_from_u64(3);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn bernoulli_frequency_matches_p() {
        let mut rng = SimRng::seed_from_u64(4);
        for p in [0.0, 0.05, 0.5, 0.95, 1.0] {
            let n = 50_000;
            let hits = (0..n).filter(|_| rng.bernoulli(p)).count();
            let freq = hits as f64 / n as f64;
            assert!((freq - p).abs() < 0.01, "p={p}, freq={freq}");
        }
    }

    #[test]
    fn below_stays_in_bounds_and_covers() {
        let mut rng = SimRng::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues hit");
    }

    #[test]
    fn split_streams_are_decorrelated_and_stable() {
        let base = SimRng::seed_from_u64(9);
        let mut s1 = base.split(1);
        let mut s1_again = base.split(1);
        let mut s2 = base.split(2);
        let mut matches = 0;
        for _ in 0..64 {
            let a = s1.next_u64();
            assert_eq!(a, s1_again.next_u64(), "same stream id, same draws");
            if a == s2.next_u64() {
                matches += 1;
            }
        }
        assert_eq!(matches, 0, "streams 1 and 2 must differ");
    }

    #[test]
    fn splitting_is_independent_of_parent_consumption() {
        // split() reads the state but does not advance it.
        let base = SimRng::seed_from_u64(11);
        let s_before = base.split(5);
        let parent = base.clone();
        let mut parent2 = parent.clone();
        let _ = parent2.next_u64();
        let s_after = base.split(5);
        assert_eq!(s_before, s_after);
    }
}
