//! Frozen pre-bitset reference tree engine, kept verbatim for differential
//! testing.
//!
//! The production [`crate::tree::run_tree`] runs on the per-link
//! [`crate::index::LinkLevelIndex`]: carried-link detection is a non-zero
//! bit in a per-layer carrying-link bitset row, delivery batches the
//! effectively subscribed receivers with word-at-a-time
//! `trailing_zeros` walks, end-to-end loss is resolved by propagating
//! per-link fates down the tree once per slot, and per-receiver `offered`
//! accounting is settled lazily at join/leave events. This module
//! preserves the *original* scan-everything implementation — the
//! O(links × downstream receivers) carried scan plus the full `0..n`
//! receiver loop with a per-receiver route re-scan — so property tests can
//! assert the bitset engine is **bitwise identical** to it on arbitrary
//! tree topologies (`tests/tree_engine_differential.rs` at the workspace
//! root, plus the in-crate unit tests).
//!
//! The copy includes the pre-index membership table (as the private
//! `RefMembershipTable`), because the production table now maintains the
//! receiver- and link-level indexes incrementally; the reference must not
//! depend on any of that machinery. Nothing here is meant for production
//! use: every call allocates fresh buffers and no attempt is made to keep
//! the hot loop tight. Treat the module as executable documentation of the
//! engine semantics — in particular the **RNG draw order** (one private
//! substream per [`LinkId`], sampled exactly on the slots the link
//! carries) — that the bitset engine must reproduce bit for bit.

use crate::engine::{Action, LayerInterleaver, MarkerSource, PacketEvent, ReceiverController};
use crate::events::{EventQueue, Tick};
use crate::rng::SimRng;
use crate::tree::{TreeConfig, TreeReport};
use mlf_net::{LinkId, Network, ReceiverId, SessionId};

/// Pending membership-change event (the pre-index `Change`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Change {
    receiver: usize,
    level: usize,
    seq: u64,
}

/// The pre-index membership table: plain `requested`/`effective` vectors.
#[derive(Debug, Clone)]
struct RefMembershipTable {
    requested: Vec<usize>,
    effective: Vec<usize>,
    latest_seq: Vec<u64>,
    queue: EventQueue<Change>,
    join_latency: Tick,
    leave_latency: Tick,
    layer_count: usize,
    next_seq: u64,
}

impl RefMembershipTable {
    fn new(receivers: usize, layer_count: usize, initial: usize) -> Self {
        assert!(initial <= layer_count);
        RefMembershipTable {
            requested: vec![initial; receivers],
            effective: vec![initial; receivers],
            latest_seq: vec![0; receivers],
            queue: EventQueue::new(),
            join_latency: 0,
            leave_latency: 0,
            layer_count,
            next_seq: 0,
        }
    }

    fn with_latencies(mut self, join: Tick, leave: Tick) -> Self {
        self.join_latency = join;
        self.leave_latency = leave;
        self
    }

    fn requested_level(&self, r: usize) -> usize {
        self.requested[r]
    }

    fn request_level(&mut self, now: Tick, r: usize, level: usize) {
        assert!(level <= self.layer_count, "level beyond layer count");
        if level == self.requested[r] {
            return;
        }
        let raising = level > self.requested[r];
        self.requested[r] = level;
        let latency = if raising {
            self.join_latency
        } else {
            self.leave_latency
        };
        self.next_seq += 1;
        self.latest_seq[r] = self.next_seq;
        if latency == 0 {
            self.effective[r] = level;
        } else {
            let change = Change {
                receiver: r,
                level,
                seq: self.next_seq,
            };
            if self.queue.now() < now {
                self.queue.drain_until(now);
            }
            self.queue.schedule_at(now + latency, change);
        }
    }

    fn advance_to(&mut self, now: Tick) {
        for (_, change) in self.queue.drain_until(now) {
            if change.seq >= self.latest_seq[change.receiver] {
                self.effective[change.receiver] = change.level;
            }
        }
    }

    fn subscribed(&self, r: usize, layer: usize) -> bool {
        layer >= 1 && layer <= self.effective[r]
    }

    fn wants(&self, r: usize, layer: usize) -> bool {
        layer >= 1 && layer <= self.requested[r]
    }
}

/// The pre-bitset tree engine, preserved verbatim: per slot, one scan over
/// every link's downstream receiver set to find the carrying links, then a
/// full `0..n` receiver loop that re-scans each subscribed receiver's
/// route for the end-to-end loss fate.
///
/// Deterministic in exactly the same inputs as the production engine; the
/// differential tests assert the two produce bitwise-equal [`TreeReport`]s
/// (every counter and the final levels) for identical inputs.
#[allow(clippy::needless_range_loop)] // parallel per-receiver tables
pub fn run_tree<C: ReceiverController, M: MarkerSource>(
    net: &Network,
    cfg: &TreeConfig,
    controllers: &mut [C],
    marker: &mut M,
    slots: u64,
    seed: u64,
) -> TreeReport {
    assert_eq!(net.session_count(), 1, "one session per tree run");
    let session = SessionId(0);
    let n = net.session(session).receivers.len();
    assert_eq!(controllers.len(), n, "one controller per receiver");
    let n_links = net.link_count();
    assert_eq!(cfg.link_loss.len(), n_links, "one loss process per link");
    let m = cfg.layer_rates.len();

    // Downstream receiver sets per link (R_{1,j}).
    let downstream: Vec<Vec<usize>> = (0..n_links)
        .map(|j| {
            net.receivers_of_session_on_link(LinkId(j), session)
                .to_vec()
        })
        .collect();

    let base = SimRng::seed_from_u64(seed);
    let mut link_rng: Vec<SimRng> = (0..n_links).map(|j| base.split(j as u64)).collect();
    let mut link_loss = cfg.link_loss.clone();
    let mut membership =
        RefMembershipTable::new(n, m, 1).with_latencies(cfg.join_latency, cfg.leave_latency);
    let mut interleaver = LayerInterleaver::new(&cfg.layer_rates);

    let mut report = TreeReport {
        slots,
        carried: vec![0; n_links],
        offered: vec![0; n],
        delivered: vec![0; n],
        congestion_events: vec![0; n],
        final_levels: vec![1; n],
        downstream,
    };

    // Per-slot scratch: loss fate per link (None = not carried this slot).
    let mut link_lost: Vec<Option<bool>> = vec![None; n_links];

    for slot in 0..slots {
        membership.advance_to(slot);
        let layer = interleaver.next_layer();
        let mk = marker.marker(slot, layer);

        // Which links carry this packet: those with an effectively
        // subscribed downstream receiver. Draw loss once per carrying link
        // (the draw is what correlates the subtree).
        for j in 0..n_links {
            let sub = report.downstream[j]
                .iter()
                .any(|&r| membership.subscribed(r, layer));
            link_lost[j] = if sub {
                report.carried[j] += 1;
                Some(link_loss[j].sample(&mut link_rng[j]))
            } else {
                None
            };
        }

        for r in 0..n {
            let level = membership.requested_level(r);
            if layer <= level {
                report.offered[r] += 1;
            }
            if !(membership.wants(r, layer) && membership.subscribed(r, layer)) {
                continue;
            }
            // End-to-end fate: OR of the losses on the receiver's path.
            let rid = ReceiverId::new(0, r);
            let lost = net.route(rid).iter().any(|&l| link_lost[l.0] == Some(true));
            if lost {
                report.congestion_events[r] += 1;
            } else {
                report.delivered[r] += 1;
            }
            let ev = PacketEvent {
                slot,
                layer,
                lost,
                marker: if lost { None } else { mk },
                level,
                layer_count: m,
            };
            match controllers[r].on_packet(&ev) {
                Action::Stay => {}
                Action::JoinUp => {
                    if level < m {
                        membership.request_level(slot, r, level + 1);
                    }
                }
                Action::LeaveDown => {
                    if level > 1 {
                        membership.request_level(slot, r, level - 1);
                    }
                }
            }
        }
    }
    for r in 0..n {
        report.final_levels[r] = membership.requested_level(r);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NoMarkers;
    use crate::loss::LossProcess;
    use crate::tree::run_tree_expect;
    use mlf_net::topology::star_network;

    struct Pinned(usize);
    impl ReceiverController for Pinned {
        fn on_packet(&mut self, ev: &PacketEvent) -> Action {
            use std::cmp::Ordering::*;
            match ev.level.cmp(&self.0) {
                Less => Action::JoinUp,
                Equal => Action::Stay,
                Greater => Action::LeaveDown,
            }
        }
    }

    #[test]
    fn reference_matches_bitset_engine_on_a_small_tree() {
        let net = star_network(5, 1000.0, 1000.0);
        let cfg = TreeConfig {
            layer_rates: vec![1.0, 1.0, 2.0, 4.0, 8.0, 16.0],
            link_loss: vec![LossProcess::bursty_with_average(0.03, 4.0); net.link_count()],
            join_latency: 3,
            leave_latency: 11,
        };
        let mk = || vec![Pinned(4), Pinned(1), Pinned(6), Pinned(3), Pinned(2)];
        let reference = run_tree(&net, &cfg, &mut mk(), &mut NoMarkers, 20_000, 9);
        let bitset = run_tree_expect(&net, &cfg, &mut mk(), &mut NoMarkers, 20_000, 9);
        assert_eq!(reference, bitset);
    }
}
