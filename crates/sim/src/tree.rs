//! Packet-level simulation on arbitrary multicast **trees** — a
//! generalization of the Figure 7 star engine, running on per-link
//! carrying bitsets.
//!
//! The paper's quantitative experiments use the modified star because the
//! shared link is where redundancy lives. Its *model*, however, is a
//! general network: a packet of layer `L` traverses a link iff some
//! receiver downstream of that link is subscribed to `L`, and loss on an
//! interior link is *shared* by the whole subtree below it. This engine
//! implements that model for any sender-rooted tree, measuring redundancy
//! on every link:
//!
//! * the star reduces to a depth-2 tree (`tests/star_tree_agreement.rs`
//!   pins bitwise per-receiver agreement with [`crate::engine::run_star`]
//!   on that case);
//! * deeper trees expose the correlation structure the star cannot: two
//!   receivers behind a common lossy branch see correlated congestion and
//!   stay synchronized, receivers on disjoint branches drift apart — so
//!   redundancy concentrates on links whose subtrees straddle independent
//!   loss, exactly the paper's "coordination matters where loss is
//!   uncorrelated" reading at every level of the hierarchy.
//!
//! ## The bitset engine
//!
//! The original implementation (frozen verbatim in
//! [`crate::reference_tree`]) scanned every link × downstream receiver per
//! slot plus a full `0..n` receiver loop with a per-receiver route
//! re-scan. This one runs on the incrementally maintained
//! [`LinkLevelIndex`], so a slot costs
//! O(carrying links) + O(subscribed receivers on the slot's layer):
//!
//! * **Carried links** are the set bits of the layer's carrying-link
//!   bitset row, walked word-at-a-time in ascending rank order — parents
//!   before children — so each link's end-to-end fate is one OR of its own
//!   loss draw with its parent's already-computed fate, resolved down the
//!   whole tree in a single sweep.
//! * **Delivery** walks the layer's active-subscriber bitset row from the
//!   receiver-level [`LevelIndex`](crate::index::LevelIndex) in ascending
//!   receiver id; a receiver's fate is a single lookup of its access
//!   link's fate. Both indexes are maintained by the one
//!   [`MembershipTable`], so a ±1 level transition costs O(route length)
//!   words.
//! * **Offered accounting** is settled lazily from per-layer cumulative
//!   slot counters at the (rare) join/leave events, exactly like the star
//!   engine's.
//!
//! Every RNG draw and counter lands bit-identically to the frozen
//! reference: links own private RNG substreams (split by [`LinkId`]) and
//! carry on identical slot sets; receivers are visited in the same
//! ascending-id order. `tests/tree_engine_differential.rs` proves
//! bitwise-equal [`TreeReport`]s by proptest across topologies × loss
//! processes × latencies × controller mixes.
//!
//! ## Error contract
//!
//! [`run_tree`]/[`run_tree_into`] validate the run configuration up front
//! and return a typed [`TreeConfigError`] instead of asserting: the
//! network must hold exactly **one session**, with **one controller per
//! receiver** and **one loss process per link**, at least one layer with
//! **finite positive rates**, and routes that are the paths of a
//! **sender-rooted tree**. Validation happens before any RNG draw or
//! controller callback, so a failed call has no side effects beyond the
//! scratch. [`run_tree_expect`] is the panicking convenience wrapper for
//! tests and examples.

use crate::engine::{Action, LayerInterleaver, MarkerSource, PacketEvent, ReceiverController};
use crate::events::Tick;
use crate::index::{LinkIndexError, LinkLevelIndex};
use crate::loss::LossProcess;
use crate::multicast::MembershipTable;
use crate::rng::SimRng;
use mlf_net::{LinkId, Network, ReceiverId, SessionId};

/// Configuration of a tree run: a single multicast session on a
/// sender-rooted tree network, one loss process per link.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Per-layer packet rates (the exponential ladder for the §4 protocols).
    pub layer_rates: Vec<f64>,
    /// Loss process per link, indexed by [`LinkId`].
    pub link_loss: Vec<LossProcess>,
    /// Graft latency in slots.
    pub join_latency: Tick,
    /// Prune latency in slots.
    pub leave_latency: Tick,
}

/// A tree run configuration [`run_tree`] cannot execute. See the module
/// docs for the full contract; every variant names the offending input.
// mlf-lint: allow(unused-pub, reason = "the typed error contract of run_tree; workspace tests match it via expect, invisibly to the analyzer")
#[derive(Debug, Clone, PartialEq)]
pub enum TreeConfigError {
    /// The network holds `sessions` sessions; the engine wants exactly one.
    SessionCountNotOne {
        /// Sessions found in the network.
        sessions: usize,
    },
    /// `controllers.len()` does not match the session's receiver count.
    ControllerCountMismatch {
        /// Controllers supplied.
        controllers: usize,
        /// Receivers in the session.
        receivers: usize,
    },
    /// `cfg.link_loss.len()` does not match the network's link count.
    LossProcessCountMismatch {
        /// Loss processes supplied.
        processes: usize,
        /// Links in the network.
        links: usize,
    },
    /// `cfg.layer_rates` is empty.
    NoLayers,
    /// A layer rate is zero, negative, or non-finite.
    BadLayerRate {
        /// 1-based layer whose rate is bad.
        layer: usize,
        /// The offending rate.
        rate: f64,
    },
    /// A receiver's route is not a path of a sender-rooted tree (or is
    /// empty), so per-link downstream subscription — and the parent-chain
    /// loss propagation built on it — would be ill-defined.
    NotATree {
        /// Receiver index whose route exposed the problem.
        receiver: usize,
    },
}

impl std::fmt::Display for TreeConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeConfigError::SessionCountNotOne { sessions } => {
                write!(
                    f,
                    "tree run wants exactly one session, network has {sessions}"
                )
            }
            TreeConfigError::ControllerCountMismatch {
                controllers,
                receivers,
            } => write!(
                f,
                "one controller per receiver: got {controllers} controllers for {receivers} \
                 receivers"
            ),
            TreeConfigError::LossProcessCountMismatch { processes, links } => write!(
                f,
                "one loss process per link: got {processes} processes for {links} links"
            ),
            TreeConfigError::NoLayers => write!(f, "layer_rates must name at least one layer"),
            TreeConfigError::BadLayerRate { layer, rate } => {
                write!(
                    f,
                    "layer {layer} rate {rate} is not a finite positive number"
                )
            }
            TreeConfigError::NotATree { receiver } => write!(
                f,
                "receiver {receiver}'s route is not a sender-rooted tree path"
            ),
        }
    }
}

impl std::error::Error for TreeConfigError {}

/// Measurements from one tree run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeReport {
    /// Slots simulated.
    pub slots: u64,
    /// Packets carried per link (`u_{i,j}` numerators), by [`LinkId`].
    pub carried: Vec<u64>,
    /// Per receiver: packets on layers it had requested at emission.
    pub offered: Vec<u64>,
    /// Per receiver: packets delivered.
    pub delivered: Vec<u64>,
    /// Per receiver: congestion events observed.
    pub congestion_events: Vec<u64>,
    /// Final requested levels.
    pub final_levels: Vec<usize>,
    /// `downstream[j]` = receiver indices whose data-path crosses link `j`.
    pub downstream: Vec<Vec<usize>>,
}

impl TreeReport {
    /// An empty report shell for [`run_tree_into`]; every field is resized
    /// and overwritten by the run.
    pub fn empty() -> Self {
        TreeReport {
            slots: 0,
            carried: Vec::new(),
            offered: Vec::new(),
            delivered: Vec::new(),
            congestion_events: Vec::new(),
            final_levels: Vec::new(),
            downstream: Vec::new(),
        }
    }

    /// Redundancy of one link (Definition 3): packets carried over the
    /// largest downstream receiver's offered count. `None` for links with
    /// no subscribed downstream traffic.
    pub fn link_redundancy(&self, link: LinkId) -> Option<f64> {
        let max = self.downstream[link.0]
            .iter()
            .map(|&r| self.offered[r])
            .max()?;
        if max == 0 {
            return None;
        }
        // mlf-lint: allow(as-float-cast, reason = "slot and packet counters stay far below 2^53, so the casts are exact")
        Some(self.carried[link.0] as f64 / max as f64)
    }

    /// The worst per-link redundancy across the tree.
    pub fn max_redundancy(&self) -> f64 {
        (0..self.carried.len())
            .filter_map(|j| self.link_redundancy(LinkId(j)))
            .fold(1.0, f64::max)
    }
}

/// Reusable buffers for [`run_tree_into`]: the membership table with its
/// two indexes, per-link RNG/loss state, the lazy offered-accounting
/// counters, and the per-slot fate/snapshot rows. A bench loop keeps one
/// scratch across trials so steady-state runs are allocation-light.
#[derive(Debug, Clone, Default)]
pub struct TreeScratch {
    membership: MembershipTable,
    /// The per-link index, parked here between runs (the table owns it
    /// while a run is in flight).
    link_index: Option<Box<LinkLevelIndex>>,
    link_rng: Vec<SimRng>,
    link_loss: Vec<LossProcess>,
    /// `layer_cum[L-1]` = slots of layer ≤ `L` emitted so far… summed by
    /// prefix: cumulative emitted-slot counters per layer.
    layer_cum: Vec<u64>,
    /// Per receiver: the offered prefix already credited.
    settled_prefix: Vec<u64>,
    /// Snapshot of the slot layer's active-subscriber bitset row.
    row: Vec<u64>,
    /// Per link rank: this slot's end-to-end fate (valid for carried ranks).
    path_lost: Vec<bool>,
    /// Per receiver: rank of its access link.
    last_rank: Vec<u32>,
    /// Route CSR handed to the link index (link ids, sender → receiver).
    route_start: Vec<u32>,
    route_links: Vec<u32>,
}

/// Settle receiver `r`'s lazily accounted `offered` counter at a level
/// change `old_level → new_level` (current slot billed at the old level,
/// matching the reference engine's visit order).
fn settle_offered(
    offered: &mut [u64],
    layer_cum: &[u64],
    settled_prefix: &mut [u64],
    r: usize,
    old_level: usize,
    new_level: usize,
) {
    let prefix_old: u64 = layer_cum[..old_level].iter().sum();
    offered[r] += prefix_old - settled_prefix[r];
    settled_prefix[r] = if new_level == old_level {
        prefix_old
    } else {
        layer_cum[..new_level].iter().sum()
    };
}

/// Run a layered session over a tree network.
///
/// `net` must contain exactly one session (the multicast under test) whose
/// routes form a sender-rooted tree: every receiver's data-path must be the
/// unique tree path (guaranteed when the graph is a tree, e.g. from
/// `mlf_net::topology::{star, kary_tree, random_tree}`). Invalid
/// configurations come back as a typed [`TreeConfigError`] (see the module
/// docs); [`run_tree_expect`] panics instead, for tests.
pub fn run_tree<C: ReceiverController, M: MarkerSource>(
    net: &Network,
    cfg: &TreeConfig,
    controllers: &mut [C],
    marker: &mut M,
    slots: u64,
    seed: u64,
) -> Result<TreeReport, TreeConfigError> {
    let mut report = TreeReport::empty();
    let mut scratch = TreeScratch::default();
    run_tree_into(
        net,
        cfg,
        controllers,
        marker,
        slots,
        seed,
        &mut report,
        &mut scratch,
    )?;
    Ok(report)
}

/// [`run_tree`] that panics on an invalid configuration — the convenience
/// wrapper for tests and examples, where a [`TreeConfigError`] is a bug in
/// the test itself.
pub fn run_tree_expect<C: ReceiverController, M: MarkerSource>(
    net: &Network,
    cfg: &TreeConfig,
    controllers: &mut [C],
    marker: &mut M,
    slots: u64,
    seed: u64,
) -> TreeReport {
    match run_tree(net, cfg, controllers, marker, slots, seed) {
        Ok(report) => report,
        // mlf-lint: allow(panic-unwrap, reason = "documented panicking wrapper for tests; run_tree is the typed alternative")
        Err(err) => panic!("invalid tree run configuration: {err}"),
    }
}

/// [`run_tree`] into caller-owned `report` and `scratch` buffers, reusing
/// their allocations — the bench loops call this in steady state. The
/// report's previous contents are fully overwritten.
#[allow(clippy::too_many_arguments)] // mirrors run_star_into's shape
pub fn run_tree_into<C: ReceiverController, M: MarkerSource>(
    net: &Network,
    cfg: &TreeConfig,
    controllers: &mut [C],
    marker: &mut M,
    slots: u64,
    seed: u64,
    report: &mut TreeReport,
    scratch: &mut TreeScratch,
) -> Result<(), TreeConfigError> {
    if net.session_count() != 1 {
        return Err(TreeConfigError::SessionCountNotOne {
            sessions: net.session_count(),
        });
    }
    let session = SessionId(0);
    let n = net.session(session).receivers.len();
    if controllers.len() != n {
        return Err(TreeConfigError::ControllerCountMismatch {
            controllers: controllers.len(),
            receivers: n,
        });
    }
    let n_links = net.link_count();
    if cfg.link_loss.len() != n_links {
        return Err(TreeConfigError::LossProcessCountMismatch {
            processes: cfg.link_loss.len(),
            links: n_links,
        });
    }
    let m = cfg.layer_rates.len();
    if m == 0 {
        return Err(TreeConfigError::NoLayers);
    }
    for (i, &rate) in cfg.layer_rates.iter().enumerate() {
        if !(rate.is_finite() && rate > 0.0) {
            return Err(TreeConfigError::BadLayerRate { layer: i + 1, rate });
        }
    }

    // Routes as a CSR of link ids, then the per-link index over them. A
    // rejected topology hands the (unbuilt) index back to the scratch.
    scratch.route_start.clear();
    scratch.route_start.push(0);
    scratch.route_links.clear();
    for r in 0..n {
        let route = net.route(ReceiverId::new(session.0, r));
        scratch
            .route_links
            .extend(route.iter().map(|&l| l.0 as u32));
        scratch.route_start.push(scratch.route_links.len() as u32);
    }
    let mut links = scratch.link_index.take().unwrap_or_default();
    if let Err(err) = links.rebuild(m, n_links, &scratch.route_start, &scratch.route_links) {
        scratch.link_index = Some(links);
        let (LinkIndexError::EmptyRoute { receiver } | LinkIndexError::NotATree { receiver }) = err;
        return Err(TreeConfigError::NotATree { receiver });
    }

    scratch.last_rank.clear();
    scratch
        .last_rank
        .extend((0..n).map(|r| links.last_rank(r) as u32));

    let base = SimRng::seed_from_u64(seed);
    scratch.link_rng.clear();
    scratch
        .link_rng
        .extend((0..n_links).map(|j| base.split(j as u64)));
    scratch.link_loss.clear();
    scratch.link_loss.extend_from_slice(&cfg.link_loss);

    scratch.membership.reset(n, m, 1);
    scratch
        .membership
        .set_latencies(cfg.join_latency, cfg.leave_latency);
    scratch.membership.attach_link_index(links);
    let rank_count = scratch
        .membership
        .link_index()
        .map_or(0, LinkLevelIndex::rank_count);

    let mut interleaver = LayerInterleaver::new(&cfg.layer_rates);

    report.slots = slots;
    report.carried.clear();
    report.carried.resize(n_links, 0);
    report.offered.clear();
    report.offered.resize(n, 0);
    report.delivered.clear();
    report.delivered.resize(n, 0);
    report.congestion_events.clear();
    report.congestion_events.resize(n, 0);
    report.final_levels.clear();
    report.final_levels.resize(n, 1);
    report.downstream.truncate(n_links);
    report.downstream.resize_with(n_links, Vec::new);
    for (j, d) in report.downstream.iter_mut().enumerate() {
        d.clear();
        d.extend_from_slice(net.receivers_of_session_on_link(LinkId(j), session));
    }

    scratch.layer_cum.clear();
    scratch.layer_cum.resize(m, 0);
    scratch.settled_prefix.clear();
    scratch.settled_prefix.resize(n, 0);
    scratch.path_lost.clear();
    scratch.path_lost.resize(rank_count, false);

    let TreeScratch {
        membership,
        link_index,
        link_rng,
        link_loss,
        layer_cum,
        settled_prefix,
        row,
        path_lost,
        last_rank,
        ..
    } = scratch;

    for slot in 0..slots {
        membership.advance_to(slot);
        let layer = interleaver.next_layer();
        let mk = marker.marker(slot, layer);
        layer_cum[layer - 1] += 1;

        // Carried links: the layer's carrying-row set bits, ascending rank
        // — parents first, so one sweep resolves every end-to-end fate.
        // Loss draws happen exactly on the slots the link carries, from the
        // link's private substream, matching the reference's draw sequence.
        let Some(lx) = membership.link_index() else {
            break; // unreachable: attached above; break degrades safely
        };
        for (w, &bits) in lx.carrying(layer).iter().enumerate() {
            let mut word = bits;
            while word != 0 {
                let a = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let j = lx.link_of(a);
                report.carried[j] += 1;
                let own = link_loss[j].sample(&mut link_rng[j]);
                let upstream = match lx.parent_of(a) {
                    Some(p) => path_lost[p],
                    None => false,
                };
                path_lost[a] = own || upstream;
            }
        }

        // Delivery: snapshot the layer's active-subscriber row, then walk
        // its set bits in ascending receiver id. Every visited receiver's
        // whole route carried this slot, so its fate is its access link's.
        row.clear();
        row.extend_from_slice(membership.index().subscribers(layer));
        for (w, &bits) in row.iter().enumerate() {
            let mut word = bits;
            while word != 0 {
                let r = w * 64 + word.trailing_zeros() as usize;
                word &= word - 1;
                let lost = path_lost[last_rank[r] as usize];
                if lost {
                    report.congestion_events[r] += 1;
                } else {
                    report.delivered[r] += 1;
                }
                let level = membership.requested_level(r);
                let ev = PacketEvent {
                    slot,
                    layer,
                    lost,
                    marker: if lost { None } else { mk },
                    level,
                    layer_count: m,
                };
                match controllers[r].on_packet(&ev) {
                    Action::Stay => {}
                    Action::JoinUp => {
                        if level < m {
                            settle_offered(
                                &mut report.offered,
                                layer_cum,
                                settled_prefix,
                                r,
                                level,
                                level + 1,
                            );
                            membership.request_level(slot, r, level + 1);
                        }
                    }
                    Action::LeaveDown => {
                        if level > 1 {
                            settle_offered(
                                &mut report.offered,
                                layer_cum,
                                settled_prefix,
                                r,
                                level,
                                level - 1,
                            );
                            membership.request_level(slot, r, level - 1);
                        }
                    }
                }
            }
        }
    }

    // Final settle at the end-of-run levels, then park the link index for
    // the next run.
    for (r, settled) in settled_prefix.iter().enumerate().take(n) {
        let level = membership.requested_level(r);
        let prefix: u64 = layer_cum[..level].iter().sum();
        report.offered[r] += prefix - settled;
        report.final_levels[r] = level;
    }
    *link_index = membership.detach_link_index();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NoMarkers;
    use mlf_net::{Graph, Network, Session};

    /// A two-level binary tree: root -> {A, B}, A -> {r0, r1}, B -> {r2, r3}.
    fn two_level_tree() -> Network {
        let mut g = Graph::new();
        let root = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        g.add_link(root, a, 1000.0).unwrap(); // l0
        g.add_link(root, b, 1000.0).unwrap(); // l1
        let mut recv = Vec::new();
        for &hub in &[a, a, b, b] {
            let v = g.add_node();
            g.add_link(hub, v, 1000.0).unwrap();
            recv.push(v);
        }
        Network::new(g, vec![Session::multi_rate(root, recv)]).unwrap()
    }

    struct Pin(usize);
    impl ReceiverController for Pin {
        fn on_packet(&mut self, ev: &PacketEvent) -> Action {
            use std::cmp::Ordering::*;
            match ev.level.cmp(&self.0) {
                Less => Action::JoinUp,
                Equal => Action::Stay,
                Greater => Action::LeaveDown,
            }
        }
    }

    fn lossless_cfg(net: &Network, layers: usize) -> TreeConfig {
        TreeConfig {
            layer_rates: (0..layers)
                .map(|i| {
                    if i == 0 {
                        1.0
                    } else {
                        (1u64 << (i - 1)) as f64
                    }
                })
                .collect(),
            link_loss: vec![LossProcess::bernoulli(0.0); net.link_count()],
            join_latency: 0,
            leave_latency: 0,
        }
    }

    #[test]
    fn per_link_usage_follows_subtree_maxima() {
        let net = two_level_tree();
        let cfg = lossless_cfg(&net, 4); // rates 1,1,2,4; total 8
                                         // Levels: r0=4, r1=1 (A side); r2=2, r3=2 (B side).
        let mut ctls = vec![Pin(4), Pin(1), Pin(2), Pin(2)];
        let report = run_tree_expect(&net, &cfg, &mut ctls, &mut NoMarkers, 80_000, 1);
        // Steady state: l0 (A trunk) carries level 4 = all slots; l1 (B
        // trunk) carries level 2 = rate 2 of 8.
        let total = report.slots as f64;
        assert!((report.carried[0] as f64 / total - 1.0).abs() < 0.01);
        assert!((report.carried[1] as f64 / total - 0.25).abs() < 0.01);
        // Trunk redundancies are ~1: subtree maxima are static.
        assert!((report.link_redundancy(LinkId(0)).unwrap() - 1.0).abs() < 0.02);
        assert!((report.link_redundancy(LinkId(1)).unwrap() - 1.0).abs() < 0.02);
        assert!(report.max_redundancy() < 1.05);
    }

    #[test]
    fn interior_loss_is_shared_by_the_subtree() {
        let net = two_level_tree();
        let mut cfg = lossless_cfg(&net, 4);
        cfg.link_loss[0] = LossProcess::bernoulli(0.2); // A trunk lossy
        let mut ctls = vec![Pin(4), Pin(4), Pin(4), Pin(4)];
        let report = run_tree_expect(&net, &cfg, &mut ctls, &mut NoMarkers, 40_000, 2);
        // r0 and r1 (below the lossy trunk) lose the same packets.
        assert_eq!(report.congestion_events[0], report.congestion_events[1]);
        assert!(report.congestion_events[0] > 0);
        // r2 and r3 lose nothing.
        assert_eq!(report.congestion_events[2], 0);
        assert_eq!(report.congestion_events[3], 0);
    }

    #[test]
    fn star_reduces_to_the_flat_engine() {
        // Depth-2 tree == the engine::run_star model: compare exact
        // accounting with a static configuration.
        let star = mlf_net::topology::star_network(3, 1000.0, 1000.0);
        let cfg = lossless_cfg(&star, 4);
        let mut ctls = vec![Pin(3), Pin(2), Pin(1)];
        let report = run_tree_expect(&star, &cfg, &mut ctls, &mut NoMarkers, 8_000, 3);
        // Shared link (l0) carries the max level 3 = rate 4/8 of slots.
        assert!((report.carried[0] as f64 / 8000.0 - 0.5).abs() < 0.02);
        assert!((report.link_redundancy(LinkId(0)).unwrap() - 1.0).abs() < 0.05);
        // Fanout links carry their own receiver's subscription.
        assert!(report.carried[1] > report.carried[2]);
        assert!(report.carried[2] > report.carried[3]);
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let net = two_level_tree();
        let mut cfg = lossless_cfg(&net, 6);
        for l in cfg.link_loss.iter_mut() {
            *l = LossProcess::bernoulli(0.02);
        }
        let run = |seed| {
            let mut ctls = vec![Pin(5), Pin(3), Pin(6), Pin(2)];
            let r = run_tree_expect(&net, &cfg, &mut ctls, &mut NoMarkers, 10_000, seed);
            // With pinned levels, `carried`/`offered` are loss-independent;
            // the seed shows up in the loss draws, i.e. `delivered`.
            (r.carried.clone(), r.offered.clone(), r.delivered.clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).2, run(8).2);
    }

    #[test]
    fn scratch_reuse_across_shapes_is_equivalent_to_fresh_runs() {
        let tree = two_level_tree();
        let star = mlf_net::topology::star_network(5, 1000.0, 1000.0);
        let tree_cfg = {
            let mut c = lossless_cfg(&tree, 4);
            c.link_loss[0] = LossProcess::bursty_with_average(0.05, 3.0);
            c.join_latency = 2;
            c
        };
        let star_cfg = {
            let mut c = lossless_cfg(&star, 6);
            c.link_loss[3] = LossProcess::bernoulli(0.04);
            c.leave_latency = 9;
            c
        };
        let mut scratch = TreeScratch::default();
        let mut report = TreeReport::empty();
        for round in 0..3 {
            let mut ctls = vec![Pin(4), Pin(1), Pin(3), Pin(2)];
            run_tree_into(
                &tree,
                &tree_cfg,
                &mut ctls,
                &mut NoMarkers,
                5_000,
                round,
                &mut report,
                &mut scratch,
            )
            .unwrap();
            let mut fresh_ctls = vec![Pin(4), Pin(1), Pin(3), Pin(2)];
            let fresh = run_tree_expect(
                &tree,
                &tree_cfg,
                &mut fresh_ctls,
                &mut NoMarkers,
                5_000,
                round,
            );
            assert_eq!(report, fresh, "tree round {round}");

            let mut ctls = vec![Pin(6), Pin(2), Pin(5), Pin(1), Pin(3)];
            run_tree_into(
                &star,
                &star_cfg,
                &mut ctls,
                &mut NoMarkers,
                5_000,
                round,
                &mut report,
                &mut scratch,
            )
            .unwrap();
            let mut fresh_ctls = vec![Pin(6), Pin(2), Pin(5), Pin(1), Pin(3)];
            let fresh = run_tree_expect(
                &star,
                &star_cfg,
                &mut fresh_ctls,
                &mut NoMarkers,
                5_000,
                round,
            );
            assert_eq!(report, fresh, "star round {round}");
        }
    }

    #[test]
    fn rejects_multi_session_networks() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 1.0).unwrap();
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[1]), Session::unicast(n[0], n[1])],
        )
        .unwrap();
        let cfg = TreeConfig {
            layer_rates: vec![1.0],
            link_loss: vec![LossProcess::bernoulli(0.0)],
            join_latency: 0,
            leave_latency: 0,
        };
        let mut ctls = vec![Pin(1)];
        let err = run_tree(&net, &cfg, &mut ctls, &mut NoMarkers, 10, 0).unwrap_err();
        assert_eq!(err, TreeConfigError::SessionCountNotOne { sessions: 2 });
        assert!(err.to_string().contains("one session"));
    }

    #[test]
    fn rejects_mismatched_and_degenerate_configs() {
        let net = two_level_tree();
        let cfg = lossless_cfg(&net, 4);
        let run = |cfg: &TreeConfig, ctls: &mut Vec<Pin>| {
            run_tree(&net, cfg, ctls, &mut NoMarkers, 10, 0).unwrap_err()
        };
        // Wrong controller count.
        assert_eq!(
            run(&cfg, &mut vec![Pin(1)]),
            TreeConfigError::ControllerCountMismatch {
                controllers: 1,
                receivers: 4
            }
        );
        let four = || vec![Pin(1), Pin(1), Pin(1), Pin(1)];
        // Wrong loss process count.
        let mut bad = cfg.clone();
        bad.link_loss.pop();
        assert_eq!(
            run(&bad, &mut four()),
            TreeConfigError::LossProcessCountMismatch {
                processes: 5,
                links: 6
            }
        );
        // No layers at all.
        let mut bad = cfg.clone();
        bad.layer_rates.clear();
        assert_eq!(run(&bad, &mut four()), TreeConfigError::NoLayers);
        // A non-positive rate.
        let mut bad = cfg.clone();
        bad.layer_rates[2] = 0.0;
        assert_eq!(
            run(&bad, &mut four()),
            TreeConfigError::BadLayerRate {
                layer: 3,
                rate: 0.0
            }
        );
    }
}
