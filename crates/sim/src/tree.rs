//! Packet-level simulation on arbitrary multicast **trees** — a
//! generalization of the Figure 7 star engine.
//!
//! The paper's quantitative experiments use the modified star because the
//! shared link is where redundancy lives. Its *model*, however, is a
//! general network: a packet of layer `L` traverses a link iff some
//! receiver downstream of that link is subscribed to `L`, and loss on an
//! interior link is *shared* by the whole subtree below it. This engine
//! implements that model for any sender-rooted tree, measuring redundancy
//! on every link:
//!
//! * the star reduces to a depth-2 tree (the regression tests pin engine
//!   agreement on that case);
//! * deeper trees expose the correlation structure the star cannot: two
//!   receivers behind a common lossy branch see correlated congestion and
//!   stay synchronized, receivers on disjoint branches drift apart — so
//!   redundancy concentrates on links whose subtrees straddle independent
//!   loss, exactly the paper's "coordination matters where loss is
//!   uncorrelated" reading at every level of the hierarchy.

use crate::engine::{Action, LayerInterleaver, MarkerSource, PacketEvent, ReceiverController};
use crate::events::Tick;
use crate::loss::LossProcess;
use crate::multicast::MembershipTable;
use crate::rng::SimRng;
use mlf_net::{LinkId, Network, ReceiverId, SessionId};

/// Configuration of a tree run: a single multicast session on a
/// sender-rooted tree network, one loss process per link.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Per-layer packet rates (the exponential ladder for the §4 protocols).
    pub layer_rates: Vec<f64>,
    /// Loss process per link, indexed by [`LinkId`].
    pub link_loss: Vec<LossProcess>,
    /// Graft latency in slots.
    pub join_latency: Tick,
    /// Prune latency in slots.
    pub leave_latency: Tick,
}

/// Measurements from one tree run.
#[derive(Debug, Clone)]
pub struct TreeReport {
    /// Slots simulated.
    pub slots: u64,
    /// Packets carried per link (`u_{i,j}` numerators), by [`LinkId`].
    pub carried: Vec<u64>,
    /// Per receiver: packets on layers it had requested at emission.
    pub offered: Vec<u64>,
    /// Per receiver: packets delivered.
    pub delivered: Vec<u64>,
    /// Per receiver: congestion events observed.
    pub congestion_events: Vec<u64>,
    /// Final requested levels.
    pub final_levels: Vec<usize>,
    /// `downstream[j]` = receiver indices whose data-path crosses link `j`.
    pub downstream: Vec<Vec<usize>>,
}

impl TreeReport {
    /// Redundancy of one link (Definition 3): packets carried over the
    /// largest downstream receiver's offered count. `None` for links with
    /// no subscribed downstream traffic.
    pub fn link_redundancy(&self, link: LinkId) -> Option<f64> {
        let max = self.downstream[link.0]
            .iter()
            .map(|&r| self.offered[r])
            .max()?;
        if max == 0 {
            return None;
        }
        Some(self.carried[link.0] as f64 / max as f64)
    }

    /// The worst per-link redundancy across the tree.
    pub fn max_redundancy(&self) -> f64 {
        (0..self.carried.len())
            .filter_map(|j| self.link_redundancy(LinkId(j)))
            .fold(1.0, f64::max)
    }
}

/// Run a layered session over a tree network.
///
/// `net` must contain exactly one session (the multicast under test) whose
/// routes form a sender-rooted tree: every receiver's data-path must be the
/// unique tree path (guaranteed when the graph is a tree, e.g. from
/// `mlf_net::topology::{star, kary_tree, random_tree}`).
#[allow(clippy::needless_range_loop)] // parallel per-receiver tables
pub fn run_tree<C: ReceiverController, M: MarkerSource>(
    net: &Network,
    cfg: &TreeConfig,
    controllers: &mut [C],
    marker: &mut M,
    slots: u64,
    seed: u64,
) -> TreeReport {
    assert_eq!(net.session_count(), 1, "one session per tree run");
    let session = SessionId(0);
    let n = net.session(session).receivers.len();
    assert_eq!(controllers.len(), n, "one controller per receiver");
    let n_links = net.link_count();
    assert_eq!(cfg.link_loss.len(), n_links, "one loss process per link");
    let m = cfg.layer_rates.len();

    // Downstream receiver sets per link (R_{1,j}).
    let downstream: Vec<Vec<usize>> = (0..n_links)
        .map(|j| {
            net.receivers_of_session_on_link(LinkId(j), session)
                .to_vec()
        })
        .collect();

    let base = SimRng::seed_from_u64(seed);
    let mut link_rng: Vec<SimRng> = (0..n_links).map(|j| base.split(j as u64)).collect();
    let mut link_loss = cfg.link_loss.clone();
    let mut membership =
        MembershipTable::new(n, m, 1).with_latencies(cfg.join_latency, cfg.leave_latency);
    let mut interleaver = LayerInterleaver::new(&cfg.layer_rates);

    let mut report = TreeReport {
        slots,
        carried: vec![0; n_links],
        offered: vec![0; n],
        delivered: vec![0; n],
        congestion_events: vec![0; n],
        final_levels: vec![1; n],
        downstream,
    };

    // Per-slot scratch: loss fate per link (None = not carried this slot).
    let mut link_lost: Vec<Option<bool>> = vec![None; n_links];

    for slot in 0..slots {
        membership.advance_to(slot);
        let layer = interleaver.next_layer();
        let mk = marker.marker(slot, layer);

        // Which links carry this packet: those with an effectively
        // subscribed downstream receiver. Draw loss once per carrying link
        // (the draw is what correlates the subtree).
        for j in 0..n_links {
            let sub = report.downstream[j]
                .iter()
                .any(|&r| membership.subscribed(r, layer));
            link_lost[j] = if sub {
                report.carried[j] += 1;
                Some(link_loss[j].sample(&mut link_rng[j]))
            } else {
                None
            };
        }

        for r in 0..n {
            let level = membership.requested_level(r);
            if layer <= level {
                report.offered[r] += 1;
            }
            if !(membership.wants(r, layer) && membership.subscribed(r, layer)) {
                continue;
            }
            // End-to-end fate: OR of the losses on the receiver's path.
            let rid = ReceiverId::new(0, r);
            let lost = net.route(rid).iter().any(|&l| link_lost[l.0] == Some(true));
            if lost {
                report.congestion_events[r] += 1;
            } else {
                report.delivered[r] += 1;
            }
            let ev = PacketEvent {
                slot,
                layer,
                lost,
                marker: if lost { None } else { mk },
                level,
                layer_count: m,
            };
            match controllers[r].on_packet(&ev) {
                Action::Stay => {}
                Action::JoinUp => {
                    if level < m {
                        membership.request_level(slot, r, level + 1);
                    }
                }
                Action::LeaveDown => {
                    if level > 1 {
                        membership.request_level(slot, r, level - 1);
                    }
                }
            }
        }
    }
    for r in 0..n {
        report.final_levels[r] = membership.requested_level(r);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NoMarkers;
    use mlf_net::{Graph, Network, Session};

    /// A two-level binary tree: root -> {A, B}, A -> {r0, r1}, B -> {r2, r3}.
    fn two_level_tree() -> Network {
        let mut g = Graph::new();
        let root = g.add_node();
        let a = g.add_node();
        let b = g.add_node();
        g.add_link(root, a, 1000.0).unwrap(); // l0
        g.add_link(root, b, 1000.0).unwrap(); // l1
        let mut recv = Vec::new();
        for &hub in &[a, a, b, b] {
            let v = g.add_node();
            g.add_link(hub, v, 1000.0).unwrap();
            recv.push(v);
        }
        Network::new(g, vec![Session::multi_rate(root, recv)]).unwrap()
    }

    struct Pin(usize);
    impl ReceiverController for Pin {
        fn on_packet(&mut self, ev: &PacketEvent) -> Action {
            use std::cmp::Ordering::*;
            match ev.level.cmp(&self.0) {
                Less => Action::JoinUp,
                Equal => Action::Stay,
                Greater => Action::LeaveDown,
            }
        }
    }

    fn lossless_cfg(net: &Network, layers: usize) -> TreeConfig {
        TreeConfig {
            layer_rates: (0..layers)
                .map(|i| {
                    if i == 0 {
                        1.0
                    } else {
                        (1u64 << (i - 1)) as f64
                    }
                })
                .collect(),
            link_loss: vec![LossProcess::bernoulli(0.0); net.link_count()],
            join_latency: 0,
            leave_latency: 0,
        }
    }

    #[test]
    fn per_link_usage_follows_subtree_maxima() {
        let net = two_level_tree();
        let cfg = lossless_cfg(&net, 4); // rates 1,1,2,4; total 8
                                         // Levels: r0=4, r1=1 (A side); r2=2, r3=2 (B side).
        let mut ctls = vec![Pin(4), Pin(1), Pin(2), Pin(2)];
        let report = run_tree(&net, &cfg, &mut ctls, &mut NoMarkers, 80_000, 1);
        // Steady state: l0 (A trunk) carries level 4 = all slots; l1 (B
        // trunk) carries level 2 = rate 2 of 8.
        let total = report.slots as f64;
        assert!((report.carried[0] as f64 / total - 1.0).abs() < 0.01);
        assert!((report.carried[1] as f64 / total - 0.25).abs() < 0.01);
        // Trunk redundancies are ~1: subtree maxima are static.
        assert!((report.link_redundancy(LinkId(0)).unwrap() - 1.0).abs() < 0.02);
        assert!((report.link_redundancy(LinkId(1)).unwrap() - 1.0).abs() < 0.02);
        assert!(report.max_redundancy() < 1.05);
    }

    #[test]
    fn interior_loss_is_shared_by_the_subtree() {
        let net = two_level_tree();
        let mut cfg = lossless_cfg(&net, 4);
        cfg.link_loss[0] = LossProcess::bernoulli(0.2); // A trunk lossy
        let mut ctls = vec![Pin(4), Pin(4), Pin(4), Pin(4)];
        let report = run_tree(&net, &cfg, &mut ctls, &mut NoMarkers, 40_000, 2);
        // r0 and r1 (below the lossy trunk) lose the same packets.
        assert_eq!(report.congestion_events[0], report.congestion_events[1]);
        assert!(report.congestion_events[0] > 0);
        // r2 and r3 lose nothing.
        assert_eq!(report.congestion_events[2], 0);
        assert_eq!(report.congestion_events[3], 0);
    }

    #[test]
    fn star_reduces_to_the_flat_engine() {
        // Depth-2 tree == the engine::run_star model: compare redundancy of
        // the Deterministic-like Pin oscillation… instead compare exact
        // accounting with a static configuration.
        let star = mlf_net::topology::star_network(3, 1000.0, 1000.0);
        let cfg = lossless_cfg(&star, 4);
        let mut ctls = vec![Pin(3), Pin(2), Pin(1)];
        let report = run_tree(&star, &cfg, &mut ctls, &mut NoMarkers, 8_000, 3);
        // Shared link (l0) carries the max level 3 = rate 4/8 of slots.
        assert!((report.carried[0] as f64 / 8000.0 - 0.5).abs() < 0.02);
        assert!((report.link_redundancy(LinkId(0)).unwrap() - 1.0).abs() < 0.05);
        // Fanout links carry their own receiver's subscription.
        assert!(report.carried[1] > report.carried[2]);
        assert!(report.carried[2] > report.carried[3]);
    }

    #[test]
    fn deterministic_runs_are_reproducible() {
        let net = two_level_tree();
        let mut cfg = lossless_cfg(&net, 6);
        for l in cfg.link_loss.iter_mut() {
            *l = LossProcess::bernoulli(0.02);
        }
        let run = |seed| {
            let mut ctls = vec![Pin(5), Pin(3), Pin(6), Pin(2)];
            let r = run_tree(&net, &cfg, &mut ctls, &mut NoMarkers, 10_000, seed);
            // With pinned levels, `carried`/`offered` are loss-independent;
            // the seed shows up in the loss draws, i.e. `delivered`.
            (r.carried.clone(), r.offered.clone(), r.delivered.clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).2, run(8).2);
    }

    #[test]
    #[should_panic(expected = "one session")]
    fn rejects_multi_session_networks() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 1.0).unwrap();
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[1]), Session::unicast(n[0], n[1])],
        )
        .unwrap();
        let cfg = TreeConfig {
            layer_rates: vec![1.0],
            link_loss: vec![LossProcess::bernoulli(0.0)],
            join_latency: 0,
            leave_latency: 0,
        };
        let mut ctls = vec![Pin(1)];
        let _ = run_tree(&net, &cfg, &mut ctls, &mut NoMarkers, 10, 0);
    }
}
