//! # mlf-sim — deterministic packet-level multicast simulator
//!
//! The simulation substrate for Section 4 of *"The Impact of Multicast
//! Layering on Network Fairness"* (SIGCOMM '99). The paper's authors used an
//! unreleased ad-hoc simulator; this crate rebuilds the exact model the
//! paper describes:
//!
//! * slotted packet time with layers interleaved by deterministic weighted
//!   round-robin ([`engine::LayerInterleaver`]);
//! * Bernoulli per-link loss — one *shared* draw on the sender-side link
//!   (correlated loss) and independent draws per fanout link — plus a
//!   Gilbert–Elliott burst-loss extension ([`loss`]);
//! * idealized multicast membership with optional join/leave latency for
//!   the Section 5 ablations ([`multicast`]), backed by the incrementally
//!   maintained level-bucketed [`index::LevelIndex`] (O(1) max effective
//!   level, per-layer subscriber bitsets);
//! * the modified-star engine measuring shared-link redundancy
//!   ([`engine::run_star`]) — per-slot cost O(subscribed(layer)) +
//!   O(receivers/64) via the level index and lazy event-time accounting,
//!   with the
//!   pre-index scan engine frozen in [`mod@reference`] and bitwise equality
//!   between the two pinned by `tests/star_engine_differential.rs`;
//! * bit-for-bit reproducible RNG with per-component substreams ([`rng`]);
//! * Welford statistics for the 30-trial experiment protocol ([`stats`]);
//! * a generic future-event list with deterministic tie-breaking
//!   ([`events`]);
//! * a general-tree engine ([`tree`]) extending the star model to arbitrary
//!   sender-rooted multicast trees with per-link loss and per-link
//!   redundancy measurement — running on the per-link carrying bitsets of
//!   [`index::LinkLevelIndex`] (per-slot cost O(carrying links) +
//!   O(subscribed receivers), good for 10⁵+ receivers in one session),
//!   with the pre-bitset scan engine frozen in [`mod@reference_tree`] and
//!   bitwise equality pinned by `tests/tree_engine_differential.rs`.
//!
//! The Section 4 protocol state machines themselves live in
//! `mlf-protocols`; this crate only knows the [`engine::ReceiverController`]
//! interface they implement. The workspace-level `ARCHITECTURE.md`
//! explains how these engines, their frozen references, and the bench
//! regression gates fit together.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod events;
pub mod index;
pub mod loss;
pub mod multicast;
pub mod reference;
pub mod reference_tree;
pub mod rng;
pub mod stats;
pub mod tree;

pub use engine::{
    run_star, run_star_into, Action, LayerInterleaver, MarkerSource, NoMarkers, PacketEvent,
    ReceiverController, StarConfig, StarReport, StarScratch,
};
pub use events::{EventQueue, Tick};
pub use index::{LevelIndex, LinkLevelIndex};
pub use loss::LossProcess;
pub use multicast::MembershipTable;
pub use rng::SimRng;
pub use stats::RunningStats;
pub use tree::{
    run_tree, run_tree_expect, run_tree_into, TreeConfig, TreeConfigError, TreeReport, TreeScratch,
};
