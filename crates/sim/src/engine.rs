//! The packet-level engine for the Figure 7/8 experiments: a layered sender
//! behind one shared link, fanning out to receivers over independent links.
//!
//! Time is slotted: each slot carries exactly one packet of the aggregate
//! stream, with layers interleaved by smooth weighted round-robin in
//! proportion to their rates (deterministic — no RNG in the schedule). For
//! each packet:
//!
//! 1. The packet belongs to a layer `L`. It traverses the **shared link**
//!    iff some receiver is effectively subscribed to `L` (multicast
//!    pruning: "a packet traverses a link only if it is received by some
//!    receiver downstream"); the engine counts this as the session's shared-
//!    link usage `u`.
//! 2. One loss draw on the shared link decides the packet's fate for *all*
//!    receivers at once (this is what makes shared loss *correlated*).
//! 3. Each subscribed receiver additionally draws loss on its own fanout
//!    link, sees the packet (or a congestion event), and its
//!    [`ReceiverController`] reacts by staying, joining one layer up, or
//!    leaving one layer down — the Section 4 state machines.
//!
//! The engine measures the long-term redundancy of the shared link:
//! `carried / max_r offered_r`, where `offered_r` counts the packets on
//! layers the receiver had requested at emission time (the receiver's
//! transmission rate `a_{i,k}`, which "equals the rate received, barring
//! loss").
//!
//! ## The level-indexed hot loop
//!
//! Per slot the engine does **O(subscribed(layer)) + O(receivers/64)**
//! work (the latter a word-scan/snapshot of the layer's bitset row), not
//! O(receivers): the shared-link test reads the [`LevelIndex`]'s cached
//! bucket maximum, the delivery loop walks the layer's subscriber bitset in
//! ascending receiver id (visiting only receivers it would deliver to), and
//! the per-receiver `offered`/`level_slot_sum` accounting is settled
//! **lazily at level-change events** from cumulative per-layer emitted-slot
//! counters (plus once at run end) instead of every slot. The pre-index
//! scan engine is preserved verbatim in [`crate::reference`]; the rewrite's
//! contract — bitwise-identical [`StarReport`]s, resting on the
//! RNG-draw-preservation argument spelled out in [`crate::multicast`] — is
//! pinned by `tests/star_engine_differential.rs`.
//!
//! [`LevelIndex`]: crate::index::LevelIndex

use crate::events::Tick;
use crate::loss::LossProcess;
use crate::multicast::MembershipTable;
use crate::rng::SimRng;

/// What a receiver's protocol sees for one packet on a layer it requested.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacketEvent {
    /// The packet's slot (one packet per slot).
    pub slot: Tick,
    /// The packet's layer (1-based).
    pub layer: usize,
    /// Whether the packet was lost on this receiver's path (shared or
    /// fanout link) — a *congestion event* in the protocols' terms.
    pub lost: bool,
    /// Sender join-marker carried by this packet, if any: receivers at
    /// level ≤ the marker value should join one layer (Coordinated
    /// protocol). Markers implied for lower levels per the paper.
    pub marker: Option<usize>,
    /// The receiver's current requested subscription level.
    pub level: usize,
    /// Total number of layers `M`.
    pub layer_count: usize,
}

/// A receiver's reaction to a packet event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the current subscription.
    Stay,
    /// Join one more layer (no-op at level `M`).
    JoinUp,
    /// Leave the top layer (no-op at level 1 — receivers never leave the
    /// base layer in the Section 4 protocols).
    LeaveDown,
}

/// A layered congestion-control receiver: reacts to each packet event.
pub trait ReceiverController {
    /// Handle one packet event and decide the subscription action.
    fn on_packet(&mut self, ev: &PacketEvent) -> Action;
}

impl ReceiverController for Box<dyn ReceiverController> {
    fn on_packet(&mut self, ev: &PacketEvent) -> Action {
        (**self).on_packet(ev)
    }
}

/// The sender side of join coordination: may attach a marker to each slot's
/// packet. Uncoordinated senders return `None` forever.
pub trait MarkerSource {
    /// The marker (if any) to attach to the packet at `slot` on `layer`.
    fn marker(&mut self, slot: Tick, layer: usize) -> Option<usize>;
}

/// A sender that never emits markers.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMarkers;

impl MarkerSource for NoMarkers {
    fn marker(&mut self, _slot: Tick, _layer: usize) -> Option<usize> {
        None
    }
}

/// Configuration of one star run.
#[derive(Debug, Clone)]
pub struct StarConfig {
    /// Per-layer packet rates (relative weights; the Section 4 exponential
    /// schedule is `[1, 1, 2, 4, ...]`).
    pub layer_rates: Vec<f64>,
    /// Loss process of the shared link abutting the sender.
    pub shared_loss: LossProcess,
    /// Loss process of each receiver's fanout link (length = #receivers).
    pub fanout_loss: Vec<LossProcess>,
    /// Graft latency in slots (0 = the paper's idealized instant join).
    pub join_latency: Tick,
    /// Prune latency in slots (0 = idealized instant leave).
    pub leave_latency: Tick,
}

impl StarConfig {
    /// The Figure 8 setting: `layers` exponential layers, `receivers`
    /// receivers with identical independent loss `p_independent`, shared
    /// loss `p_shared`, idealized latencies.
    pub fn figure8(
        layers: usize,
        receivers: usize,
        p_shared: f64,
        p_independent: f64,
    ) -> StarConfig {
        let schedule = mlf_layering::LayerSchedule::exponential(layers);
        StarConfig {
            layer_rates: (1..=layers).map(|i| schedule.layer_rate(i)).collect(),
            shared_loss: LossProcess::bernoulli(p_shared),
            fanout_loss: vec![LossProcess::bernoulli(p_independent); receivers],
            join_latency: 0,
            leave_latency: 0,
        }
    }

    /// This configuration with the given join (graft) and leave (prune)
    /// latencies in slots — how the latency-ablation sweeps derive their
    /// per-point configurations from a template.
    pub fn with_latencies(mut self, join: Tick, leave: Tick) -> StarConfig {
        self.join_latency = join;
        self.leave_latency = leave;
        self
    }

    /// Number of receivers.
    pub fn receiver_count(&self) -> usize {
        self.fanout_loss.len()
    }

    /// Number of layers `M`.
    pub fn layer_count(&self) -> usize {
        self.layer_rates.len()
    }
}

/// Measurements from one star run.
///
/// `Default` is the empty pre-run state; [`run_star_into`] (re)sizes and
/// resets every field from its inputs. Equality is exact on every counter
/// and final level (all integers) — the engine differential compares whole
/// reports with `==`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StarReport {
    /// Total slots simulated (= packets emitted by the sender).
    pub slots: u64,
    /// Packets that traversed the shared link (some receiver subscribed).
    pub shared_carried: u64,
    /// Per receiver: packets on layers it had *requested* at emission (its
    /// nominal rate `a_{i,k}`, loss notwithstanding).
    pub offered: Vec<u64>,
    /// Per receiver: packets actually delivered (requested, subscribed and
    /// not lost).
    pub delivered: Vec<u64>,
    /// Per receiver: congestion events observed (lost packets on requested
    /// layers).
    pub congestion_events: Vec<u64>,
    /// Per receiver: sum of requested level over slots (for mean level).
    pub level_slot_sum: Vec<u64>,
    /// Final requested levels.
    pub final_levels: Vec<usize>,
}

/// Exact `num / den` as `f64`.
fn ratio(num: u64, den: u64) -> f64 {
    // mlf-lint: allow(as-float-cast, reason = "slot and packet counters stay far below 2^53 for any feasible run length, so both casts are exact")
    num as f64 / den as f64
}

impl StarReport {
    /// The shared link's long-term redundancy (Definition 3):
    /// `carried / max_r offered_r`. `None` if no receiver was offered
    /// anything (degenerate).
    pub fn shared_redundancy(&self) -> Option<f64> {
        let max = *self.offered.iter().max()?;
        if max == 0 {
            return None;
        }
        Some(ratio(self.shared_carried, max))
    }

    /// Mean requested subscription level of a receiver over the run.
    pub fn mean_level(&self, r: usize) -> f64 {
        ratio(self.level_slot_sum[r], self.slots)
    }

    /// A receiver's goodput in packets per slot.
    pub fn goodput(&self, r: usize) -> f64 {
        ratio(self.delivered[r], self.slots)
    }

    /// A receiver's observed loss rate among requested packets.
    pub fn loss_rate(&self, r: usize) -> f64 {
        if self.offered[r] == 0 {
            0.0
        } else {
            ratio(self.congestion_events[r], self.offered[r])
        }
    }
}

/// Smooth weighted round-robin interleaver: deterministic layer schedule
/// proportional to the per-layer rates.
#[derive(Debug, Clone)]
pub struct LayerInterleaver {
    weights: Vec<f64>,
    credit: Vec<f64>,
    total: f64,
}

impl LayerInterleaver {
    /// Build an interleaver for the given per-layer rates.
    pub fn new(rates: &[f64]) -> Self {
        assert!(!rates.is_empty() && rates.iter().all(|&r| r > 0.0));
        LayerInterleaver {
            weights: rates.to_vec(),
            credit: vec![0.0; rates.len()],
            total: rates.iter().sum(),
        }
    }

    /// The layer (1-based) of the next slot's packet.
    pub fn next_layer(&mut self) -> usize {
        let mut best = 0;
        for i in 0..self.weights.len() {
            self.credit[i] += self.weights[i];
            if self.credit[i] > self.credit[best] {
                best = i;
            }
        }
        self.credit[best] -= self.total;
        best + 1
    }
}

/// Reusable buffers for back-to-back [`run_star`] calls (trial loops).
///
/// One star run needs per-receiver copies of the configured loss processes
/// (sampling mutates their state), per-receiver RNG streams, the membership
/// table with its level index (bitset rows sized to receivers × layers),
/// and the lazy-accounting checkpoint vectors; allocating those per trial
/// dominated the allocation profile of `run_point`-style experiments. A
/// scratch re-seeds the same buffers instead: [`run_star_into`] produces
/// results bitwise identical to [`run_star`] — the loss state is
/// `clone_from`-reset from `cfg`, every RNG is re-derived from the run
/// seed, and the membership table is [`MembershipTable::reset`] to the
/// all-at-level-1 start state — so nothing carries over between trials
/// except the allocations.
#[derive(Debug, Clone, Default)]
pub struct StarScratch {
    fanout_rng: Vec<SimRng>,
    fanout_loss: Vec<LossProcess>,
    membership: MembershipTable,
    /// `layer_cum[L-1]` = slots emitted on layer `L` so far, including the
    /// slot being processed: the lazy accounting's cumulative counters.
    layer_cum: Vec<u64>,
    /// Per receiver: slots already settled into `level_slot_sum`.
    settled_slots: Vec<u64>,
    /// Per receiver: the layer-prefix count (`Σ layer_cum[..level]`) at its
    /// last settlement, for its current requested level.
    settled_prefix: Vec<u64>,
    /// Snapshot of the slot layer's subscriber bitset row (a receiver's own
    /// action must not edit the row mid-walk).
    row: Vec<u64>,
}

/// Settle receiver `r`'s lazy `offered`/`level_slot_sum` accounting through
/// the `slots_done` slots emitted so far (its requested level has been
/// `old_level` since its last settlement), then re-checkpoint at
/// `new_level`. Integer arithmetic throughout: exactly the sums the
/// per-slot accounting loop of [`crate::reference`] produces.
#[allow(clippy::too_many_arguments)] // private hot-path helper over scratch fields
fn settle_receiver(
    offered: &mut [u64],
    level_slot_sum: &mut [u64],
    layer_cum: &[u64],
    settled_slots: &mut [u64],
    settled_prefix: &mut [u64],
    r: usize,
    old_level: usize,
    new_level: usize,
    slots_done: u64,
) {
    let prefix_old: u64 = layer_cum[..old_level].iter().sum();
    offered[r] += prefix_old - settled_prefix[r];
    level_slot_sum[r] += old_level as u64 * (slots_done - settled_slots[r]);
    settled_slots[r] = slots_done;
    settled_prefix[r] = if new_level == old_level {
        prefix_old
    } else {
        layer_cum[..new_level].iter().sum()
    };
}

/// Run one star simulation for `slots` packets.
///
/// `controllers[r]` drives receiver `r`; all receivers start at level 1
/// (every receiver always holds the base layer). The run is deterministic
/// in (`cfg`, controllers' behaviour, `marker`, `slots`, `seed`).
///
/// This convenience wrapper allocates fresh buffers per call; trial loops
/// should reuse a [`StarScratch`] and an output report via
/// [`run_star_into`].
pub fn run_star<C: ReceiverController, M: MarkerSource>(
    cfg: &StarConfig,
    controllers: &mut [C],
    marker: &mut M,
    slots: u64,
    seed: u64,
) -> StarReport {
    let mut report = StarReport::default();
    run_star_into(
        cfg,
        controllers,
        marker,
        slots,
        seed,
        &mut report,
        &mut StarScratch::default(),
    );
    report
}

/// [`run_star`] into caller-provided report and scratch buffers: zero
/// steady-state allocation across repeated trials of one shape.
///
/// This is the level-indexed engine: per slot it visits only the
/// receivers actively subscribed to the slot's layer (ascending receiver
/// id, so every per-receiver RNG stream consumes exactly the draws the
/// reference engine gives it; one O(receivers/64) word-scan snapshots the
/// row), reads the shared-link subscription test from
/// the index's O(1) bucket maximum, and defers the per-receiver
/// `offered`/`level_slot_sum` accounting to join/leave events (and run
/// end). Bitwise identical to [`crate::reference::run_star`] by the
/// differential proptests.
#[allow(clippy::too_many_arguments)] // the run_star signature plus two buffers
pub fn run_star_into<C: ReceiverController, M: MarkerSource>(
    cfg: &StarConfig,
    controllers: &mut [C],
    marker: &mut M,
    slots: u64,
    seed: u64,
    report: &mut StarReport,
    scratch: &mut StarScratch,
) {
    let n = cfg.receiver_count();
    assert_eq!(controllers.len(), n, "one controller per receiver");
    let m = cfg.layer_count();
    assert!(m >= 1);

    let base = SimRng::seed_from_u64(seed);
    let mut shared_rng = base.split(u64::MAX);
    scratch.fanout_rng.clear();
    scratch
        .fanout_rng
        .extend((0..n).map(|r| base.split(r as u64)));
    let mut shared_loss = cfg.shared_loss.clone();
    scratch.fanout_loss.clone_from(&cfg.fanout_loss);

    scratch.membership.reset(n, m, 1);
    scratch
        .membership
        .set_latencies(cfg.join_latency, cfg.leave_latency);
    let reset_u64 = |v: &mut Vec<u64>, len: usize| {
        v.clear();
        v.resize(len, 0);
    };
    reset_u64(&mut scratch.layer_cum, m);
    reset_u64(&mut scratch.settled_slots, n);
    reset_u64(&mut scratch.settled_prefix, n);
    let StarScratch {
        fanout_rng,
        fanout_loss,
        membership,
        layer_cum,
        settled_slots,
        settled_prefix,
        row,
    } = scratch;
    let mut interleaver = LayerInterleaver::new(&cfg.layer_rates);

    report.slots = slots;
    report.shared_carried = 0;
    reset_u64(&mut report.offered, n);
    reset_u64(&mut report.delivered, n);
    reset_u64(&mut report.congestion_events, n);
    reset_u64(&mut report.level_slot_sum, n);
    report.final_levels.clear();
    report.final_levels.resize(n, 1);

    for slot in 0..slots {
        membership.advance_to(slot);
        let layer = interleaver.next_layer();
        let mk = marker.marker(slot, layer);
        // The slot now counts toward the cumulative per-layer emission
        // totals the lazy accounting settles from: a level change during
        // this slot's delivery bills the slot at the receiver's old level,
        // exactly as the reference's head-of-slot accounting loop did.
        layer_cum[layer - 1] += 1;
        let slots_done = slot + 1;

        // Shared link: carried iff any receiver is effectively subscribed —
        // an O(1) read of the index's cached bucket maximum.
        let carried = layer <= membership.max_effective_level();
        let lost_shared = if carried {
            report.shared_carried += 1;
            shared_loss.sample(&mut shared_rng)
        } else {
            false
        };

        // Deliver to each receiver that requested and effectively holds
        // the layer: exactly the set bits of the layer's subscriber row.
        // Snapshot the row first — a receiver's own join/leave may edit it,
        // but only at its own bit, whose visit has already happened; later
        // receivers' bits are untouched, matching the reference's
        // visit-time `wants && subscribed` checks.
        row.clear();
        row.extend_from_slice(membership.index().subscribers(layer));
        for (w, &bits) in row.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let r = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let lost = lost_shared || fanout_loss[r].sample(&mut fanout_rng[r]);
                if lost {
                    report.congestion_events[r] += 1;
                } else {
                    report.delivered[r] += 1;
                }
                let level = membership.requested_level(r);
                let ev = PacketEvent {
                    slot,
                    layer,
                    lost,
                    marker: if lost { None } else { mk },
                    level,
                    layer_count: m,
                };
                let target = match controllers[r].on_packet(&ev) {
                    Action::Stay => continue,
                    Action::JoinUp => {
                        if level >= m {
                            continue;
                        }
                        level + 1
                    }
                    Action::LeaveDown => {
                        if level <= 1 {
                            continue;
                        }
                        level - 1
                    }
                };
                settle_receiver(
                    &mut report.offered,
                    &mut report.level_slot_sum,
                    layer_cum,
                    settled_slots,
                    settled_prefix,
                    r,
                    level,
                    target,
                    slots_done,
                );
                membership.request_level(slot, r, target);
            }
        }
    }
    for r in 0..n {
        let level = membership.requested_level(r);
        settle_receiver(
            &mut report.offered,
            &mut report.level_slot_sum,
            layer_cum,
            settled_slots,
            settled_prefix,
            r,
            level,
            level,
            slots,
        );
        report.final_levels[r] = level;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A controller that never moves.
    struct Inert;
    impl ReceiverController for Inert {
        fn on_packet(&mut self, _ev: &PacketEvent) -> Action {
            Action::Stay
        }
    }

    /// A controller pinned at a fixed target level, reached immediately.
    struct Pinned(usize);
    impl ReceiverController for Pinned {
        fn on_packet(&mut self, ev: &PacketEvent) -> Action {
            use std::cmp::Ordering::*;
            match ev.level.cmp(&self.0) {
                Less => Action::JoinUp,
                Equal => Action::Stay,
                Greater => Action::LeaveDown,
            }
        }
    }

    #[test]
    fn interleaver_respects_rates() {
        let mut il = LayerInterleaver::new(&[1.0, 1.0, 2.0, 4.0]);
        let mut counts = [0usize; 4];
        for _ in 0..8000 {
            counts[il.next_layer() - 1] += 1;
        }
        assert_eq!(counts, [1000, 1000, 2000, 4000]);
    }

    #[test]
    fn inert_receivers_at_level1_get_base_layer_only() {
        let cfg = StarConfig::figure8(4, 3, 0.0, 0.0);
        let mut ctls = vec![Inert, Inert, Inert];
        let report = run_star(&cfg, &mut ctls, &mut NoMarkers, 8000, 1);
        // Exponential 4 layers: total rate 8, layer 1 rate 1 -> 1000
        // packets offered per receiver, all delivered (no loss).
        for r in 0..3 {
            assert_eq!(report.offered[r], 1000);
            assert_eq!(report.delivered[r], 1000);
            assert_eq!(report.congestion_events[r], 0);
            assert_eq!(report.mean_level(r), 1.0);
        }
        // Shared link carries exactly the base layer.
        assert_eq!(report.shared_carried, 1000);
        assert_eq!(report.shared_redundancy(), Some(1.0));
    }

    #[test]
    fn shared_link_carries_the_union_of_subscriptions() {
        // One receiver pinned at level 3, one at level 1: the shared link
        // carries layers 1..=3 (rate 4 of 8) while the max receiver is
        // offered the same 4 -> redundancy 1 when aligned.
        let cfg = StarConfig::figure8(4, 2, 0.0, 0.0);
        let mut ctls = vec![Pinned(3), Pinned(1)];
        let report = run_star(&cfg, &mut ctls, &mut NoMarkers, 80_000, 2);
        let red = report.shared_redundancy().unwrap();
        assert!((red - 1.0).abs() < 0.01, "redundancy {red}");
        assert!(report.offered[0] > report.offered[1]);
    }

    #[test]
    fn loss_generates_congestion_events_at_the_configured_rate() {
        let cfg = StarConfig::figure8(4, 2, 0.0, 0.05);
        let mut ctls = vec![Inert, Inert];
        let report = run_star(&cfg, &mut ctls, &mut NoMarkers, 80_000, 3);
        for r in 0..2 {
            let rate = report.loss_rate(r);
            assert!((rate - 0.05).abs() < 0.01, "loss rate {rate}");
        }
    }

    #[test]
    fn shared_loss_is_correlated_across_receivers() {
        // With pure shared loss, both receivers (at equal levels) lose the
        // exact same packets: congestion counts match exactly.
        let cfg = StarConfig::figure8(4, 2, 0.05, 0.0);
        let mut ctls = vec![Inert, Inert];
        let report = run_star(&cfg, &mut ctls, &mut NoMarkers, 40_000, 4);
        assert_eq!(report.congestion_events[0], report.congestion_events[1]);
        assert!(report.congestion_events[0] > 0);
    }

    #[test]
    fn runs_are_deterministic_in_seed() {
        let cfg = StarConfig::figure8(8, 5, 0.01, 0.02);
        let run = |seed| {
            let mut ctls = vec![Pinned(4), Pinned(2), Pinned(8), Pinned(1), Pinned(6)];
            let r = run_star(&cfg, &mut ctls, &mut NoMarkers, 20_000, seed);
            (r.shared_carried, r.offered.clone(), r.delivered.clone())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn leave_latency_inflates_shared_usage() {
        // A receiver that oscillates between levels 1 and M: with a long
        // prune latency the shared link keeps carrying high layers.
        struct Oscillate;
        impl ReceiverController for Oscillate {
            fn on_packet(&mut self, ev: &PacketEvent) -> Action {
                if ev.slot % 64 < 32 {
                    if ev.level < ev.layer_count {
                        Action::JoinUp
                    } else {
                        Action::Stay
                    }
                } else if ev.level > 1 {
                    Action::LeaveDown
                } else {
                    Action::Stay
                }
            }
        }
        let mut cfg = StarConfig::figure8(4, 1, 0.0, 0.0);
        let baseline = {
            let mut ctls = vec![Oscillate];
            run_star(&cfg, &mut ctls, &mut NoMarkers, 40_000, 5)
        };
        cfg.leave_latency = 200;
        let laggy = {
            let mut ctls = vec![Oscillate];
            run_star(&cfg, &mut ctls, &mut NoMarkers, 40_000, 5)
        };
        let r0 = baseline.shared_redundancy().unwrap();
        let r1 = laggy.shared_redundancy().unwrap();
        assert!(
            r1 > r0 + 0.05,
            "leave latency must inflate redundancy: {r0} vs {r1}"
        );
    }

    #[test]
    fn markers_reach_receivers_on_clean_packets_only() {
        struct CountMarkers(u64);
        impl ReceiverController for CountMarkers {
            fn on_packet(&mut self, ev: &PacketEvent) -> Action {
                if ev.marker.is_some() {
                    assert!(!ev.lost, "markers ride only delivered packets");
                    self.0 += 1;
                }
                Action::Stay
            }
        }
        struct EverySlot;
        impl MarkerSource for EverySlot {
            fn marker(&mut self, _s: Tick, _l: usize) -> Option<usize> {
                Some(1)
            }
        }
        let cfg = StarConfig::figure8(4, 1, 0.3, 0.0);
        let mut ctls = vec![CountMarkers(0)];
        let report = run_star(&cfg, &mut ctls, &mut EverySlot, 8000, 6);
        assert!(ctls[0].0 > 0);
        assert_eq!(ctls[0].0, report.delivered[0]);
    }
}
