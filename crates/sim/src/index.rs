//! The level-bucketed membership index behind the O(subscribers) star
//! engine.
//!
//! Cumulative layering means every membership query the packet engine makes
//! is a *prefix* query: receiver `r` holds layer `L` iff its level is
//! `≥ L`, and the shared link carries layer `L` iff the **maximum**
//! effective level is `≥ L`. [`LevelIndex`] maintains exactly the two
//! structures that answer those queries in O(1)/O(subscribers) instead of
//! O(receivers):
//!
//! * **Per-level effective counts** — `eff_count[v]` = number of receivers
//!   whose *effective* level is exactly `v`, plus the cached maximum
//!   occupied bucket. `max_effective` is O(1); a level change moves one
//!   receiver between two buckets and repairs the cached maximum by
//!   scanning down only over newly emptied buckets (amortized O(1) for the
//!   ±1 moves the Section 4 protocols make).
//! * **Per-layer subscriber bitsets** — row `L−1` has bit `r` set iff
//!   receiver `r`'s *active* level `min(requested, effective)` is `≥ L`,
//!   i.e. iff the engine would deliver a layer-`L` packet to it
//!   (`wants ∧ subscribed`). A level change from `v` to `v'` touches only
//!   the `|v − v'|` rows between them, one word operation each. Iterating
//!   a row's set bits visits subscribers in **ascending receiver id** —
//!   the order the engine's RNG-draw-preservation contract requires (see
//!   [`crate::multicast`]) — at one `trailing_zeros` per subscriber plus
//!   one word-scan per 64 receivers.
//!
//! The index is owned and maintained incrementally by
//! [`MembershipTable`](crate::multicast::MembershipTable); it never
//! inspects the table's vectors itself, it is *told* about transitions via
//! [`LevelIndex::effective_changed`]/[`LevelIndex::active_changed`]. The
//! invariants (counts match a recount of effective levels; bitsets match a
//! recount of active levels; the cached maximum matches the occupied
//! buckets) are property-tested in `crates/sim/tests/membership_proptest.rs`
//! via [`LevelIndex::check_invariants`].
//!
//! [`LinkLevelIndex`] generalizes the same idea from the star's one shared
//! link to every link of a sender-rooted tree: per *link*, a per-level
//! bucket count of downstream effective levels plus a cached downstream
//! maximum, and per *layer* a carrying-link bitset row (bit `a` set iff
//! link rank `a`'s downstream maximum is `≥ L` — exactly the paper's
//! "some downstream receiver subscribes" carry condition). A ±1 level
//! transition updates one bucket pair and at most one bitset word per
//! *ancestor link* of the moving receiver — O(route length) — instead of
//! the O(links × downstream receivers) rescan the pre-bitset tree engine
//! performed every slot. Links are identified by dense *ranks* assigned in
//! `(depth, link id)` order so that every link's parent has a smaller
//! rank; the tree engine exploits that to resolve end-to-end loss in one
//! ascending-rank sweep per slot. The index is topology-only data — routes
//! come in as a flat CSR of link ids, so the structure stays independent
//! of `mlf_net`.

/// Incremental per-level counts and per-layer subscriber bitsets for one
/// set of receivers with cumulative-layer subscriptions.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, Default)]
pub struct LevelIndex {
    receiver_count: usize,
    layer_count: usize,
    /// Words per bitset row: `ceil(receiver_count / 64)`.
    words: usize,
    /// `eff_count[v]` = receivers whose effective level is exactly `v`
    /// (length `layer_count + 1`; level 0 = subscribed to nothing).
    eff_count: Vec<u32>,
    /// Highest `v` with `eff_count[v] > 0`; 0 when there are no receivers.
    max_eff: usize,
    /// Row-major bitsets, row `L-1` (layer `L`, 1-based) of `words` words:
    /// bit `r` set iff active level of `r` is `≥ L`.
    rows: Vec<u64>,
}

impl LevelIndex {
    /// An index over `receivers` receivers of `layer_count` layers, all at
    /// effective = active = `initial`.
    pub fn new(receivers: usize, layer_count: usize, initial: usize) -> Self {
        let mut ix = LevelIndex::default();
        ix.reset(receivers, layer_count, initial);
        ix
    }

    /// Re-initialize in place (every receiver back to `initial`), reusing
    /// the count and bitset allocations — the engine scratch resets one
    /// index across trials instead of reallocating.
    pub fn reset(&mut self, receivers: usize, layer_count: usize, initial: usize) {
        assert!(initial <= layer_count || receivers == 0);
        self.receiver_count = receivers;
        self.layer_count = layer_count;
        self.words = receivers.div_ceil(64);
        self.eff_count.clear();
        self.eff_count.resize(layer_count + 1, 0);
        if receivers > 0 {
            self.eff_count[initial] = receivers as u32;
            self.max_eff = initial;
        } else {
            self.max_eff = 0;
        }
        self.rows.clear();
        self.rows.resize(layer_count * self.words, 0);
        if receivers > 0 {
            // Layers 1..=initial hold every receiver: all-ones rows with the
            // last word masked to the receiver count.
            let full = self.words - 1;
            let tail_bits = receivers - full * 64;
            let tail_mask = if tail_bits == 64 {
                u64::MAX
            } else {
                (1u64 << tail_bits) - 1
            };
            for layer in 1..=initial {
                let row = self.row_range(layer);
                self.rows[row.clone()][..full].fill(u64::MAX);
                self.rows[row][full] = tail_mask;
            }
        }
    }

    /// Number of receivers indexed.
    pub fn receiver_count(&self) -> usize {
        self.receiver_count
    }

    /// Number of layers `M`.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// The highest effective level across receivers, O(1). Zero when no
    /// receivers are tracked.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn max_effective(&self) -> usize {
        self.max_eff
    }

    /// How many receivers hold effective level exactly `level`.
    pub fn effective_count(&self, level: usize) -> usize {
        self.eff_count[level] as usize
    }

    /// The bitset row of `layer` (1-based): bit `r` set iff receiver `r` is
    /// actively subscribed to it. The engine snapshots this slice per slot
    /// and walks its set bits in ascending receiver id.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn subscribers(&self, layer: usize) -> &[u64] {
        let range = self.row_range(layer);
        &self.rows[range]
    }

    /// Number of receivers actively subscribed to `layer` (1-based).
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn subscriber_count(&self, layer: usize) -> usize {
        self.subscribers(layer)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Visit the active subscribers of `layer` in ascending receiver id.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn for_each_subscriber(&self, layer: usize, mut f: impl FnMut(usize)) {
        for (w, &word) in self.subscribers(layer).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                f(w * 64 + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
    }

    /// Record receiver `r`'s effective level moving `old → new`.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn effective_changed(&mut self, _r: usize, old: usize, new: usize) {
        self.eff_count[old] -= 1;
        self.eff_count[new] += 1;
        if new > self.max_eff {
            self.max_eff = new;
        } else {
            while self.max_eff > 0 && self.eff_count[self.max_eff] == 0 {
                self.max_eff -= 1;
            }
        }
    }

    /// Record receiver `r`'s active level (`min(requested, effective)`)
    /// moving `old → new`: flip `r`'s bit in the rows of layers
    /// `min+1..=max` of the two.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn active_changed(&mut self, r: usize, old: usize, new: usize) {
        let word = r / 64;
        let mask = 1u64 << (r % 64);
        for layer in (old.min(new) + 1)..=(old.max(new)) {
            let at = (layer - 1) * self.words + word;
            if new > old {
                self.rows[at] |= mask;
            } else {
                self.rows[at] &= !mask;
            }
        }
    }

    /// Check every index invariant against ground-truth `effective` and
    /// `requested` level slices; returns the first violation as an error
    /// string. Used by the membership property tests.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn check_invariants(&self, requested: &[usize], effective: &[usize]) -> Result<(), String> {
        if requested.len() != self.receiver_count || effective.len() != self.receiver_count {
            return Err("level slice length mismatch".into());
        }
        for v in 0..=self.layer_count {
            let recount = effective.iter().filter(|&&e| e == v).count();
            if recount != self.effective_count(v) {
                return Err(format!(
                    "eff_count[{v}] = {} but recount is {recount}",
                    self.effective_count(v)
                ));
            }
        }
        let true_max = effective.iter().copied().max().unwrap_or(0);
        if self.max_eff != true_max {
            return Err(format!(
                "cached max_effective {} but recount is {true_max}",
                self.max_eff
            ));
        }
        for layer in 1..=self.layer_count {
            let mut expect = vec![0u64; self.words];
            for (r, (&rq, &ef)) in requested.iter().zip(effective).enumerate() {
                if rq.min(ef) >= layer {
                    expect[r / 64] |= 1 << (r % 64);
                }
            }
            if expect != self.subscribers(layer) {
                return Err(format!("subscriber bitset of layer {layer} diverged"));
            }
        }
        Ok(())
    }

    fn row_range(&self, layer: usize) -> std::ops::Range<usize> {
        debug_assert!(
            (1..=self.layer_count).contains(&layer),
            "layer out of range"
        );
        let start = (layer - 1) * self.words;
        start..start + self.words
    }
}

/// `rank_of`/`pred` sentinel: link not on any route (carries nothing).
const UNSEEN: u32 = u32::MAX;
/// `pred` sentinel: link is the first hop of its routes (root-adjacent).
const ROOT_PRED: u32 = u32::MAX - 1;
/// `parent` sentinel: rank has no parent rank (root-adjacent link).
const NO_PARENT: u32 = u32::MAX;

/// Error from [`LinkLevelIndex::rebuild`]: the supplied routes are not the
/// paths of a sender-rooted tree, so per-link downstream maxima (and the
/// parent-chain loss propagation built on them) would be ill-defined.
// mlf-lint: allow(unused-pub, reason = "error type of the public LinkLevelIndex::rebuild API; in-crate consumers are invisible to the analyzer")
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkIndexError {
    /// A receiver's route contains no links (receiver colocated with the
    /// sender, which the session model forbids).
    EmptyRoute {
        /// Receiver index within the session.
        receiver: usize,
    },
    /// A link appears at two different depths or with two different
    /// predecessor links across routes — impossible on a tree.
    NotATree {
        /// Receiver index whose route first exposed the inconsistency.
        receiver: usize,
    },
}

impl std::fmt::Display for LinkIndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinkIndexError::EmptyRoute { receiver } => {
                write!(f, "receiver {receiver} has an empty route")
            }
            LinkIndexError::NotATree { receiver } => write!(
                f,
                "receiver {receiver}'s route is not a path of a sender-rooted tree \
                 (a link appears with two different prefixes)"
            ),
        }
    }
}

impl std::error::Error for LinkIndexError {}

/// Incremental per-link downstream-level counts and per-layer
/// carrying-link bitsets for one multicast session on a sender-rooted
/// tree.
///
/// Links that appear on at least one receiver route get dense **ranks**,
/// assigned in ascending `(depth, link id)` order; links on no route are
/// excluded (they can never carry a packet). Because a link's predecessor
/// on a tree path is unique, every rank's parent rank is smaller than the
/// rank itself, so one ascending-rank pass visits parents before children
/// — the property the tree engine uses to push per-link loss fates down
/// the tree in a single sweep.
///
/// Dynamic state mirrors [`LevelIndex`] per rank: `eff_count` buckets of
/// downstream receivers' *effective* levels, a cached per-rank downstream
/// maximum with lazy downward repair, and per-layer bitset rows over ranks
/// (`carrying(L)` bit `a` set iff rank `a`'s downstream maximum is `≥ L`).
/// [`MembershipTable`](crate::multicast::MembershipTable) drives it
/// through [`LinkLevelIndex::effective_changed`] from the same two
/// notification sites that maintain the receiver-level index, so the
/// carry sets stay exact under join/leave latencies.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, Default)]
pub struct LinkLevelIndex {
    receiver_count: usize,
    layer_count: usize,
    link_count: usize,
    /// Links on at least one route (the only ones that can carry).
    rank_count: usize,
    /// Words per bitset row: `ceil(rank_count / 64)`.
    words: usize,
    /// Link id → rank, [`UNSEEN`] for links on no route.
    rank_of: Vec<u32>,
    /// Rank → link id.
    link_ids: Vec<u32>,
    /// Rank → parent rank ([`NO_PARENT`] for root-adjacent links).
    parent: Vec<u32>,
    /// CSR over receivers: `route_ranks[route_start[r]..route_start[r+1]]`
    /// is receiver `r`'s route as ranks, sender → receiver order.
    route_start: Vec<u32>,
    route_ranks: Vec<u32>,
    /// Rank-major `(layer_count + 1)` buckets: `eff_count[a * (M+1) + v]`
    /// = downstream receivers of rank `a` at effective level exactly `v`.
    eff_count: Vec<u32>,
    /// Rank → cached maximum downstream effective level.
    max_eff: Vec<u32>,
    /// Row-major bitsets, row `L-1` of `words` words: bit `a` set iff
    /// `max_eff[a] >= L`.
    rows: Vec<u64>,
    /// Rebuild scratch: link id → predecessor link id / depth on routes.
    pred: Vec<u32>,
    depth: Vec<u32>,
}

impl LinkLevelIndex {
    /// (Re)build the static topology from routes given as a CSR of link
    /// ids (`route_links[route_start[r]..route_start[r+1]]` = receiver
    /// `r`'s route, sender → receiver order), reusing prior allocations.
    /// Dynamic state is reset to *no* receivers counted; call
    /// [`LinkLevelIndex::sync_levels`] with the current effective levels
    /// before querying.
    ///
    /// Fails when the routes are not tree paths: every link must appear at
    /// one depth with one predecessor across all routes.
    pub fn rebuild(
        &mut self,
        layer_count: usize,
        link_count: usize,
        route_start: &[u32],
        route_links: &[u32],
    ) -> Result<(), LinkIndexError> {
        let receivers = route_start.len().saturating_sub(1);
        self.receiver_count = receivers;
        self.layer_count = layer_count;
        self.link_count = link_count;

        // Pass 1: predecessor + depth per link, consistency-checked. On a
        // tree every route containing a link shares that link's full
        // prefix, so a consistent predecessor at every position is both
        // the validation and the parent relation.
        self.pred.clear();
        self.pred.resize(link_count, UNSEEN);
        self.depth.clear();
        self.depth.resize(link_count, 0);
        let mut max_depth = 0u32;
        for r in 0..receivers {
            let s = route_start[r] as usize;
            let e = route_start[r + 1] as usize;
            if s == e {
                return Err(LinkIndexError::EmptyRoute { receiver: r });
            }
            for i in s..e {
                let l = route_links[i] as usize;
                if l >= link_count {
                    return Err(LinkIndexError::NotATree { receiver: r });
                }
                let p = if i == s {
                    ROOT_PRED
                } else {
                    route_links[i - 1]
                };
                let d = (i - s + 1) as u32;
                if self.pred[l] == UNSEEN {
                    self.pred[l] = p;
                    self.depth[l] = d;
                    max_depth = max_depth.max(d);
                } else if self.pred[l] != p || self.depth[l] != d {
                    return Err(LinkIndexError::NotATree { receiver: r });
                }
            }
        }

        // Pass 2: counting-sort the on-route links by (depth, link id)
        // into ranks; parents land at strictly smaller ranks.
        let mut start = vec![0u32; max_depth as usize + 2];
        for l in 0..link_count {
            if self.pred[l] != UNSEEN {
                start[self.depth[l] as usize + 1] += 1;
            }
        }
        for d in 1..start.len() {
            start[d] += start[d - 1];
        }
        self.rank_count = start[max_depth as usize + 1] as usize;
        self.words = self.rank_count.div_ceil(64);
        self.rank_of.clear();
        self.rank_of.resize(link_count, UNSEEN);
        self.link_ids.clear();
        self.link_ids.resize(self.rank_count, 0);
        for l in 0..link_count {
            if self.pred[l] != UNSEEN {
                let slot = &mut start[self.depth[l] as usize];
                self.rank_of[l] = *slot;
                self.link_ids[*slot as usize] = l as u32;
                *slot += 1;
            }
        }
        self.parent.clear();
        self.parent.resize(self.rank_count, NO_PARENT);
        for a in 0..self.rank_count {
            let p = self.pred[self.link_ids[a] as usize];
            if p != ROOT_PRED {
                self.parent[a] = self.rank_of[p as usize];
            }
        }

        // Pass 3: routes re-expressed as ranks.
        self.route_start.clear();
        self.route_start.extend_from_slice(route_start);
        self.route_ranks.clear();
        self.route_ranks
            .extend(route_links.iter().map(|&l| self.rank_of[l as usize]));

        // Dynamic state: sized but empty until `sync_levels`.
        self.eff_count.clear();
        self.eff_count
            .resize(self.rank_count * (layer_count + 1), 0);
        self.max_eff.clear();
        self.max_eff.resize(self.rank_count, 0);
        self.rows.clear();
        self.rows.resize(layer_count * self.words, 0);
        Ok(())
    }

    /// Recompute all dynamic state (buckets, cached maxima, carrying rows)
    /// from ground-truth per-receiver effective levels. Called once when
    /// the index is attached to a [`MembershipTable`]; incremental updates
    /// flow through [`LinkLevelIndex::effective_changed`] afterwards.
    ///
    /// [`MembershipTable`]: crate::multicast::MembershipTable
    // mlf-lint: allow(unused-pub, reason = "documented public API of the exported index; doc links and in-crate consumers are invisible to the analyzer")
    pub fn sync_levels(&mut self, effective: &[usize]) {
        assert_eq!(effective.len(), self.receiver_count, "receiver count");
        let m = self.layer_count;
        self.eff_count.fill(0);
        for (r, &e) in effective.iter().enumerate() {
            debug_assert!(e <= m);
            let s = self.route_start[r] as usize;
            let t = self.route_start[r + 1] as usize;
            for &a in &self.route_ranks[s..t] {
                self.eff_count[a as usize * (m + 1) + e] += 1;
            }
        }
        self.rows.fill(0);
        for a in 0..self.rank_count {
            let base = a * (m + 1);
            let mut v = m;
            while v > 0 && self.eff_count[base + v] == 0 {
                v -= 1;
            }
            self.max_eff[a] = v as u32;
            for layer in 1..=v {
                self.rows[(layer - 1) * self.words + a / 64] |= 1u64 << (a % 64);
            }
        }
    }

    /// Record receiver `r`'s effective level moving `old → new`: one
    /// bucket move, cached-max repair, and at most `|old − new|` bitset
    /// word flips per ancestor link of `r`.
    // mlf-lint: allow(unused-pub, reason = "documented public API of the exported index; doc links and in-crate consumers are invisible to the analyzer")
    pub fn effective_changed(&mut self, r: usize, old: usize, new: usize) {
        let m = self.layer_count;
        let s = self.route_start[r] as usize;
        let e = self.route_start[r + 1] as usize;
        for i in s..e {
            let a = self.route_ranks[i] as usize;
            let base = a * (m + 1);
            self.eff_count[base + old] -= 1;
            self.eff_count[base + new] += 1;
            let cur = self.max_eff[a] as usize;
            if new > cur {
                self.flip_rows(a, cur + 1, new, true);
                self.max_eff[a] = new as u32;
            } else if old == cur && self.eff_count[base + cur] == 0 {
                let mut v = cur;
                while v > 0 && self.eff_count[base + v] == 0 {
                    v -= 1;
                }
                self.flip_rows(a, v + 1, cur, false);
                self.max_eff[a] = v as u32;
            }
        }
    }

    fn flip_rows(&mut self, rank: usize, lo: usize, hi: usize, set: bool) {
        let word = rank / 64;
        let mask = 1u64 << (rank % 64);
        for layer in lo..=hi {
            let at = (layer - 1) * self.words + word;
            if set {
                self.rows[at] |= mask;
            } else {
                self.rows[at] &= !mask;
            }
        }
    }

    /// The carrying-link bitset row of `layer` (1-based): bit `a` set iff
    /// rank `a`'s downstream maximum effective level is `≥ layer`. The
    /// engine walks its set bits in ascending rank order — parents before
    /// children.
    // mlf-lint: allow(unused-pub, reason = "documented public API of the exported index; doc links and in-crate consumers are invisible to the analyzer")
    pub fn carrying(&self, layer: usize) -> &[u64] {
        debug_assert!(
            (1..=self.layer_count).contains(&layer),
            "layer out of range"
        );
        let start = (layer - 1) * self.words;
        &self.rows[start..start + self.words]
    }

    /// Number of link ranks (links on at least one route).
    // mlf-lint: allow(unused-pub, reason = "documented public API of the exported index; doc links and in-crate consumers are invisible to the analyzer")
    pub fn rank_count(&self) -> usize {
        self.rank_count
    }

    /// Number of receivers the routes cover.
    pub fn receiver_count(&self) -> usize {
        self.receiver_count
    }

    /// Number of layers `M`.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// The link id of rank `a`.
    // mlf-lint: allow(unused-pub, reason = "documented public API of the exported index; doc links and in-crate consumers are invisible to the analyzer")
    pub fn link_of(&self, a: usize) -> usize {
        self.link_ids[a] as usize
    }

    /// The parent rank of rank `a` (`None` for root-adjacent links).
    /// Always strictly less than `a` when present.
    // mlf-lint: allow(unused-pub, reason = "documented public API of the exported index; doc links and in-crate consumers are invisible to the analyzer")
    pub fn parent_of(&self, a: usize) -> Option<usize> {
        let p = self.parent[a];
        (p != NO_PARENT).then_some(p as usize)
    }

    /// The rank of receiver `r`'s access link (last link of its route);
    /// its fate decides `r`'s end-to-end delivery.
    // mlf-lint: allow(unused-pub, reason = "documented public API of the exported index; doc links and in-crate consumers are invisible to the analyzer")
    pub fn last_rank(&self, r: usize) -> usize {
        self.route_ranks[self.route_start[r + 1] as usize - 1] as usize
    }

    /// Check every index invariant against ground-truth per-receiver
    /// `effective` levels; returns the first violation as an error string.
    /// Used by the membership property tests.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn check_invariants(&self, effective: &[usize]) -> Result<(), String> {
        if effective.len() != self.receiver_count {
            return Err("level slice length mismatch".into());
        }
        let m = self.layer_count;
        let mut expect_count = vec![0u32; self.rank_count * (m + 1)];
        for (r, &e) in effective.iter().enumerate() {
            let s = self.route_start[r] as usize;
            let t = self.route_start[r + 1] as usize;
            for &a in &self.route_ranks[s..t] {
                expect_count[a as usize * (m + 1) + e] += 1;
            }
        }
        if expect_count != self.eff_count {
            return Err("per-link effective buckets diverged".into());
        }
        for a in 0..self.rank_count {
            let base = a * (m + 1);
            let mut v = m;
            while v > 0 && expect_count[base + v] == 0 {
                v -= 1;
            }
            if self.max_eff[a] as usize != v {
                return Err(format!(
                    "rank {a}: cached downstream max {} but recount is {v}",
                    self.max_eff[a]
                ));
            }
            if let Some(p) = self.parent_of(a) {
                if p >= a {
                    return Err(format!("rank {a}: parent rank {p} not smaller"));
                }
                if self.max_eff[p] < self.max_eff[a] {
                    return Err(format!(
                        "rank {a}: downstream max {} exceeds parent's {}",
                        self.max_eff[a], self.max_eff[p]
                    ));
                }
            }
        }
        for layer in 1..=m {
            let mut expect = vec![0u64; self.words];
            for a in 0..self.rank_count {
                if self.max_eff[a] as usize >= layer {
                    expect[a / 64] |= 1u64 << (a % 64);
                }
            }
            if expect != self.carrying(layer) {
                return Err(format!("carrying bitset of layer {layer} diverged"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_indexes_everyone_at_the_initial_level() {
        let ix = LevelIndex::new(130, 4, 2);
        assert_eq!(ix.max_effective(), 2);
        assert_eq!(ix.effective_count(2), 130);
        assert_eq!(ix.subscriber_count(1), 130);
        assert_eq!(ix.subscriber_count(2), 130);
        assert_eq!(ix.subscriber_count(3), 0);
        let levels = vec![2usize; 130];
        ix.check_invariants(&levels, &levels).unwrap();
    }

    #[test]
    fn transitions_move_buckets_and_bits() {
        let mut ix = LevelIndex::new(70, 8, 1);
        // Receiver 65 requests level 5 with zero latency: eff 1 -> 5,
        // active 1 -> 5.
        ix.effective_changed(65, 1, 5);
        ix.active_changed(65, 1, 5);
        assert_eq!(ix.max_effective(), 5);
        assert_eq!(ix.effective_count(5), 1);
        assert_eq!(ix.subscriber_count(5), 1);
        let mut seen = Vec::new();
        ix.for_each_subscriber(3, |r| seen.push(r));
        assert_eq!(seen, vec![65]);
        // Back down to 2: the cached max repairs by scanning down.
        ix.effective_changed(65, 5, 2);
        ix.active_changed(65, 5, 2);
        assert_eq!(ix.max_effective(), 2);
        assert_eq!(ix.subscriber_count(3), 0);
        assert_eq!(ix.subscriber_count(2), 1);
    }

    #[test]
    fn ascending_id_iteration_across_words() {
        let mut ix = LevelIndex::new(200, 2, 1);
        for &r in &[3usize, 64, 77, 130, 199] {
            ix.effective_changed(r, 1, 2);
            ix.active_changed(r, 1, 2);
        }
        let mut seen = Vec::new();
        ix.for_each_subscriber(2, |r| seen.push(r));
        assert_eq!(seen, vec![3, 64, 77, 130, 199]);
    }

    #[test]
    fn empty_index_is_degenerate() {
        let ix = LevelIndex::new(0, 4, 1);
        assert_eq!(ix.max_effective(), 0);
        assert_eq!(ix.subscriber_count(1), 0);
        ix.check_invariants(&[], &[]).unwrap();
    }

    #[test]
    fn reset_reuses_and_reinitializes() {
        let mut ix = LevelIndex::new(10, 4, 1);
        ix.effective_changed(3, 1, 4);
        ix.active_changed(3, 1, 4);
        ix.reset(64, 3, 2);
        assert_eq!(ix.receiver_count(), 64);
        assert_eq!(ix.layer_count(), 3);
        assert_eq!(ix.max_effective(), 2);
        assert_eq!(ix.subscriber_count(2), 64);
        assert_eq!(ix.subscriber_count(3), 0);
        let levels = vec![2usize; 64];
        ix.check_invariants(&levels, &levels).unwrap();
    }

    /// Routes of a 2-level binary tree: trunks l0, l1 then leaf links
    /// l2..=l5, receivers 0..4.
    fn binary_routes() -> (Vec<u32>, Vec<u32>) {
        let route_links = vec![0, 2, 0, 3, 1, 4, 1, 5];
        let route_start = vec![0, 2, 4, 6, 8];
        (route_start, route_links)
    }

    #[test]
    fn link_index_ranks_parents_before_children() {
        let (start, links) = binary_routes();
        let mut ix = LinkLevelIndex::default();
        ix.rebuild(4, 6, &start, &links).unwrap();
        assert_eq!(ix.rank_count(), 6);
        assert_eq!(ix.receiver_count(), 4);
        // Depth-1 trunks take ranks 0..2, leaf links 2..6, id order within.
        assert_eq!(
            (0..6).map(|a| ix.link_of(a)).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5]
        );
        assert_eq!(ix.parent_of(0), None);
        assert_eq!(ix.parent_of(2), Some(0));
        assert_eq!(ix.parent_of(5), Some(1));
        assert_eq!(ix.last_rank(2), 4);
    }

    #[test]
    fn link_index_tracks_downstream_maxima() {
        let (start, links) = binary_routes();
        let mut ix = LinkLevelIndex::default();
        ix.rebuild(4, 6, &start, &links).unwrap();
        let mut eff = vec![1usize; 4];
        ix.sync_levels(&eff);
        ix.check_invariants(&eff).unwrap();
        // All trunks and leaves carry layer 1 only.
        assert_eq!(ix.carrying(1), &[0b111111]);
        assert_eq!(ix.carrying(2), &[0]);
        // Receiver 3 (behind trunk l1, leaf l5) rises to 3: its ancestor
        // chain flips in layers 2..=3.
        ix.effective_changed(3, 1, 3);
        eff[3] = 3;
        ix.check_invariants(&eff).unwrap();
        assert_eq!(ix.carrying(3), &[0b100010]);
        // Back down to 2: lazy repair clears layer 3 only.
        ix.effective_changed(3, 3, 2);
        eff[3] = 2;
        ix.check_invariants(&eff).unwrap();
        assert_eq!(ix.carrying(3), &[0]);
        assert_eq!(ix.carrying(2), &[0b100010]);
    }

    #[test]
    fn link_index_rejects_non_tree_routes() {
        // Two routes disagree on l2's predecessor: not tree paths.
        let start = vec![0u32, 2, 4];
        let links = vec![0u32, 2, 1, 2];
        let mut ix = LinkLevelIndex::default();
        assert_eq!(
            ix.rebuild(2, 3, &start, &links),
            Err(LinkIndexError::NotATree { receiver: 1 })
        );
        // An empty route is rejected too.
        let mut ix = LinkLevelIndex::default();
        assert_eq!(
            ix.rebuild(2, 3, &[0, 0], &[]),
            Err(LinkIndexError::EmptyRoute { receiver: 0 })
        );
    }
}
