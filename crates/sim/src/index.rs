//! The level-bucketed membership index behind the O(subscribers) star
//! engine.
//!
//! Cumulative layering means every membership query the packet engine makes
//! is a *prefix* query: receiver `r` holds layer `L` iff its level is
//! `≥ L`, and the shared link carries layer `L` iff the **maximum**
//! effective level is `≥ L`. [`LevelIndex`] maintains exactly the two
//! structures that answer those queries in O(1)/O(subscribers) instead of
//! O(receivers):
//!
//! * **Per-level effective counts** — `eff_count[v]` = number of receivers
//!   whose *effective* level is exactly `v`, plus the cached maximum
//!   occupied bucket. `max_effective` is O(1); a level change moves one
//!   receiver between two buckets and repairs the cached maximum by
//!   scanning down only over newly emptied buckets (amortized O(1) for the
//!   ±1 moves the Section 4 protocols make).
//! * **Per-layer subscriber bitsets** — row `L−1` has bit `r` set iff
//!   receiver `r`'s *active* level `min(requested, effective)` is `≥ L`,
//!   i.e. iff the engine would deliver a layer-`L` packet to it
//!   (`wants ∧ subscribed`). A level change from `v` to `v'` touches only
//!   the `|v − v'|` rows between them, one word operation each. Iterating
//!   a row's set bits visits subscribers in **ascending receiver id** —
//!   the order the engine's RNG-draw-preservation contract requires (see
//!   [`crate::multicast`]) — at one `trailing_zeros` per subscriber plus
//!   one word-scan per 64 receivers.
//!
//! The index is owned and maintained incrementally by
//! [`MembershipTable`](crate::multicast::MembershipTable); it never
//! inspects the table's vectors itself, it is *told* about transitions via
//! [`LevelIndex::effective_changed`]/[`LevelIndex::active_changed`]. The
//! invariants (counts match a recount of effective levels; bitsets match a
//! recount of active levels; the cached maximum matches the occupied
//! buckets) are property-tested in `crates/sim/tests/membership_proptest.rs`
//! via [`LevelIndex::check_invariants`].

/// Incremental per-level counts and per-layer subscriber bitsets for one
/// set of receivers with cumulative-layer subscriptions.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, Default)]
pub struct LevelIndex {
    receiver_count: usize,
    layer_count: usize,
    /// Words per bitset row: `ceil(receiver_count / 64)`.
    words: usize,
    /// `eff_count[v]` = receivers whose effective level is exactly `v`
    /// (length `layer_count + 1`; level 0 = subscribed to nothing).
    eff_count: Vec<u32>,
    /// Highest `v` with `eff_count[v] > 0`; 0 when there are no receivers.
    max_eff: usize,
    /// Row-major bitsets, row `L-1` (layer `L`, 1-based) of `words` words:
    /// bit `r` set iff active level of `r` is `≥ L`.
    rows: Vec<u64>,
}

impl LevelIndex {
    /// An index over `receivers` receivers of `layer_count` layers, all at
    /// effective = active = `initial`.
    pub fn new(receivers: usize, layer_count: usize, initial: usize) -> Self {
        let mut ix = LevelIndex::default();
        ix.reset(receivers, layer_count, initial);
        ix
    }

    /// Re-initialize in place (every receiver back to `initial`), reusing
    /// the count and bitset allocations — the engine scratch resets one
    /// index across trials instead of reallocating.
    pub fn reset(&mut self, receivers: usize, layer_count: usize, initial: usize) {
        assert!(initial <= layer_count || receivers == 0);
        self.receiver_count = receivers;
        self.layer_count = layer_count;
        self.words = receivers.div_ceil(64);
        self.eff_count.clear();
        self.eff_count.resize(layer_count + 1, 0);
        if receivers > 0 {
            self.eff_count[initial] = receivers as u32;
            self.max_eff = initial;
        } else {
            self.max_eff = 0;
        }
        self.rows.clear();
        self.rows.resize(layer_count * self.words, 0);
        if receivers > 0 {
            // Layers 1..=initial hold every receiver: all-ones rows with the
            // last word masked to the receiver count.
            let full = self.words - 1;
            let tail_bits = receivers - full * 64;
            let tail_mask = if tail_bits == 64 {
                u64::MAX
            } else {
                (1u64 << tail_bits) - 1
            };
            for layer in 1..=initial {
                let row = self.row_range(layer);
                self.rows[row.clone()][..full].fill(u64::MAX);
                self.rows[row][full] = tail_mask;
            }
        }
    }

    /// Number of receivers indexed.
    pub fn receiver_count(&self) -> usize {
        self.receiver_count
    }

    /// Number of layers `M`.
    pub fn layer_count(&self) -> usize {
        self.layer_count
    }

    /// The highest effective level across receivers, O(1). Zero when no
    /// receivers are tracked.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn max_effective(&self) -> usize {
        self.max_eff
    }

    /// How many receivers hold effective level exactly `level`.
    pub fn effective_count(&self, level: usize) -> usize {
        self.eff_count[level] as usize
    }

    /// The bitset row of `layer` (1-based): bit `r` set iff receiver `r` is
    /// actively subscribed to it. The engine snapshots this slice per slot
    /// and walks its set bits in ascending receiver id.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn subscribers(&self, layer: usize) -> &[u64] {
        let range = self.row_range(layer);
        &self.rows[range]
    }

    /// Number of receivers actively subscribed to `layer` (1-based).
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn subscriber_count(&self, layer: usize) -> usize {
        self.subscribers(layer)
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    /// Visit the active subscribers of `layer` in ascending receiver id.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn for_each_subscriber(&self, layer: usize, mut f: impl FnMut(usize)) {
        for (w, &word) in self.subscribers(layer).iter().enumerate() {
            let mut word = word;
            while word != 0 {
                f(w * 64 + word.trailing_zeros() as usize);
                word &= word - 1;
            }
        }
    }

    /// Record receiver `r`'s effective level moving `old → new`.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn effective_changed(&mut self, _r: usize, old: usize, new: usize) {
        self.eff_count[old] -= 1;
        self.eff_count[new] += 1;
        if new > self.max_eff {
            self.max_eff = new;
        } else {
            while self.max_eff > 0 && self.eff_count[self.max_eff] == 0 {
                self.max_eff -= 1;
            }
        }
    }

    /// Record receiver `r`'s active level (`min(requested, effective)`)
    /// moving `old → new`: flip `r`'s bit in the rows of layers
    /// `min+1..=max` of the two.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn active_changed(&mut self, r: usize, old: usize, new: usize) {
        let word = r / 64;
        let mask = 1u64 << (r % 64);
        for layer in (old.min(new) + 1)..=(old.max(new)) {
            let at = (layer - 1) * self.words + word;
            if new > old {
                self.rows[at] |= mask;
            } else {
                self.rows[at] &= !mask;
            }
        }
    }

    /// Check every index invariant against ground-truth `effective` and
    /// `requested` level slices; returns the first violation as an error
    /// string. Used by the membership property tests.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn check_invariants(&self, requested: &[usize], effective: &[usize]) -> Result<(), String> {
        if requested.len() != self.receiver_count || effective.len() != self.receiver_count {
            return Err("level slice length mismatch".into());
        }
        for v in 0..=self.layer_count {
            let recount = effective.iter().filter(|&&e| e == v).count();
            if recount != self.effective_count(v) {
                return Err(format!(
                    "eff_count[{v}] = {} but recount is {recount}",
                    self.effective_count(v)
                ));
            }
        }
        let true_max = effective.iter().copied().max().unwrap_or(0);
        if self.max_eff != true_max {
            return Err(format!(
                "cached max_effective {} but recount is {true_max}",
                self.max_eff
            ));
        }
        for layer in 1..=self.layer_count {
            let mut expect = vec![0u64; self.words];
            for (r, (&rq, &ef)) in requested.iter().zip(effective).enumerate() {
                if rq.min(ef) >= layer {
                    expect[r / 64] |= 1 << (r % 64);
                }
            }
            if expect != self.subscribers(layer) {
                return Err(format!("subscriber bitset of layer {layer} diverged"));
            }
        }
        Ok(())
    }

    fn row_range(&self, layer: usize) -> std::ops::Range<usize> {
        debug_assert!(
            (1..=self.layer_count).contains(&layer),
            "layer out of range"
        );
        let start = (layer - 1) * self.words;
        start..start + self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_indexes_everyone_at_the_initial_level() {
        let ix = LevelIndex::new(130, 4, 2);
        assert_eq!(ix.max_effective(), 2);
        assert_eq!(ix.effective_count(2), 130);
        assert_eq!(ix.subscriber_count(1), 130);
        assert_eq!(ix.subscriber_count(2), 130);
        assert_eq!(ix.subscriber_count(3), 0);
        let levels = vec![2usize; 130];
        ix.check_invariants(&levels, &levels).unwrap();
    }

    #[test]
    fn transitions_move_buckets_and_bits() {
        let mut ix = LevelIndex::new(70, 8, 1);
        // Receiver 65 requests level 5 with zero latency: eff 1 -> 5,
        // active 1 -> 5.
        ix.effective_changed(65, 1, 5);
        ix.active_changed(65, 1, 5);
        assert_eq!(ix.max_effective(), 5);
        assert_eq!(ix.effective_count(5), 1);
        assert_eq!(ix.subscriber_count(5), 1);
        let mut seen = Vec::new();
        ix.for_each_subscriber(3, |r| seen.push(r));
        assert_eq!(seen, vec![65]);
        // Back down to 2: the cached max repairs by scanning down.
        ix.effective_changed(65, 5, 2);
        ix.active_changed(65, 5, 2);
        assert_eq!(ix.max_effective(), 2);
        assert_eq!(ix.subscriber_count(3), 0);
        assert_eq!(ix.subscriber_count(2), 1);
    }

    #[test]
    fn ascending_id_iteration_across_words() {
        let mut ix = LevelIndex::new(200, 2, 1);
        for &r in &[3usize, 64, 77, 130, 199] {
            ix.effective_changed(r, 1, 2);
            ix.active_changed(r, 1, 2);
        }
        let mut seen = Vec::new();
        ix.for_each_subscriber(2, |r| seen.push(r));
        assert_eq!(seen, vec![3, 64, 77, 130, 199]);
    }

    #[test]
    fn empty_index_is_degenerate() {
        let ix = LevelIndex::new(0, 4, 1);
        assert_eq!(ix.max_effective(), 0);
        assert_eq!(ix.subscriber_count(1), 0);
        ix.check_invariants(&[], &[]).unwrap();
    }

    #[test]
    fn reset_reuses_and_reinitializes() {
        let mut ix = LevelIndex::new(10, 4, 1);
        ix.effective_changed(3, 1, 4);
        ix.active_changed(3, 1, 4);
        ix.reset(64, 3, 2);
        assert_eq!(ix.receiver_count(), 64);
        assert_eq!(ix.layer_count(), 3);
        assert_eq!(ix.max_effective(), 2);
        assert_eq!(ix.subscriber_count(2), 64);
        assert_eq!(ix.subscriber_count(3), 0);
        let levels = vec![2usize; 64];
        ix.check_invariants(&levels, &levels).unwrap();
    }
}
