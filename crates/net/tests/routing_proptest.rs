//! Property tests of the routing and network-assembly substrate.

use mlf_net::topology::{random_network, random_tree};
use mlf_net::{shortest_path, validate_route, NodeId, ReceiverId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// On trees, BFS finds the unique path; it validates, and reversing the
    /// endpoints reverses the route.
    #[test]
    fn tree_paths_validate_and_reverse(
        seed in any::<u64>(),
        nodes in 2usize..30,
        a in 0usize..30,
        b in 0usize..30,
    ) {
        let g = random_tree(seed, nodes, 1.0, 5.0);
        let from = NodeId(a % nodes);
        let to = NodeId(b % nodes);
        let route = shortest_path(&g, from, to).expect("trees are connected");
        validate_route(&g, from, to, &route, ReceiverId::new(0, 0)).expect("valid");
        let mut back = shortest_path(&g, to, from).expect("connected");
        back.reverse();
        prop_assert_eq!(route, back, "tree path is unique up to reversal");
    }

    /// BFS paths never repeat a node (simple paths), hence their length is
    /// bounded by the node count.
    #[test]
    fn bfs_paths_are_simple(seed in any::<u64>(), nodes in 2usize..25) {
        let g = random_tree(seed, nodes, 1.0, 5.0);
        for t in 1..nodes {
            let route = shortest_path(&g, NodeId(0), NodeId(t)).unwrap();
            prop_assert!(route.len() < nodes);
            // Walk the route and collect visited nodes.
            let mut cur = NodeId(0);
            let mut visited = vec![cur];
            for &l in &route {
                cur = g.link(l).opposite(cur).expect("connected walk");
                prop_assert!(!visited.contains(&cur), "node revisited");
                visited.push(cur);
            }
            prop_assert_eq!(cur, NodeId(t));
        }
    }

    /// Network assembly is internally consistent: `crosses` agrees with
    /// `route`, `R_{i,j}` agrees with both, and `R_j` is the union.
    #[test]
    fn network_index_tables_are_consistent(
        seed in any::<u64>(),
        nodes in 3usize..20,
        sessions in 1usize..5,
    ) {
        let net = random_network(seed, nodes, sessions, 4).unwrap();
        for r in net.receivers() {
            for &l in net.route(r) {
                prop_assert!(net.crosses(r, l));
                prop_assert!(net
                    .receivers_of_session_on_link(l, r.session)
                    .contains(&r.index));
            }
        }
        for j in 0..net.link_count() {
            let link = mlf_net::LinkId(j);
            let from_union: Vec<ReceiverId> = net.receivers_on_link(link).collect();
            for r in &from_union {
                prop_assert!(net.crosses(*r, link));
            }
            let direct: usize = net
                .receivers()
                .filter(|&r| net.crosses(r, link))
                .count();
            prop_assert_eq!(from_union.len(), direct);
        }
    }

    /// Removing a receiver preserves every other receiver's route verbatim
    /// (the Figure 3 experiments depend on this).
    #[test]
    fn removal_preserves_other_routes(seed in any::<u64>()) {
        let net = random_network(seed, 12, 3, 4).unwrap();
        // Find a session with >= 2 receivers.
        let Some((sid, s)) = net
            .sessions_iter()
            .find(|(_, s)| s.receivers.len() >= 2)
        else {
            return Ok(()); // all-unicast draw; nothing to remove
        };
        let victim = ReceiverId::new(sid.0, s.receivers.len() - 1);
        let smaller = net.without_receiver(victim).expect("removable");
        for r in smaller.receivers() {
            // Map back to the original id (indices shift only above victim
            // in the same session; we removed the last, so ids are stable).
            prop_assert_eq!(smaller.route(r), net.route(r));
        }
    }
}
