//! The network tuple `N = (G, {S_1, ..., S_m}, chi, tau)` with precomputed
//! routing tables.
//!
//! [`Network`] is the central immutable object consumed by the allocator, the
//! fairness-property checkers and the simulator. On construction it computes
//! (or validates) every receiver's data-path and builds the per-link receiver
//! index sets `R_{i,j}` (receivers of session `S_i` whose data-path traverses
//! link `l_j`) and `R_j` (all receivers traversing `l_j`) from Table 1.

use crate::error::{NetError, NetResult};
use crate::graph::Graph;
use crate::ids::{LinkId, NodeId, ReceiverId, SessionId};
use crate::routing::{validate_route, PathFinder, Route};
use crate::session::{Session, SessionType};

/// A fully-routed multicast network.
///
/// # Examples
///
/// ```
/// use mlf_net::{Graph, Network, Session};
///
/// let mut g = Graph::new();
/// let s = g.add_node();
/// let r = g.add_node();
/// g.add_link(s, r, 10.0).unwrap();
/// let net = Network::new(g, vec![Session::unicast(s, r)]).unwrap();
/// assert_eq!(net.receiver_count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    graph: Graph,
    sessions: Vec<Session>,
    /// `routes[i][k]` = data-path of receiver `r_{i,k}` (ordered links).
    routes: Vec<Vec<Route>>,
    /// `on_link[j][i]` = indices `k` of receivers `r_{i,k}` in `R_{i,j}`.
    on_link: Vec<Vec<Vec<usize>>>,
    /// `crosses[i][k]` = the sorted, deduplicated link ids of `r_{i,k}`'s
    /// data-path, for O(log route) membership tests. Stored per receiver
    /// (not as a links-wide bitvec) so memory scales with total route
    /// length, not receivers × links — the 10⁵-receiver tree benches would
    /// otherwise need tens of gigabytes here.
    crosses: Vec<Vec<Vec<usize>>>,
    receiver_count: usize,
}

impl Network {
    /// Build a network, routing every receiver along the hop-count shortest
    /// path from its session sender (deterministic tie-breaking).
    pub fn new(graph: Graph, sessions: Vec<Session>) -> NetResult<Self> {
        // One PathFinder routes every receiver: the BFS scratch is reused
        // across all |receivers| queries instead of re-allocated per call.
        let mut finder = PathFinder::new();
        let mut routes = Vec::with_capacity(sessions.len());
        for (i, s) in sessions.iter().enumerate() {
            let mut session_routes = Vec::with_capacity(s.receivers.len());
            for (k, &rnode) in s.receivers.iter().enumerate() {
                let route =
                    finder
                        .shortest_path(&graph, s.sender, rnode)
                        .ok_or(NetError::Unroutable {
                            receiver: ReceiverId::new(i, k),
                        })?;
                session_routes.push(route);
            }
            routes.push(session_routes);
        }
        Self::assemble(graph, sessions, routes)
    }

    /// Build a network with explicitly supplied routes (`routes[i][k]` is the
    /// data-path of `r_{i,k}`). Every route is validated against the graph.
    pub fn with_routes(
        graph: Graph,
        sessions: Vec<Session>,
        routes: Vec<Vec<Route>>,
    ) -> NetResult<Self> {
        if routes.len() != sessions.len() {
            return Err(NetError::RouteShapeMismatch);
        }
        for (i, (s, rs)) in sessions.iter().zip(&routes).enumerate() {
            if rs.len() != s.receivers.len() {
                return Err(NetError::RouteShapeMismatch);
            }
            for (k, route) in rs.iter().enumerate() {
                validate_route(
                    &graph,
                    s.sender,
                    s.receivers[k],
                    route,
                    ReceiverId::new(i, k),
                )?;
            }
        }
        Self::assemble(graph, sessions, routes)
    }

    fn assemble(graph: Graph, sessions: Vec<Session>, routes: Vec<Vec<Route>>) -> NetResult<Self> {
        // Validate sessions against the model's restrictions.
        for (i, s) in sessions.iter().enumerate() {
            let sid = SessionId(i);
            if s.receivers.is_empty() {
                return Err(NetError::EmptySession(sid));
            }
            if !(s.max_rate.is_finite() && s.max_rate > 0.0) {
                return Err(NetError::BadMaxRate {
                    session: sid,
                    max_rate: s.max_rate,
                });
            }
            if !graph.contains_node(s.sender) {
                return Err(NetError::UnknownNode(s.sender));
            }
            // tau restriction: no two members of one session on the same
            // node. Sort-and-scan keeps this O(n log n) — a linear
            // `contains` per receiver would go quadratic at bench scale.
            let mut members: Vec<NodeId> = Vec::with_capacity(s.receivers.len() + 1);
            members.push(s.sender);
            for &r in &s.receivers {
                if !graph.contains_node(r) {
                    return Err(NetError::UnknownNode(r));
                }
                members.push(r);
            }
            members.sort_unstable_by_key(|n| n.0);
            if let Some(pair) = members.windows(2).find(|w| w[0] == w[1]) {
                return Err(NetError::DuplicateMember {
                    session: sid,
                    node: pair[0],
                });
            }
        }

        let n_links = graph.link_count();
        let mut on_link = vec![vec![Vec::new(); sessions.len()]; n_links];
        let mut crosses = Vec::with_capacity(sessions.len());
        let mut receiver_count = 0;
        for (i, session_routes) in routes.iter().enumerate() {
            let mut session_crosses = Vec::with_capacity(session_routes.len());
            for (k, route) in session_routes.iter().enumerate() {
                receiver_count += 1;
                let mut ids: Vec<usize> = Vec::with_capacity(route.len());
                for &l in route {
                    ids.push(l.0);
                    on_link[l.0][i].push(k);
                }
                ids.sort_unstable();
                ids.dedup();
                session_crosses.push(ids);
            }
            crosses.push(session_crosses);
        }
        // Receiver indices within each R_{i,j} come out sorted because we
        // iterate k in order; some consumers rely on that for determinism.
        Ok(Network {
            graph,
            sessions,
            routes,
            on_link,
            crosses,
            receiver_count,
        })
    }

    /// The underlying graph `G`.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// All sessions, indexed by [`SessionId`].
    pub fn sessions(&self) -> &[Session] {
        &self.sessions
    }

    /// Number of sessions `m`.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Number of links `n`.
    pub fn link_count(&self) -> usize {
        self.graph.link_count()
    }

    /// Total number of receivers across all sessions.
    pub fn receiver_count(&self) -> usize {
        self.receiver_count
    }

    /// Access a session by id. Panics on out-of-range ids (which can only be
    /// produced by foreign networks — a logic error).
    pub fn session(&self, id: SessionId) -> &Session {
        &self.sessions[id.0]
    }

    /// Iterate over `(SessionId, &Session)`.
    pub fn sessions_iter(&self) -> impl Iterator<Item = (SessionId, &Session)> + '_ {
        self.sessions
            .iter()
            .enumerate()
            .map(|(i, s)| (SessionId(i), s))
    }

    /// Iterate over every receiver id in the network, session-major.
    pub fn receivers(&self) -> impl Iterator<Item = ReceiverId> + '_ {
        self.sessions
            .iter()
            .enumerate()
            .flat_map(|(i, s)| (0..s.receivers.len()).map(move |k| ReceiverId::new(i, k)))
    }

    /// The data-path (ordered link sequence) of a receiver.
    pub fn route(&self, r: ReceiverId) -> &[LinkId] {
        &self.routes[r.session.0][r.index]
    }

    /// All routes, shaped `[session][receiver]`.
    pub fn routes(&self) -> &[Vec<Route>] {
        &self.routes
    }

    /// `R_{i,j}`: indices `k` of the receivers of session `i` whose data-path
    /// traverses link `j` (sorted ascending).
    pub fn receivers_of_session_on_link(&self, link: LinkId, session: SessionId) -> &[usize] {
        &self.on_link[link.0][session.0]
    }

    /// `R_j`: every receiver whose data-path traverses link `j`.
    pub fn receivers_on_link(&self, link: LinkId) -> impl Iterator<Item = ReceiverId> + '_ {
        self.on_link[link.0]
            .iter()
            .enumerate()
            .flat_map(move |(i, ks)| ks.iter().map(move |&k| ReceiverId::new(i, k)))
    }

    /// Whether receiver `r`'s data-path traverses link `j` (`r ∈ R_j`).
    /// O(log route length) over the receiver's sorted link-id list.
    pub fn crosses(&self, r: ReceiverId, link: LinkId) -> bool {
        self.crosses[r.session.0][r.index]
            .binary_search(&link.0)
            .is_ok()
    }

    /// The session's data-path: the set of links carrying data to *any* of
    /// its receivers, as a boolean mask indexed by link id.
    pub fn session_data_path(&self, session: SessionId) -> Vec<bool> {
        let mut mask = vec![false; self.link_count()];
        for route in &self.routes[session.0] {
            for &l in route {
                mask[l.0] = true;
            }
        }
        mask
    }

    /// Whether two receivers' data-paths traverse exactly the same link set
    /// (the premise of same-path-receiver-fairness, Fairness Property 2).
    /// Compares the two sorted link-id sets directly.
    pub fn same_data_path(&self, a: ReceiverId, b: ReceiverId) -> bool {
        self.crosses[a.session.0][a.index] == self.crosses[b.session.0][b.index]
    }

    /// A copy of the network with session `id`'s type replaced.
    ///
    /// This is the "replacement" of Lemma 3 / Corollary 1 — identical members,
    /// identical topology, different `chi`. Routes are reused unchanged.
    pub fn with_session_kind(&self, id: SessionId, kind: SessionType) -> Self {
        let mut net = self.clone();
        net.sessions[id.0].kind = kind;
        net
    }

    /// A copy of the network with all sessions flipped to the given type.
    pub fn with_uniform_kind(&self, kind: SessionType) -> Self {
        let mut net = self.clone();
        for s in &mut net.sessions {
            s.kind = kind;
        }
        net
    }

    /// A copy of the network with one receiver removed from its session
    /// (the operation studied in Section 2.5 / Figure 3). Routes for the
    /// remaining receivers are preserved exactly.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::UnknownReceiver`] for out-of-range ids, and
    /// [`NetError::EmptySession`] if removal would leave the session with no
    /// receivers.
    pub fn without_receiver(&self, r: ReceiverId) -> NetResult<Self> {
        let i = r.session.0;
        if i >= self.sessions.len() || r.index >= self.sessions[i].receivers.len() {
            return Err(NetError::UnknownReceiver(r));
        }
        if self.sessions[i].receivers.len() == 1 {
            return Err(NetError::EmptySession(r.session));
        }
        let mut sessions = self.sessions.clone();
        sessions[i].receivers.remove(r.index);
        let mut routes = self.routes.clone();
        routes[i].remove(r.index);
        Self::assemble(self.graph.clone(), sessions, routes)
    }

    /// Fraction of sessions that are multi-rate (the `m/n` knob of Figure 6
    /// viewed from the session side; handy for experiment reporting).
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn multi_rate_fraction(&self) -> f64 {
        if self.sessions.is_empty() {
            return 0.0;
        }
        let m = self
            .sessions
            .iter()
            .filter(|s| s.kind.is_multi_rate())
            .count();
        m as f64 / self.sessions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sender node 0, junction 1, receivers at 2 and 3.
    ///   0 --l0-- 1 --l1-- 2
    ///            \--l2--- 3
    fn two_receiver_tree() -> Network {
        let mut g = Graph::new();
        let n = g.add_nodes(4);
        g.add_link(n[0], n[1], 10.0).unwrap();
        g.add_link(n[1], n[2], 4.0).unwrap();
        g.add_link(n[1], n[3], 6.0).unwrap();
        Network::new(g, vec![Session::multi_rate(n[0], vec![n[2], n[3]])]).unwrap()
    }

    #[test]
    fn routes_follow_the_tree() {
        let net = two_receiver_tree();
        assert_eq!(net.route(ReceiverId::new(0, 0)), &[LinkId(0), LinkId(1)]);
        assert_eq!(net.route(ReceiverId::new(0, 1)), &[LinkId(0), LinkId(2)]);
    }

    #[test]
    fn link_membership_tables_are_consistent() {
        let net = two_receiver_tree();
        // Both receivers cross l0; one each crosses l1 and l2.
        assert_eq!(
            net.receivers_of_session_on_link(LinkId(0), SessionId(0)),
            &[0, 1]
        );
        assert_eq!(
            net.receivers_of_session_on_link(LinkId(1), SessionId(0)),
            &[0]
        );
        assert_eq!(
            net.receivers_of_session_on_link(LinkId(2), SessionId(0)),
            &[1]
        );
        assert!(net.crosses(ReceiverId::new(0, 0), LinkId(0)));
        assert!(!net.crosses(ReceiverId::new(0, 0), LinkId(2)));
        assert_eq!(net.receivers_on_link(LinkId(0)).count(), 2);
    }

    #[test]
    fn session_data_path_is_union_of_routes() {
        let net = two_receiver_tree();
        assert_eq!(net.session_data_path(SessionId(0)), vec![true, true, true]);
    }

    #[test]
    fn same_data_path_detection() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 1.0).unwrap();
        g.add_link(n[1], n[2], 1.0).unwrap();
        // Two unicast sessions from n0: one to n2, one to n2's sibling... use
        // co-located receivers: S1 -> n2, S2 -> n2 not allowed same session;
        // different sessions may share nodes.
        let net = Network::new(
            g,
            vec![Session::unicast(n[0], n[2]), Session::unicast(n[0], n[2])],
        )
        .unwrap();
        assert!(net.same_data_path(ReceiverId::new(0, 0), ReceiverId::new(1, 0)));
    }

    #[test]
    fn rejects_duplicate_members_within_a_session() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 1.0).unwrap();
        let err = Network::new(g, vec![Session::multi_rate(n[0], vec![n[1], n[1]])]);
        assert!(matches!(err, Err(NetError::DuplicateMember { .. })));
    }

    #[test]
    fn rejects_unroutable_receivers() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        g.add_link(n[0], n[1], 1.0).unwrap();
        // n2 is isolated.
        let err = Network::new(g, vec![Session::unicast(n[0], n[2])]);
        assert!(matches!(err, Err(NetError::Unroutable { .. })));
    }

    #[test]
    fn rejects_empty_sessions_and_bad_rates() {
        let mut g = Graph::new();
        let n = g.add_nodes(2);
        g.add_link(n[0], n[1], 1.0).unwrap();
        let err = Network::new(g.clone(), vec![Session::multi_rate(n[0], vec![])]);
        assert!(matches!(err, Err(NetError::EmptySession(_))));
        let err = Network::new(g, vec![Session::unicast(n[0], n[1]).with_max_rate(0.0)]);
        assert!(matches!(err, Err(NetError::BadMaxRate { .. })));
    }

    #[test]
    fn with_routes_validates_shape_and_paths() {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        let l0 = g.add_link(n[0], n[1], 1.0).unwrap();
        let l1 = g.add_link(n[1], n[2], 1.0).unwrap();
        let sessions = vec![Session::unicast(n[0], n[2])];
        // Correct explicit route.
        let net =
            Network::with_routes(g.clone(), sessions.clone(), vec![vec![vec![l0, l1]]]).unwrap();
        assert_eq!(net.route(ReceiverId::new(0, 0)), &[l0, l1]);
        // Wrong shape.
        assert!(matches!(
            Network::with_routes(g.clone(), sessions.clone(), vec![]),
            Err(NetError::RouteShapeMismatch)
        ));
        // Invalid path.
        assert!(matches!(
            Network::with_routes(g, sessions, vec![vec![vec![l1]]]),
            Err(NetError::InvalidRoute { .. })
        ));
    }

    #[test]
    fn without_receiver_preserves_remaining_routes() {
        let net = two_receiver_tree();
        let smaller = net.without_receiver(ReceiverId::new(0, 0)).unwrap();
        assert_eq!(smaller.receiver_count(), 1);
        assert_eq!(
            smaller.route(ReceiverId::new(0, 0)),
            &[LinkId(0), LinkId(2)],
            "surviving receiver keeps its original route"
        );
        // Removing the last receiver of a session is rejected.
        assert!(matches!(
            smaller.without_receiver(ReceiverId::new(0, 0)),
            Err(NetError::EmptySession(_))
        ));
        assert!(matches!(
            net.without_receiver(ReceiverId::new(5, 0)),
            Err(NetError::UnknownReceiver(_))
        ));
    }

    #[test]
    fn kind_flips_produce_independent_copies() {
        let net = two_receiver_tree();
        let single = net.with_session_kind(SessionId(0), SessionType::SingleRate);
        assert!(single.session(SessionId(0)).kind.is_single_rate());
        assert!(net.session(SessionId(0)).kind.is_multi_rate());
        let all_single = net.with_uniform_kind(SessionType::SingleRate);
        assert_eq!(all_single.multi_rate_fraction(), 0.0);
        assert_eq!(net.multi_rate_fraction(), 1.0);
    }
}
