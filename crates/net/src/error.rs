//! Error type for network-model construction and validation.

use crate::ids::{LinkId, NodeId, ReceiverId, SessionId};
use std::fmt;

/// Errors raised while building or validating a [`crate::Network`].
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Clone, PartialEq)]
pub enum NetError {
    /// A link references a node index that does not exist.
    UnknownNode(NodeId),
    /// A link id is out of range for the graph.
    UnknownLink(LinkId),
    /// A session id is out of range for the network.
    UnknownSession(SessionId),
    /// A receiver id does not exist in its session.
    UnknownReceiver(ReceiverId),
    /// A link was declared with a non-positive or non-finite capacity.
    BadCapacity {
        /// The offending link.
        link: LinkId,
        /// The declared capacity.
        capacity: f64,
    },
    /// A link connects a node to itself, which the model forbids.
    SelfLoop {
        /// The offending link.
        link: LinkId,
        /// The node at both endpoints.
        node: NodeId,
    },
    /// A session was declared with no receivers (the model requires at least one).
    EmptySession(SessionId),
    /// A session's maximum desired rate is not positive (`0 < kappa` required).
    BadMaxRate {
        /// The offending session.
        session: SessionId,
        /// The declared maximum rate.
        max_rate: f64,
    },
    /// Two members of the same session are mapped to the same node, which the
    /// topology mapping `tau` forbids.
    DuplicateMember {
        /// The offending session.
        session: SessionId,
        /// The node holding two members.
        node: NodeId,
    },
    /// No route exists from the session sender to one of its receivers.
    Unroutable {
        /// The unreachable receiver.
        receiver: ReceiverId,
    },
    /// An explicitly supplied route is not a valid path from the sender to
    /// the receiver in the graph.
    InvalidRoute {
        /// The receiver whose route failed validation.
        receiver: ReceiverId,
        /// What was wrong with the route.
        reason: RouteDefect,
    },
    /// The number of explicit route lists does not match the session layout.
    RouteShapeMismatch,
}

/// The specific way an explicit route failed validation.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteDefect {
    /// The route is empty but sender and receiver are on different nodes.
    Empty,
    /// Consecutive links do not share an endpoint.
    Disconnected,
    /// The route does not start at the sender's node.
    WrongStart,
    /// The route does not end at the receiver's node.
    WrongEnd,
    /// The route visits the same link twice.
    RepeatedLink,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::UnknownNode(n) => write!(f, "unknown node {n}"),
            NetError::UnknownLink(l) => write!(f, "unknown link {l}"),
            NetError::UnknownSession(s) => write!(f, "unknown session {s}"),
            NetError::UnknownReceiver(r) => write!(f, "unknown receiver {r}"),
            NetError::BadCapacity { link, capacity } => {
                write!(f, "link {link} has invalid capacity {capacity}")
            }
            NetError::SelfLoop { link, node } => {
                write!(f, "link {link} is a self-loop at node {node}")
            }
            NetError::EmptySession(s) => write!(f, "session {s} has no receivers"),
            NetError::BadMaxRate { session, max_rate } => {
                write!(f, "session {session} has invalid maximum rate {max_rate}")
            }
            NetError::DuplicateMember { session, node } => write!(
                f,
                "session {session} maps two members onto the same node {node}"
            ),
            NetError::Unroutable { receiver } => {
                write!(f, "no route from sender to receiver {receiver}")
            }
            NetError::InvalidRoute { receiver, reason } => {
                write!(f, "invalid explicit route for {receiver}: {reason:?}")
            }
            NetError::RouteShapeMismatch => {
                write!(f, "explicit route table shape does not match sessions")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// Convenient result alias for network construction.
pub(crate) type NetResult<T> = Result<T, NetError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_human_readable_messages() {
        let e = NetError::BadCapacity {
            link: LinkId(0),
            capacity: -1.0,
        };
        assert_eq!(e.to_string(), "link l1 has invalid capacity -1");
        let e = NetError::Unroutable {
            receiver: ReceiverId::new(0, 0),
        };
        assert!(e.to_string().contains("r1,1"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<NetError>();
    }
}
