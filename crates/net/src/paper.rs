//! The example networks of the paper's figures, reconstructed exactly.
//!
//! The SIGCOMM '99 scan renders the figures as schematic drawings; we rebuilt
//! each network so that *every* quantitative and qualitative claim made in
//! the paper's prose holds:
//!
//! * **Figure 1** — three sessions, receiver rates `{1, 1, 1, 2, 2}`, link
//!   capacities `{5, 7, 4, 3}`, session link-rate triples
//!   `{(1:2:0), (0:0:2), (0:2:2), (1:1:1)}`, link `l3` fully utilized on
//!   `r2,2`'s path, `r1,1`/`r2,1` sharing a data-path.
//! * **Figure 2** — single-rate `S1` pinned to rate 2 by `l2` (capacity 2),
//!   unicast `S2` at 3, `l1` the only fully-utilized link on `r1,1`'s path,
//!   no fully-utilized link on `r1,3`'s path.
//! * **Figure 3(a)** — removing `r3,2` *decreases* `r3,1` (3 → 2) while
//!   `r1,1` rises (7 → 8).
//! * **Figure 3(b)** — removing `r3,2` *increases* `r3,1` (7 → 8) while
//!   `r1,1` falls (3 → 2).
//! * **Figure 4** — Figure 2's topology reshaped so all of `S1`'s receivers
//!   share link `l4`; with `S1` redundancy 2 on shared links the max-min
//!   allocation is 2 everywhere, `u_{1,4} = 4 > u_{2,4} = 2`, and
//!   per-session-link-fairness fails for `S2`.
//!
//! Each builder returns the [`Network`] plus the expected max-min receiver
//! rates (shaped `[session][receiver]`) asserted by the paper, which the
//! `mlf-core` tests verify against the allocator.

// mlf-lint: allow-file(panic-unwrap, reason = "figure builders construct compile-time-constant topologies; every unwrap/expect is a by-construction invariant re-verified by this module's structure tests")
#![allow(clippy::unwrap_used)] // same rationale as the lint allow-file above

use crate::graph::Graph;
use crate::ids::ReceiverId;
use crate::network::Network;
use crate::session::Session;
use crate::topology::{star, Star};

/// A paper example: the network plus the receiver rates the paper reports
/// for its max-min fair allocation (shaped `[session][receiver]`).
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// The reconstructed network.
    pub network: Network,
    /// Expected max-min fair receiver rates, `[session][receiver]`.
    pub expected_rates: Vec<Vec<f64>>,
}

/// Figure 1: the three-session illustration network.
///
/// Topology (a tree; all paths are unique):
///
/// ```text
///  n0 (X1, X2) --l1:5-- n2 --l4:3-- n3 (r1,1  r2,1  r3,1)   rates 1,1,1
///  n1 (X3)     --l2:7-- n2 --l3:4-- n4 (r2,2  r3,2)         rates 2,2
/// ```
///
/// `S1` is unicast; `S2`, `S3` are multi-rate. In the multi-rate max-min
/// fair allocation `l4` saturates at level 1 freezing the three co-located
/// receivers, then `l3` saturates at level 2 freezing `r2,2`/`r3,2`.
/// Session link rates come out `(1:2:0)` on `l1`, `(0:0:2)` on `l2`,
/// `(0:2:2)` on `l3`, `(1:1:1)` on `l4` — the four triples in the figure.
pub fn figure1() -> PaperExample {
    let mut g = Graph::new();
    let n = g.add_nodes(5);
    g.add_link(n[0], n[2], 5.0).unwrap(); // l1
    g.add_link(n[1], n[2], 7.0).unwrap(); // l2
    g.add_link(n[2], n[4], 4.0).unwrap(); // l3
    g.add_link(n[2], n[3], 3.0).unwrap(); // l4
    let sessions = vec![
        Session::unicast(n[0], n[3]),                // S1: X1 -> r1,1
        Session::multi_rate(n[0], vec![n[3], n[4]]), // S2: X2 -> r2,1 r2,2
        Session::multi_rate(n[1], vec![n[3], n[4]]), // S3: X3 -> r3,1 r3,2
    ];
    let network = Network::new(g, sessions).expect("figure 1 network");
    PaperExample {
        network,
        expected_rates: vec![vec![1.0], vec![1.0, 2.0], vec![1.0, 2.0]],
    }
}

/// Figure 2: single-rate `S1` drags all its receivers to its slowest branch.
///
/// Topology (a tree):
///
/// ```text
///  n0 (X1, X2) --l1:5-- n1 --l4:6-- n4 (r1,1  r2,1)
///  n0          --l2:2-- n2 (r1,2)
///  n0          --l3:3-- n3 (r1,3)
/// ```
///
/// With `S1` single-rate: `S1` receivers all get 2 (pinned by `l2`), the
/// unicast `S2` gets 3, saturating `l1` (2 + 3 = 5). `r1,1` and `r2,1`
/// share the data-path `{l1, l4}` yet receive 2 ≠ 3 — same-path-receiver-
/// fairness fails, as do fully-utilized-receiver-fairness (for `r1,3`) and
/// per-receiver-link-fairness (for `S1`), exactly as Section 2.3 argues.
pub fn figure2() -> PaperExample {
    let mut g = Graph::new();
    let n = g.add_nodes(5);
    g.add_link(n[0], n[1], 5.0).unwrap(); // l1
    g.add_link(n[0], n[2], 2.0).unwrap(); // l2
    g.add_link(n[0], n[3], 3.0).unwrap(); // l3
    g.add_link(n[1], n[4], 6.0).unwrap(); // l4
    let sessions = vec![
        Session::single_rate(n[0], vec![n[4], n[2], n[3]]).with_max_rate(100.0), // S1
        Session::unicast(n[0], n[4]).with_max_rate(100.0),                       // S2
    ];
    let network = Network::new(g, sessions).expect("figure 2 network");
    PaperExample {
        network,
        expected_rates: vec![vec![2.0, 2.0, 2.0], vec![3.0]],
    }
}

/// The multi-rate counterfactual of Figure 2: identical network but `S1`
/// flipped to multi-rate (the Lemma 3 "replacement"). The max-min fair
/// allocation becomes `r1,1 = r2,1 = 2.5` (splitting `l1`), `r1,2 = 2`,
/// `r1,3 = 3` — all four fairness properties hold.
pub fn figure2_multi_rate() -> PaperExample {
    let base = figure2();
    let network = base.network.with_session_kind(
        crate::ids::SessionId(0),
        crate::session::SessionType::MultiRate,
    );
    PaperExample {
        network,
        expected_rates: vec![vec![2.5, 2.0, 3.0], vec![2.5]],
    }
}

/// A receiver-removal example: the network, the receiver to remove, and the
/// expected max-min rates before and after removal.
#[derive(Debug, Clone)]
pub struct RemovalExample {
    /// The network before removal.
    pub network: Network,
    /// The receiver the experiment removes (`r3,2` in both figures).
    pub removed: ReceiverId,
    /// Expected rates before removal, `[session][receiver]`.
    pub before: Vec<Vec<f64>>,
    /// Expected rates after removal, `[session][receiver]`.
    pub after: Vec<Vec<f64>>,
}

/// Figure 3(a): removing a receiver *decreases* a same-session receiver's
/// max-min fair rate (`r3,1`: 3 → 2) and increases another session's
/// (`r1,1`: 7 → 8).
///
/// Topology (a tree):
///
/// ```text
///  n4 (X1) --l4:10-- n2 --l1:10-- n3 (r1,1  r3,1)
///  n0 (X2) --l2:2--- n1 (X3) --l3:4-- n2 (r2,1)
///                    n0 also hosts r3,2
/// ```
///
/// Paths: `r1,1: {l4, l1}`, `r2,1: {l2, l3}`, `r3,1: {l3, l1}`,
/// `r3,2: {l2}`. Before removal, `l2` (capacity 2) freezes `r2,1` and
/// `r3,2` at 1, letting `r3,1` take 3 on `l3`; removing `r3,2` releases
/// `r2,1` to 2, which squeezes `r3,1` down to 2 on `l3` and releases a unit
/// of `l1` to `r1,1`.
pub fn figure3a() -> RemovalExample {
    let mut g = Graph::new();
    let n = g.add_nodes(5); // n0=A, n1=B, n2=C, n3=E, n4=F
    g.add_link(n[2], n[3], 10.0).unwrap(); // l1: C-E
    g.add_link(n[0], n[1], 2.0).unwrap(); // l2: A-B
    g.add_link(n[1], n[2], 4.0).unwrap(); // l3: B-C
    g.add_link(n[4], n[2], 10.0).unwrap(); // l4: F-C
    let sessions = vec![
        Session::unicast(n[4], n[3]),                // S1: X1@F -> r1,1@E
        Session::unicast(n[0], n[2]),                // S2: X2@A -> r2,1@C
        Session::multi_rate(n[1], vec![n[3], n[0]]), // S3: X3@B -> r3,1@E, r3,2@A
    ];
    let network = Network::new(g, sessions).expect("figure 3a network");
    RemovalExample {
        network,
        removed: ReceiverId::new(2, 1),
        before: vec![vec![7.0], vec![1.0], vec![3.0, 1.0]],
        after: vec![vec![8.0], vec![2.0], vec![2.0]],
    }
}

/// Figure 3(b): removing a receiver *increases* a same-session receiver's
/// max-min fair rate (`r3,1`: 7 → 8) and decreases another session's
/// (`r1,1`: 3 → 2).
///
/// The topology contains a cycle, so routes are supplied explicitly:
///
/// ```text
///  n0 (X2, X3, r3,2... see below) --l2:2-- n1 --l3:4-- n2 --l1:10-- n3
///  n0 ----------------l4:10---------------------------- n2
/// ```
///
/// Members: `X2@n0 -> r2,1@n2` via `{l2, l3}` (the long way — its provider
/// pinned it to that route); `X3@n0 -> r3,1@n3` via `{l4, l1}` and
/// `-> r3,2@n1` via `{l2}`; `X1@n1 -> r1,1@n3` via `{l3, l1}`.
/// Before removal `l2` freezes `r2,1` and `r3,2` at 1, `l3` then freezes
/// `r1,1` at 3, and `r3,1` soaks up `l1`'s remainder (7). Removing `r3,2`
/// releases `r2,1` to 2, which squeezes `r1,1` to 2 on `l3` and frees `l1`
/// up to 8 for `r3,1`.
pub fn figure3b() -> RemovalExample {
    let mut g = Graph::new();
    let n = g.add_nodes(4); // n0=A, n1=B, n2=C, n3=D
    let l1 = g.add_link(n[2], n[3], 10.0).unwrap(); // l1: C-D
    let l2 = g.add_link(n[0], n[1], 2.0).unwrap(); // l2: A-B
    let l3 = g.add_link(n[1], n[2], 4.0).unwrap(); // l3: B-C
    let l4 = g.add_link(n[0], n[2], 10.0).unwrap(); // l4: A-C
    let sessions = vec![
        Session::unicast(n[1], n[3]),                // S1: X1@B -> r1,1@D
        Session::unicast(n[0], n[2]),                // S2: X2@A -> r2,1@C
        Session::multi_rate(n[0], vec![n[3], n[1]]), // S3: X3@A -> r3,1@D, r3,2@B
    ];
    let routes = vec![
        vec![vec![l3, l1]],           // r1,1
        vec![vec![l2, l3]],           // r2,1 (explicitly the long way around)
        vec![vec![l4, l1], vec![l2]], // r3,1 ; r3,2
    ];
    let network = Network::with_routes(g, sessions, routes).expect("figure 3b network");
    RemovalExample {
        network,
        removed: ReceiverId::new(2, 1),
        before: vec![vec![3.0], vec![1.0], vec![7.0, 1.0]],
        after: vec![vec![2.0], vec![2.0], vec![8.0]],
    }
}

/// Figure 4: the redundancy illustration. Same link capacities as Figure 2
/// but reshaped so *all* of `S1`'s receivers traverse the shared link `l4`:
///
/// ```text
///  n0 (X1, X2) --l4:6-- n1 --l1:5-- n2 (r1,1  r2,1)
///                       n1 --l2:2-- n3 (r1,2)
///                       n1 --l3:3-- n4 (r1,3)
/// ```
///
/// With `S1` multi-rate but exhibiting redundancy 2 on its shared links
/// (`u_{1,j} = 2·max` wherever ≥ 2 of its receivers cross a link), the
/// max-min allocation puts every receiver at 2: `u_{1,4} = 4`, `u_{2,4} = 2`,
/// `l4` saturates (4 + 2 = 6). `l4` is the only fully utilized link on
/// `r2,1`'s path and `u_{2,4} < u_{1,4}`, so per-session-link-fairness fails
/// for `S2` — the paper's headline redundancy harm.
///
/// Returns the network and the rates expected *under redundancy 2 for `S1`*
/// (the efficient allocation for the same network is `(3, 2, 3; 3)` and is
/// exercised separately by the tests).
pub fn figure4() -> PaperExample {
    let mut g = Graph::new();
    let n = g.add_nodes(5);
    g.add_link(n[1], n[2], 5.0).unwrap(); // l1
    g.add_link(n[1], n[3], 2.0).unwrap(); // l2
    g.add_link(n[1], n[4], 3.0).unwrap(); // l3
    g.add_link(n[0], n[1], 6.0).unwrap(); // l4 (the shared first hop)
    let sessions = vec![
        Session::multi_rate(n[0], vec![n[2], n[3], n[4]]).with_max_rate(100.0), // S1
        Session::unicast(n[0], n[2]).with_max_rate(100.0),                      // S2
    ];
    let network = Network::new(g, sessions).expect("figure 4 network");
    PaperExample {
        network,
        expected_rates: vec![vec![2.0, 2.0, 2.0], vec![2.0]],
    }
}

/// The efficient-allocation expectation for the Figure 4 network (no
/// redundancy): `l1` (capacity 5) splits between `r1,1` and `r2,1` at 2.5,
/// `r1,2` keeps its 2-capacity tail, `r1,3` its 3-capacity tail, and the
/// shared `l4` ends up *not* fully utilized (max 3 + 2.5 = 5.5 < 6).
pub fn figure4_efficient_rates() -> Vec<Vec<f64>> {
    vec![vec![2.5, 2.0, 3.0], vec![2.5]]
}

/// The Section 3 fixed-layer example: a single link of capacity `c` carrying
/// two single-receiver layered sessions. `S1` offers three layers of `c/3`
/// each; `S2` offers two layers of `c/2` each. No max-min fair allocation
/// exists when receivers must hold a fixed layer prefix (the `mlf-layering`
/// crate proves this by enumeration).
pub fn single_link(capacity: f64) -> Network {
    let mut g = Graph::new();
    let a = g.add_node();
    let b = g.add_node();
    g.add_link(a, b, capacity).unwrap();
    Network::new(g, vec![Session::unicast(a, b), Session::unicast(a, b)])
        .expect("single link network")
}

/// Figure 7(a): the two-receiver analysis star (shared link + two fanout
/// links). Capacities are immaterial for the loss-driven protocol analysis;
/// they are set generously so the protocols, not the allocator, bind.
// mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
pub fn figure7a() -> Star {
    star(1024.0, &[1024.0, 1024.0])
}

/// Figure 7(b): the 100-receiver simulation star.
// mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
pub fn figure7b(receivers: usize) -> Star {
    star(1024.0, &vec![1024.0; receivers])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LinkId, SessionId};

    #[test]
    fn figure1_structure() {
        let ex = figure1();
        let net = &ex.network;
        assert_eq!(net.session_count(), 3);
        assert_eq!(net.receiver_count(), 5);
        // r1,1 and r2,1 share a data-path (the same-path-fairness pair).
        assert!(net.same_data_path(ReceiverId::new(0, 0), ReceiverId::new(1, 0)));
        // l3 carries r2,2 and r3,2; l4 carries the three rate-1 receivers.
        assert_eq!(net.receivers_on_link(LinkId(2)).count(), 2);
        assert_eq!(net.receivers_on_link(LinkId(3)).count(), 3);
        // Capacities as labelled.
        let caps = net.graph().capacities();
        assert_eq!(caps, vec![5.0, 7.0, 4.0, 3.0]);
    }

    #[test]
    fn figure2_structure() {
        let ex = figure2();
        let net = &ex.network;
        assert!(net.session(SessionId(0)).kind.is_single_rate());
        assert!(net.same_data_path(ReceiverId::new(0, 0), ReceiverId::new(1, 0)));
        // r1,2's path is exactly {l2}; r1,3's is {l3}.
        assert_eq!(net.route(ReceiverId::new(0, 1)), &[LinkId(1)]);
        assert_eq!(net.route(ReceiverId::new(0, 2)), &[LinkId(2)]);
    }

    #[test]
    fn figure3a_link_membership_matches_derivation() {
        let ex = figure3a();
        let net = &ex.network;
        // l2 carries r2,1 (S2) and r3,2 (S3).
        let on_l2: Vec<_> = net.receivers_on_link(LinkId(1)).collect();
        assert_eq!(on_l2, vec![ReceiverId::new(1, 0), ReceiverId::new(2, 1)]);
        // l3 carries r2,1 and r3,1.
        let on_l3: Vec<_> = net.receivers_on_link(LinkId(2)).collect();
        assert_eq!(on_l3, vec![ReceiverId::new(1, 0), ReceiverId::new(2, 0)]);
        // l1 carries r1,1 and r3,1.
        let on_l1: Vec<_> = net.receivers_on_link(LinkId(0)).collect();
        assert_eq!(on_l1, vec![ReceiverId::new(0, 0), ReceiverId::new(2, 0)]);
    }

    #[test]
    fn figure3b_link_membership_matches_derivation() {
        let ex = figure3b();
        let net = &ex.network;
        let on_l2: Vec<_> = net.receivers_on_link(LinkId(1)).collect();
        assert_eq!(on_l2, vec![ReceiverId::new(1, 0), ReceiverId::new(2, 1)]);
        let on_l3: Vec<_> = net.receivers_on_link(LinkId(2)).collect();
        assert_eq!(on_l3, vec![ReceiverId::new(0, 0), ReceiverId::new(1, 0)]);
        let on_l1: Vec<_> = net.receivers_on_link(LinkId(0)).collect();
        assert_eq!(on_l1, vec![ReceiverId::new(0, 0), ReceiverId::new(2, 0)]);
    }

    #[test]
    fn figure4_all_s1_receivers_share_l4() {
        let ex = figure4();
        let net = &ex.network;
        assert_eq!(
            net.receivers_of_session_on_link(LinkId(3), SessionId(0)),
            &[0, 1, 2]
        );
        assert!(net.same_data_path(ReceiverId::new(0, 0), ReceiverId::new(1, 0)));
    }

    #[test]
    fn removal_examples_remove_r32() {
        for ex in [figure3a(), figure3b()] {
            assert_eq!(ex.removed, ReceiverId::new(2, 1));
            let after = ex.network.without_receiver(ex.removed).unwrap();
            assert_eq!(after.receiver_count(), ex.network.receiver_count() - 1);
        }
    }

    #[test]
    fn single_link_and_stars_assemble() {
        let net = single_link(1.0);
        assert_eq!(net.link_count(), 1);
        assert_eq!(net.session_count(), 2);
        let s = figure7a();
        assert_eq!(s.receivers.len(), 2);
        let s = figure7b(100);
        assert_eq!(s.receivers.len(), 100);
    }
}
