//! Strongly-typed identifiers for network entities.
//!
//! The paper's model (Table 1) indexes links as `l_j`, sessions as `S_i` and
//! receivers as `r_{i,k}`. Using newtypes instead of bare `usize` prevents the
//! classic simulator bug of indexing a link table with a node id. All ids are
//! dense indices into the owning container, assigned in insertion order.

use std::fmt;

/// Identifier of a node in the network graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// Identifier of a link `l_j` in the network graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LinkId(pub usize);

/// Identifier of a session `S_i`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub usize);

/// Identifier of a receiver `r_{i,k}`: the `k`-th receiver of session `S_i`.
///
/// A receiver is always owned by exactly one session (the paper assumes a
/// receiver belonging to two sessions is modelled as two distinct receivers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReceiverId {
    /// The owning session `S_i`.
    pub session: SessionId,
    /// Index `k` of the receiver within the session (0-based).
    pub index: usize,
}

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl LinkId {
    /// The dense index of this link.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl SessionId {
    /// The dense index of this session.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl ReceiverId {
    /// Construct a receiver id from a session index and receiver index.
    #[inline]
    pub fn new(session: usize, index: usize) -> Self {
        ReceiverId {
            session: SessionId(session),
            index,
        }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The paper numbers links from 1 (`l_1`, ..., `l_n`); we keep 0-based
        // indices internally but display 1-based to match the figures.
        write!(f, "l{}", self.0 + 1)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0 + 1)
    }
}

impl fmt::Display for ReceiverId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{},{}", self.session.0 + 1, self.index + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(NodeId(0).to_string(), "n0");
        assert_eq!(LinkId(0).to_string(), "l1");
        assert_eq!(SessionId(2).to_string(), "S3");
        assert_eq!(ReceiverId::new(1, 0).to_string(), "r2,1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(LinkId(0) < LinkId(1));
        assert!(NodeId(3) > NodeId(2));
        assert!(ReceiverId::new(0, 1) < ReceiverId::new(1, 0));
    }

    #[test]
    fn receiver_id_accessors() {
        let r = ReceiverId::new(4, 7);
        assert_eq!(r.session.index(), 4);
        assert_eq!(r.index, 7);
    }
}
