//! Multicast sessions: a sender, a set of receivers, a type, and a maximum
//! desired rate.
//!
//! A session `S_i = (X_i, {r_{i,1}, ..., r_{i,k_i}})` has exactly one sender
//! and at least one receiver (Section 2). The mapping `chi` assigns each
//! session a type:
//!
//! * **single-rate** (`chi(S_i) = S`): data must be transmitted to all
//!   receivers at the same rate — the assumption made by most prior multicast
//!   fairness definitions (Tzeng & Siu among others);
//! * **multi-rate** (`chi(S_i) = M`): receivers may receive at independent
//!   (arbitrary) rates, as enabled by layered multicast.
//!
//! A unicast session is simply a session with a single receiver; the paper
//! observes it can be modelled as either type (both coincide), so we do not
//! introduce a third variant.

use crate::ids::NodeId;

/// The session-type mapping `chi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SessionType {
    /// `chi(S_i) = S`: all receivers must receive at a common rate.
    SingleRate,
    /// `chi(S_i) = M`: receivers may receive at independent rates.
    MultiRate,
}

impl SessionType {
    /// `true` for [`SessionType::MultiRate`].
    pub fn is_multi_rate(self) -> bool {
        matches!(self, SessionType::MultiRate)
    }

    /// `true` for [`SessionType::SingleRate`].
    pub fn is_single_rate(self) -> bool {
        matches!(self, SessionType::SingleRate)
    }
}

/// A multicast session `S_i` together with its topology mapping (`tau`
/// restricted to this session's members) and maximum desired rate `kappa_i`.
#[derive(Debug, Clone, PartialEq)]
pub struct Session {
    /// Node hosting the sender `X_i`.
    pub sender: NodeId,
    /// Nodes hosting the receivers `r_{i,1}, ..., r_{i,k_i}` (at least one).
    pub receivers: Vec<NodeId>,
    /// The session type `chi(S_i)`.
    pub kind: SessionType,
    /// The maximum desired rate `kappa_i` (`0 < kappa_i <= INF_RATE`). The
    /// paper permits `kappa_i = infinity`; we encode "effectively unbounded"
    /// as [`Session::UNBOUNDED_RATE`].
    pub max_rate: f64,
}

impl Session {
    /// Stand-in for `kappa_i = infinity`: far larger than any capacity used in
    /// experiments, yet finite so rate arithmetic stays well-behaved.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub const UNBOUNDED_RATE: f64 = 1e12;

    /// Create a multi-rate session with unbounded desired rate.
    pub fn multi_rate(sender: NodeId, receivers: Vec<NodeId>) -> Self {
        Session {
            sender,
            receivers,
            kind: SessionType::MultiRate,
            max_rate: Self::UNBOUNDED_RATE,
        }
    }

    /// Create a single-rate session with unbounded desired rate.
    pub fn single_rate(sender: NodeId, receivers: Vec<NodeId>) -> Self {
        Session {
            sender,
            receivers,
            kind: SessionType::SingleRate,
            max_rate: Self::UNBOUNDED_RATE,
        }
    }

    /// Create a unicast session (single receiver, multi-rate by convention —
    /// the two types coincide for unicast).
    pub fn unicast(sender: NodeId, receiver: NodeId) -> Self {
        Session::multi_rate(sender, vec![receiver])
    }

    /// Builder-style override of the maximum desired rate `kappa_i`.
    pub fn with_max_rate(mut self, max_rate: f64) -> Self {
        self.max_rate = max_rate;
        self
    }

    /// Builder-style override of the session type.
    pub(crate) fn with_kind(mut self, kind: SessionType) -> Self {
        self.kind = kind;
        self
    }

    /// Return a copy of this session with its type flipped to multi-rate.
    ///
    /// This is the "replacement" operation of Lemma 3: same members, same
    /// topology, only the type differs.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn as_multi_rate(&self) -> Self {
        self.clone().with_kind(SessionType::MultiRate)
    }

    /// Return a copy of this session with its type flipped to single-rate.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn as_single_rate(&self) -> Self {
        self.clone().with_kind(SessionType::SingleRate)
    }

    /// Number of receivers `k_i`.
    pub fn receiver_count(&self) -> usize {
        self.receivers.len()
    }

    /// Whether this session is unicast (exactly one receiver).
    pub fn is_unicast(&self) -> bool {
        self.receivers.len() == 1
    }

    /// Return a copy with receiver `index` removed (used by the Figure 3
    /// receiver-removal experiments). Panics if `index` is out of range.
    pub fn without_receiver(&self, index: usize) -> Self {
        let mut s = self.clone();
        s.receivers.remove(index);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_expected_fields() {
        let s = Session::multi_rate(NodeId(0), vec![NodeId(1), NodeId(2)]);
        assert!(s.kind.is_multi_rate());
        assert_eq!(s.receiver_count(), 2);
        assert_eq!(s.max_rate, Session::UNBOUNDED_RATE);

        let u = Session::unicast(NodeId(0), NodeId(1));
        assert!(u.is_unicast());

        let sr = Session::single_rate(NodeId(0), vec![NodeId(1)]).with_max_rate(3.0);
        assert!(sr.kind.is_single_rate());
        assert_eq!(sr.max_rate, 3.0);
    }

    #[test]
    fn type_flips_preserve_membership() {
        let s = Session::single_rate(NodeId(0), vec![NodeId(1), NodeId(2)]).with_max_rate(9.0);
        let m = s.as_multi_rate();
        assert!(m.kind.is_multi_rate());
        assert_eq!(m.receivers, s.receivers);
        assert_eq!(m.max_rate, 9.0);
        let back = m.as_single_rate();
        assert_eq!(back, s);
    }

    #[test]
    fn without_receiver_removes_exactly_one() {
        let s = Session::multi_rate(NodeId(0), vec![NodeId(1), NodeId(2), NodeId(3)]);
        let t = s.without_receiver(1);
        assert_eq!(t.receivers, vec![NodeId(1), NodeId(3)]);
        assert_eq!(s.receiver_count(), 3, "original untouched");
    }

    #[test]
    fn session_type_predicates() {
        assert!(SessionType::MultiRate.is_multi_rate());
        assert!(!SessionType::MultiRate.is_single_rate());
        assert!(SessionType::SingleRate.is_single_rate());
    }
}
