//! Topology builders for the experiment harnesses and property tests.
//!
//! The paper's quantitative experiments all run on "modified star" networks
//! (Figure 7): a sender behind one shared link feeding a hub that fans out to
//! the receivers over independent links. The theory sections use small
//! hand-built trees. Property tests additionally need randomized tree
//! topologies; [`random_tree`] produces those deterministically from a seed
//! (its own tiny SplitMix64 generator keeps this crate dependency-free).

use crate::graph::Graph;
use crate::ids::{LinkId, NodeId};
use crate::network::Network;
use crate::session::Session;

/// A star (Figure 7): `sender --shared--> hub --fanout_k--> receiver_k`.
#[derive(Debug, Clone)]
pub struct Star {
    /// The assembled graph.
    pub graph: Graph,
    /// Node hosting the sender.
    pub sender: NodeId,
    /// The hub node behind the shared link.
    pub hub: NodeId,
    /// Receiver nodes, one per fanout link.
    pub receivers: Vec<NodeId>,
    /// The shared link abutting the sender.
    pub shared_link: LinkId,
    /// Fanout links, `fanout[k]` reaching `receivers[k]`.
    pub fanout_links: Vec<LinkId>,
}

/// Build the modified-star topology of Figure 7 with per-receiver fanout
/// capacities. The shared link abuts the sender; each receiver hangs off the
/// hub on its own link.
pub fn star(shared_capacity: f64, fanout_capacities: &[f64]) -> Star {
    let mut graph = Graph::new();
    let sender = graph.add_node();
    let hub = graph.add_node();
    let shared_link = graph
        .add_link(sender, hub, shared_capacity)
        .expect("star shared link");
    let mut receivers = Vec::with_capacity(fanout_capacities.len());
    let mut fanout_links = Vec::with_capacity(fanout_capacities.len());
    for &c in fanout_capacities {
        let r = graph.add_node();
        let l = graph.add_link(hub, r, c).expect("star fanout link");
        receivers.push(r);
        fanout_links.push(l);
    }
    Star {
        graph,
        sender,
        hub,
        receivers,
        shared_link,
        fanout_links,
    }
}

/// Build a uniform modified star (`n` receivers, all fanout links with the
/// same capacity) wrapped into a single multi-rate session network — the
/// exact substrate of the Figure 8 simulations.
pub fn star_network(n_receivers: usize, shared_capacity: f64, fanout_capacity: f64) -> Network {
    let caps = vec![fanout_capacity; n_receivers];
    let s = star(shared_capacity, &caps);
    Network::new(s.graph, vec![Session::multi_rate(s.sender, s.receivers)])
        .expect("star network is routable by construction")
}

/// A chain `n0 --l0-- n1 --l1-- ... -- n_k` with the given per-hop
/// capacities. Returns the graph, the node list, and the link list.
pub fn chain(capacities: &[f64]) -> (Graph, Vec<NodeId>, Vec<LinkId>) {
    let mut g = Graph::new();
    let nodes = g.add_nodes(capacities.len() + 1);
    let links = capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| g.add_link(nodes[i], nodes[i + 1], c).expect("chain link"))
        .collect();
    (g, nodes, links)
}

/// A dumbbell: `left_count` sender nodes and `right_count` receiver nodes on
/// opposite sides of a single bottleneck link.
///
/// ```text
/// s_1 --access--\                    /--access-- r_1
///  ...           hubL --bottleneck-- hubR        ...
/// s_a --access--/                    \--access-- r_b
/// ```
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// The assembled graph.
    pub graph: Graph,
    /// Sender-side leaf nodes.
    pub senders: Vec<NodeId>,
    /// Receiver-side leaf nodes.
    pub receivers: Vec<NodeId>,
    /// The central bottleneck link.
    pub bottleneck: LinkId,
    /// Access links from each sender to the left hub.
    pub sender_access: Vec<LinkId>,
    /// Access links from the right hub to each receiver.
    pub receiver_access: Vec<LinkId>,
}

/// Build a dumbbell topology.
pub fn dumbbell(
    left_count: usize,
    right_count: usize,
    bottleneck_capacity: f64,
    access_capacity: f64,
) -> Dumbbell {
    let mut g = Graph::new();
    let hub_l = g.add_node();
    let hub_r = g.add_node();
    let bottleneck = g
        .add_link(hub_l, hub_r, bottleneck_capacity)
        .expect("dumbbell bottleneck");
    let mut senders = Vec::new();
    let mut sender_access = Vec::new();
    for _ in 0..left_count {
        let n = g.add_node();
        sender_access.push(g.add_link(n, hub_l, access_capacity).expect("access"));
        senders.push(n);
    }
    let mut receivers = Vec::new();
    let mut receiver_access = Vec::new();
    for _ in 0..right_count {
        let n = g.add_node();
        receiver_access.push(g.add_link(hub_r, n, access_capacity).expect("access"));
        receivers.push(n);
    }
    Dumbbell {
        graph: g,
        senders,
        receivers,
        bottleneck,
        sender_access,
        receiver_access,
    }
}

/// A complete `arity`-ary tree of the given depth. Returns the graph, the
/// root, and the nodes grouped by level (`levels[0] = [root]`). Capacities
/// are assigned per level by `capacity_at(level_of_child)`.
pub fn kary_tree(
    depth: usize,
    arity: usize,
    mut capacity_at: impl FnMut(usize) -> f64,
) -> (Graph, NodeId, Vec<Vec<NodeId>>) {
    assert!(arity >= 1, "arity must be at least 1");
    let mut g = Graph::new();
    let root = g.add_node();
    let mut levels = vec![vec![root]];
    for level in 1..=depth {
        let mut this_level = Vec::new();
        let parents = levels[level - 1].clone();
        for p in parents {
            for _ in 0..arity {
                let c = g.add_node();
                g.add_link(p, c, capacity_at(level)).expect("tree link");
                this_level.push(c);
            }
        }
        levels.push(this_level);
    }
    (g, root, levels)
}

/// Minimal deterministic generator (SplitMix64) used only for randomized
/// topology construction. Not a statistical-quality RNG; sufficient for
/// structural variety in property tests.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// A uniformly random labelled tree on `node_count` nodes (random attachment:
/// node `k` links to a uniformly chosen earlier node), with capacities drawn
/// uniformly from `[cap_lo, cap_hi)`. Deterministic in `seed`.
pub fn random_tree(seed: u64, node_count: usize, cap_lo: f64, cap_hi: f64) -> Graph {
    assert!(node_count >= 1);
    assert!(cap_lo > 0.0 && cap_hi > cap_lo);
    let mut rng = SplitMix64(seed);
    let mut g = Graph::new();
    let nodes = g.add_nodes(node_count);
    for k in 1..node_count {
        let parent = nodes[rng.below(k)];
        let cap = rng.range_f64(cap_lo, cap_hi);
        g.add_link(parent, nodes[k], cap).expect("tree link");
    }
    g
}

/// Attach `session_count` randomly-placed multicast sessions (each with
/// `1..=max_receivers` receivers on distinct nodes) to a graph. Sessions with
/// one receiver are unicast. Deterministic in `seed`. Session types are
/// multi-rate; callers flip types as needed for their experiment.
pub fn random_sessions(
    graph: &Graph,
    seed: u64,
    session_count: usize,
    max_receivers: usize,
) -> Vec<Session> {
    assert!(graph.node_count() >= 2, "need at least two nodes");
    assert!(max_receivers >= 1);
    let mut rng = SplitMix64(seed ^ 0xA5A5_A5A5_DEAD_BEEF);
    let n = graph.node_count();
    let mut sessions = Vec::with_capacity(session_count);
    for _ in 0..session_count {
        let sender = NodeId(rng.below(n));
        let want = 1 + rng.below(max_receivers.min(n - 1));
        let mut receivers = Vec::with_capacity(want);
        let mut guard = 0;
        while receivers.len() < want && guard < 16 * n {
            guard += 1;
            let cand = NodeId(rng.below(n));
            if cand != sender && !receivers.contains(&cand) {
                receivers.push(cand);
            }
        }
        if receivers.is_empty() {
            // Degenerate tiny graph: fall back to the single non-sender node.
            let fallback = if sender == NodeId(0) {
                NodeId(1)
            } else {
                NodeId(0)
            };
            receivers.push(fallback);
        }
        sessions.push(Session::multi_rate(sender, receivers));
    }
    sessions
}

/// A fully-assembled random multicast network on a random tree. This is the
/// canonical generator used by the cross-crate property tests: trees make
/// routes unique, so the allocator's behaviour depends only on the fairness
/// logic under test and not on routing tie-breaks.
pub fn random_network(
    seed: u64,
    node_count: usize,
    session_count: usize,
    max_receivers: usize,
) -> Network {
    let node_count = node_count.max(2);
    let graph = random_tree(seed, node_count, 1.0, 10.0);
    let sessions = random_sessions(&graph, seed, session_count.max(1), max_receivers);
    Network::new(graph, sessions).expect("tree networks are always routable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReceiverId;

    #[test]
    fn star_shape_is_correct() {
        let s = star(10.0, &[1.0, 2.0, 3.0]);
        assert_eq!(s.graph.node_count(), 5); // sender + hub + 3 receivers
        assert_eq!(s.graph.link_count(), 4);
        assert_eq!(s.graph.capacity(s.shared_link), 10.0);
        assert_eq!(s.graph.capacity(s.fanout_links[2]), 3.0);
        assert_eq!(s.receivers.len(), 3);
    }

    #[test]
    fn star_network_routes_through_shared_link() {
        let net = star_network(4, 10.0, 1.0);
        assert_eq!(net.receiver_count(), 4);
        for r in net.receivers() {
            let route = net.route(r);
            assert_eq!(route.len(), 2, "shared + fanout");
            assert_eq!(route[0], LinkId(0), "shared link first");
        }
    }

    #[test]
    fn chain_shape() {
        let (g, nodes, links) = chain(&[1.0, 2.0, 3.0]);
        assert_eq!(nodes.len(), 4);
        assert_eq!(links.len(), 3);
        assert_eq!(g.capacity(links[1]), 2.0);
    }

    #[test]
    fn dumbbell_shape() {
        let d = dumbbell(2, 3, 5.0, 100.0);
        assert_eq!(d.senders.len(), 2);
        assert_eq!(d.receivers.len(), 3);
        assert_eq!(d.graph.link_count(), 1 + 2 + 3);
        assert_eq!(d.graph.capacity(d.bottleneck), 5.0);
    }

    #[test]
    fn kary_tree_shape() {
        let (g, _root, levels) = kary_tree(3, 2, |_| 1.0);
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[3].len(), 8);
        assert_eq!(g.node_count(), 1 + 2 + 4 + 8);
        assert_eq!(g.link_count(), g.node_count() - 1);
    }

    #[test]
    fn random_tree_is_a_tree_and_deterministic() {
        let g1 = random_tree(7, 20, 1.0, 5.0);
        let g2 = random_tree(7, 20, 1.0, 5.0);
        assert_eq!(g1, g2, "same seed, same graph");
        assert_eq!(g1.link_count(), 19);
        // Connected: every node reachable from node 0.
        for k in 0..20 {
            assert!(
                crate::routing::shortest_path(&g1, NodeId(0), NodeId(k)).is_some(),
                "node {k} reachable"
            );
        }
        let g3 = random_tree(8, 20, 1.0, 5.0);
        assert_ne!(g1, g3, "different seed, different graph (overwhelmingly)");
    }

    #[test]
    fn random_network_is_valid_and_deterministic() {
        let n1 = random_network(42, 15, 4, 5);
        let n2 = random_network(42, 15, 4, 5);
        assert_eq!(n1.routes(), n2.routes());
        assert_eq!(n1.session_count(), 4);
        for r in n1.receivers() {
            // Route is the unique tree path; spot-check it is consistent.
            let route = n1.route(r);
            for &l in route {
                assert!(n1.crosses(r, l));
            }
        }
    }

    #[test]
    fn random_sessions_respect_member_distinctness() {
        let g = random_tree(3, 12, 1.0, 2.0);
        for seed in 0..20 {
            let sessions = random_sessions(&g, seed, 5, 6);
            for s in &sessions {
                assert!(!s.receivers.is_empty());
                for (i, a) in s.receivers.iter().enumerate() {
                    assert_ne!(*a, s.sender);
                    for b in &s.receivers[i + 1..] {
                        assert_ne!(a, b);
                    }
                }
            }
        }
    }

    #[test]
    fn splitmix_unit_is_in_range() {
        let mut rng = SplitMix64(1);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn two_receiver_star_matches_figure7a_shape() {
        // Figure 7(a): sender, shared link, two fanout links.
        let s = star(100.0, &[50.0, 50.0]);
        let net = Network::new(
            s.graph,
            vec![Session::multi_rate(s.sender, s.receivers.clone())],
        )
        .unwrap();
        assert_eq!(net.receiver_count(), 2);
        assert!(net.crosses(ReceiverId::new(0, 0), s.shared_link));
        assert!(net.crosses(ReceiverId::new(0, 1), s.shared_link));
        assert!(!net.same_data_path(ReceiverId::new(0, 0), ReceiverId::new(0, 1)));
    }
}
