//! Topology builders for the experiment harnesses and property tests.
//!
//! The paper's quantitative experiments all run on "modified star" networks
//! (Figure 7): a sender behind one shared link feeding a hub that fans out to
//! the receivers over independent links. The theory sections use small
//! hand-built trees. Property tests and sweeps additionally need randomized
//! topologies; [`random_tree`] and the [`TopologyFamily`] generators produce
//! those deterministically from a seed (their own tiny SplitMix64 generator
//! keeps this crate dependency-free).
//!
//! Random sweeps pick a structural family via [`TopologyFamily`]:
//!
//! * [`TopologyFamily::FlatTree`] — uniform random-attachment trees (the
//!   original property-test family);
//! * [`TopologyFamily::KaryTree`] — balanced `arity`-ary trees with random
//!   per-link capacities;
//! * [`TopologyFamily::TransitStub`] — a two-level transit–stub hierarchy in
//!   the GT-ITM style: a high-capacity random core, stub domains hanging off
//!   each core node;
//! * [`TopologyFamily::Dumbbell`] — a dumbbell mesh: leaves randomly
//!   assigned to the two sides of a shared bottleneck.
//!
//! Every family generates trees, so routes stay unique and allocator
//! behaviour depends only on the fairness logic under test, never on
//! routing tie-breaks.

use crate::graph::Graph;
use crate::ids::{LinkId, NodeId};
use crate::network::Network;
use crate::session::Session;
use std::fmt;

/// Add a link whose endpoints and capacity are valid by construction.
///
/// Every builder in this module creates its own nodes, never self-loops, and
/// takes capacities already validated (or drawn from a positive range), so
/// [`Graph::add_link`] cannot fail here; a failure is a builder bug.
fn must_link(g: &mut Graph, a: NodeId, b: NodeId, capacity: f64) -> LinkId {
    g.add_link(a, b, capacity)
        // mlf-lint: allow(panic-unwrap, reason = "single funnel for the by-construction link invariant shared by every topology builder")
        .expect("topology builders only add valid links")
}

/// A star (Figure 7): `sender --shared--> hub --fanout_k--> receiver_k`.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone)]
pub struct Star {
    /// The assembled graph.
    pub graph: Graph,
    /// Node hosting the sender.
    pub sender: NodeId,
    /// The hub node behind the shared link.
    pub hub: NodeId,
    /// Receiver nodes, one per fanout link.
    pub receivers: Vec<NodeId>,
    /// The shared link abutting the sender.
    pub shared_link: LinkId,
    /// Fanout links, `fanout[k]` reaching `receivers[k]`.
    pub fanout_links: Vec<LinkId>,
}

/// Build the modified-star topology of Figure 7 with per-receiver fanout
/// capacities. The shared link abuts the sender; each receiver hangs off the
/// hub on its own link.
pub fn star(shared_capacity: f64, fanout_capacities: &[f64]) -> Star {
    let mut graph = Graph::new();
    let sender = graph.add_node();
    let hub = graph.add_node();
    let shared_link = must_link(&mut graph, sender, hub, shared_capacity);
    let mut receivers = Vec::with_capacity(fanout_capacities.len());
    let mut fanout_links = Vec::with_capacity(fanout_capacities.len());
    for &c in fanout_capacities {
        let r = graph.add_node();
        let l = must_link(&mut graph, hub, r, c);
        receivers.push(r);
        fanout_links.push(l);
    }
    Star {
        graph,
        sender,
        hub,
        receivers,
        shared_link,
        fanout_links,
    }
}

/// Build a uniform modified star (`n` receivers, all fanout links with the
/// same capacity) wrapped into a single multi-rate session network — the
/// exact substrate of the Figure 8 simulations.
pub fn star_network(n_receivers: usize, shared_capacity: f64, fanout_capacity: f64) -> Network {
    let caps = vec![fanout_capacity; n_receivers];
    let s = star(shared_capacity, &caps);
    Network::new(s.graph, vec![Session::multi_rate(s.sender, s.receivers)])
        // mlf-lint: allow(panic-unwrap, reason = "a star is a tree, so every receiver is reachable and Network::new cannot fail")
        .expect("star network is routable by construction")
}

/// A chain `n0 --l0-- n1 --l1-- ... -- n_k` with the given per-hop
/// capacities. Returns the graph, the node list, and the link list.
pub fn chain(capacities: &[f64]) -> (Graph, Vec<NodeId>, Vec<LinkId>) {
    let mut g = Graph::new();
    let nodes = g.add_nodes(capacities.len() + 1);
    let links = capacities
        .iter()
        .enumerate()
        .map(|(i, &c)| must_link(&mut g, nodes[i], nodes[i + 1], c))
        .collect();
    (g, nodes, links)
}

/// A dumbbell: `left_count` sender nodes and `right_count` receiver nodes on
/// opposite sides of a single bottleneck link.
///
/// ```text
/// s_1 --access--\                    /--access-- r_1
///  ...           hubL --bottleneck-- hubR        ...
/// s_a --access--/                    \--access-- r_b
/// ```
#[derive(Debug, Clone)]
pub struct Dumbbell {
    /// The assembled graph.
    pub graph: Graph,
    /// Sender-side leaf nodes.
    pub senders: Vec<NodeId>,
    /// Receiver-side leaf nodes.
    pub receivers: Vec<NodeId>,
    /// The central bottleneck link.
    pub bottleneck: LinkId,
    /// Access links from each sender to the left hub.
    pub sender_access: Vec<LinkId>,
    /// Access links from the right hub to each receiver.
    pub receiver_access: Vec<LinkId>,
}

/// Build a dumbbell topology.
pub fn dumbbell(
    left_count: usize,
    right_count: usize,
    bottleneck_capacity: f64,
    access_capacity: f64,
) -> Dumbbell {
    let mut g = Graph::new();
    let hub_l = g.add_node();
    let hub_r = g.add_node();
    let bottleneck = must_link(&mut g, hub_l, hub_r, bottleneck_capacity);
    let mut senders = Vec::new();
    let mut sender_access = Vec::new();
    for _ in 0..left_count {
        let n = g.add_node();
        sender_access.push(must_link(&mut g, n, hub_l, access_capacity));
        senders.push(n);
    }
    let mut receivers = Vec::new();
    let mut receiver_access = Vec::new();
    for _ in 0..right_count {
        let n = g.add_node();
        receiver_access.push(must_link(&mut g, hub_r, n, access_capacity));
        receivers.push(n);
    }
    Dumbbell {
        graph: g,
        senders,
        receivers,
        bottleneck,
        sender_access,
        receiver_access,
    }
}

/// A complete `arity`-ary tree of the given depth. Returns the graph, the
/// root, and the nodes grouped by level (`levels[0] = [root]`). Capacities
/// are assigned per level by `capacity_at(level_of_child)`.
pub fn kary_tree(
    depth: usize,
    arity: usize,
    mut capacity_at: impl FnMut(usize) -> f64,
) -> (Graph, NodeId, Vec<Vec<NodeId>>) {
    assert!(arity >= 1, "arity must be at least 1");
    let mut g = Graph::new();
    let root = g.add_node();
    let mut levels = vec![vec![root]];
    for level in 1..=depth {
        let mut this_level = Vec::new();
        let parents = levels[level - 1].clone();
        for p in parents {
            for _ in 0..arity {
                let c = g.add_node();
                must_link(&mut g, p, c, capacity_at(level));
                this_level.push(c);
            }
        }
        levels.push(this_level);
    }
    (g, root, levels)
}

/// Minimal deterministic generator (SplitMix64) used only for randomized
/// topology construction. Not a statistical-quality RNG; sufficient for
/// structural variety in property tests.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform float in `[lo, hi)`.
    pub(crate) fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.unit() * (hi - lo)
    }
}

/// A uniformly random labelled tree on `node_count` nodes (random attachment:
/// node `k` links to a uniformly chosen earlier node), with capacities drawn
/// uniformly from `[cap_lo, cap_hi)`. Deterministic in `seed`.
pub fn random_tree(seed: u64, node_count: usize, cap_lo: f64, cap_hi: f64) -> Graph {
    assert!(node_count >= 1);
    assert!(cap_lo > 0.0 && cap_hi > cap_lo);
    let mut rng = SplitMix64(seed);
    let mut g = Graph::new();
    let nodes = g.add_nodes(node_count);
    for k in 1..node_count {
        let parent = nodes[rng.below(k)];
        let cap = rng.range_f64(cap_lo, cap_hi);
        must_link(&mut g, parent, nodes[k], cap);
    }
    g
}

/// Attach `session_count` randomly-placed multicast sessions (each with
/// `1..=max_receivers` receivers on distinct nodes) to a graph. Sessions with
/// one receiver are unicast. Deterministic in `seed`. Session types are
/// multi-rate; callers flip types as needed for their experiment.
///
/// Receivers are drawn by a seeded partial Fisher–Yates shuffle over the
/// non-sender nodes, so every session gets *exactly* the drawn receiver
/// count — the earlier rejection-sampling implementation could silently
/// underfill (even down to zero receivers) on small graphs.
///
/// # Panics
///
/// Asserts `graph.node_count() >= 2` and `max_receivers >= 1` — violating
/// either is a caller bug. [`random_network_with`] validates the same
/// parameters up front and returns a [`TopologyError`] instead.
pub(crate) fn random_sessions(
    graph: &Graph,
    seed: u64,
    session_count: usize,
    max_receivers: usize,
) -> Vec<Session> {
    assert!(graph.node_count() >= 2, "need at least two nodes");
    assert!(max_receivers >= 1);
    let mut rng = SplitMix64(seed ^ 0xA5A5_A5A5_DEAD_BEEF);
    let n = graph.node_count();
    let mut sessions = Vec::with_capacity(session_count);
    let mut candidates: Vec<NodeId> = Vec::with_capacity(n - 1);
    for _ in 0..session_count {
        let sender = NodeId(rng.below(n));
        let want = 1 + rng.below(max_receivers.min(n - 1));
        sessions.push(Session::multi_rate(
            sender,
            sample_receivers(&mut rng, n, sender, want, &mut candidates),
        ));
    }
    sessions
}

/// Draw exactly `want` distinct non-sender nodes by a partial Fisher–Yates
/// shuffle of the candidate list. Requires `want <= n - 1`.
fn sample_receivers(
    rng: &mut SplitMix64,
    n: usize,
    sender: NodeId,
    want: usize,
    candidates: &mut Vec<NodeId>,
) -> Vec<NodeId> {
    debug_assert!(want < n, "cannot draw {want} receivers from {n} nodes");
    candidates.clear();
    candidates.extend((0..n).map(NodeId).filter(|&c| c != sender));
    for k in 0..want {
        let j = k + rng.below(candidates.len() - k);
        candidates.swap(k, j);
    }
    candidates[..want].to_vec()
}

/// Why a random-network request could not be honoured. Earlier versions
/// silently clamped bad parameters (`node_count.max(2)`,
/// `session_count.max(1)`), handing callers a *different experiment* than
/// they asked for; now the request is rejected instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// The family needs more nodes than were requested.
    TooFewNodes {
        /// The family that rejected the request.
        family: &'static str,
        /// Nodes requested.
        requested: usize,
        /// The family's minimum.
        minimum: usize,
    },
    /// A random network with zero sessions is not an experiment.
    NoSessions,
    /// Sessions need at least one receiver (`max_receivers >= 1`).
    NoReceivers,
    /// A k-ary tree needs `arity >= 1`.
    BadArity,
    /// A transit–stub hierarchy needs at least one transit node.
    NoTransitNodes,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::TooFewNodes {
                family,
                requested,
                minimum,
            } => write!(
                f,
                "{family} topology needs at least {minimum} nodes, got {requested}"
            ),
            TopologyError::NoSessions => write!(f, "random network needs at least one session"),
            TopologyError::NoReceivers => {
                write!(f, "random sessions need max_receivers >= 1")
            }
            TopologyError::BadArity => write!(f, "k-ary tree needs arity >= 1"),
            TopologyError::NoTransitNodes => {
                write!(f, "transit-stub hierarchy needs at least one transit node")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// Capacity multiplier for transit-core links relative to stub links: the
/// classic transit–stub assumption that backbone links are provisioned an
/// order of magnitude above access links.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub const TRANSIT_CAPACITY_SCALE: f64 = 8.0;

/// A structural family of random topologies, selectable per sweep. Every
/// family is generated deterministically from a seed and produces a tree
/// (unique routes, always connected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyFamily {
    /// Uniform random-attachment tree (node `k` links to a uniformly chosen
    /// earlier node) — the original property-test family.
    FlatTree,
    /// Balanced `arity`-ary tree filled level by level, with random
    /// per-link capacities.
    KaryTree {
        /// Children per interior node (`>= 1`).
        arity: usize,
    },
    /// Two-level transit–stub hierarchy: the first `transit` nodes form a
    /// high-capacity random core ([`TRANSIT_CAPACITY_SCALE`]× the stub
    /// capacity range); the remaining nodes are stub nodes assigned
    /// round-robin to per-core-node stub domains and attached by random
    /// attachment *within* their domain.
    TransitStub {
        /// Number of transit (core) nodes (`>= 1`).
        transit: usize,
    },
    /// Dumbbell mesh: two hubs joined by a drawn bottleneck link, every
    /// other node a leaf randomly assigned to one of the two sides (each
    /// side gets at least one leaf). Access links are drawn ×2 above the
    /// bottleneck range so the shared link tends to bind.
    Dumbbell,
}

impl TopologyFamily {
    /// A short label for reports and benches.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyFamily::FlatTree => "flat-tree",
            TopologyFamily::KaryTree { .. } => "kary-tree",
            TopologyFamily::TransitStub { .. } => "transit-stub",
            TopologyFamily::Dumbbell => "dumbbell",
        }
    }

    /// The smallest node count the family can realize.
    pub(crate) fn min_nodes(&self) -> usize {
        match self {
            TopologyFamily::FlatTree | TopologyFamily::KaryTree { .. } => 2,
            // Core, plus at least one stub node (and never below two nodes).
            TopologyFamily::TransitStub { transit } => (transit + 1).max(2),
            // Two hubs and one leaf per side.
            TopologyFamily::Dumbbell => 4,
        }
    }

    /// Validate a full random-network request — family shape, node count,
    /// session count, receiver bound. This is the single source of truth
    /// for what [`random_network_with`] accepts; front-ends (like
    /// `mlf-scenario`'s builder) call it to reject bad requests early with
    /// the same errors the generator would raise.
    pub fn validate_request(
        &self,
        node_count: usize,
        session_count: usize,
        max_receivers: usize,
    ) -> Result<(), TopologyError> {
        self.validate(node_count)?;
        if session_count == 0 {
            return Err(TopologyError::NoSessions);
        }
        if max_receivers == 0 {
            return Err(TopologyError::NoReceivers);
        }
        Ok(())
    }

    /// Check that this family can build a graph of `node_count` nodes.
    pub fn validate(&self, node_count: usize) -> Result<(), TopologyError> {
        match self {
            TopologyFamily::KaryTree { arity } if *arity == 0 => {
                return Err(TopologyError::BadArity)
            }
            TopologyFamily::TransitStub { transit } if *transit == 0 => {
                return Err(TopologyError::NoTransitNodes)
            }
            _ => {}
        }
        if node_count < self.min_nodes() {
            return Err(TopologyError::TooFewNodes {
                family: self.label(),
                requested: node_count,
                minimum: self.min_nodes(),
            });
        }
        Ok(())
    }

    /// Build a random graph of this family, deterministically in `seed`,
    /// with (stub-level) capacities drawn uniformly from `[cap_lo, cap_hi)`.
    ///
    /// # Panics
    ///
    /// Asserts `0 < cap_lo < cap_hi` (the same contract as
    /// [`random_tree`]); capacity bounds are chosen by code, not by
    /// experiment parameters, so a bad range is a caller bug rather than a
    /// rejectable request.
    pub(crate) fn build_graph(
        &self,
        seed: u64,
        node_count: usize,
        cap_lo: f64,
        cap_hi: f64,
    ) -> Result<Graph, TopologyError> {
        self.validate(node_count)?;
        assert!(cap_lo > 0.0 && cap_hi > cap_lo);
        Ok(match *self {
            TopologyFamily::FlatTree => random_tree(seed, node_count, cap_lo, cap_hi),
            TopologyFamily::KaryTree { arity } => {
                let mut rng = SplitMix64(seed);
                let mut g = Graph::new();
                let nodes = g.add_nodes(node_count);
                for k in 1..node_count {
                    let parent = nodes[(k - 1) / arity];
                    let cap = rng.range_f64(cap_lo, cap_hi);
                    must_link(&mut g, parent, nodes[k], cap);
                }
                g
            }
            TopologyFamily::TransitStub { transit } => {
                let mut rng = SplitMix64(seed);
                let mut g = Graph::new();
                let nodes = g.add_nodes(node_count);
                // High-capacity random core over the transit nodes.
                for k in 1..transit {
                    let parent = nodes[rng.below(k)];
                    let cap = TRANSIT_CAPACITY_SCALE * rng.range_f64(cap_lo, cap_hi);
                    must_link(&mut g, parent, nodes[k], cap);
                }
                // Stub domains: domain d starts at its transit node and
                // grows by random attachment within itself.
                let mut domains: Vec<Vec<NodeId>> = (0..transit).map(|d| vec![nodes[d]]).collect();
                for (i, &stub) in nodes.iter().enumerate().skip(transit) {
                    let domain = &mut domains[(i - transit) % transit];
                    let parent = domain[rng.below(domain.len())];
                    let cap = rng.range_f64(cap_lo, cap_hi);
                    must_link(&mut g, parent, stub, cap);
                    domain.push(stub);
                }
                g
            }
            TopologyFamily::Dumbbell => {
                let mut rng = SplitMix64(seed);
                let mut g = Graph::new();
                let hub_l = g.add_node();
                let hub_r = g.add_node();
                let cap = rng.range_f64(cap_lo, cap_hi);
                must_link(&mut g, hub_l, hub_r, cap);
                for leaf in 2..node_count {
                    // First two leaves pin one per side; the rest coin-flip.
                    let left = match leaf {
                        2 => true,
                        3 => false,
                        _ => rng.below(2) == 0,
                    };
                    let hub = if left { hub_l } else { hub_r };
                    let n = g.add_node();
                    let cap = 2.0 * rng.range_f64(cap_lo, cap_hi);
                    must_link(&mut g, hub, n, cap);
                }
                g
            }
        })
    }
}

/// A fully-assembled random multicast network drawn from a
/// [`TopologyFamily`]. Deterministic in `seed`; capacities come from the
/// canonical `[1, 10)` stub range. Rejects degenerate requests instead of
/// silently adjusting them.
pub fn random_network_with(
    family: TopologyFamily,
    seed: u64,
    node_count: usize,
    session_count: usize,
    max_receivers: usize,
) -> Result<Network, TopologyError> {
    family.validate_request(node_count, session_count, max_receivers)?;
    let graph = family.build_graph(seed, node_count, 1.0, 10.0)?;
    let sessions = random_sessions(&graph, seed, session_count, max_receivers);
    // mlf-lint: allow(panic-unwrap, reason = "every TopologyFamily generator emits a connected tree, so routing always succeeds")
    Ok(Network::new(graph, sessions).expect("family graphs are trees, hence routable"))
}

/// A fully-assembled random multicast network on a flat random tree. This is
/// the canonical generator used by the cross-crate property tests: trees make
/// routes unique, so the allocator's behaviour depends only on the fairness
/// logic under test and not on routing tie-breaks.
///
/// # Errors
///
/// [`TopologyError`] on degenerate requests (fewer than two nodes, zero
/// sessions, zero receivers) — earlier versions silently clamped these,
/// running a different experiment than the caller asked for.
pub fn random_network(
    seed: u64,
    node_count: usize,
    session_count: usize,
    max_receivers: usize,
) -> Result<Network, TopologyError> {
    random_network_with(
        TopologyFamily::FlatTree,
        seed,
        node_count,
        session_count,
        max_receivers,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ReceiverId;

    #[test]
    fn star_shape_is_correct() {
        let s = star(10.0, &[1.0, 2.0, 3.0]);
        assert_eq!(s.graph.node_count(), 5); // sender + hub + 3 receivers
        assert_eq!(s.graph.link_count(), 4);
        assert_eq!(s.graph.capacity(s.shared_link), 10.0);
        assert_eq!(s.graph.capacity(s.fanout_links[2]), 3.0);
        assert_eq!(s.receivers.len(), 3);
    }

    #[test]
    fn star_network_routes_through_shared_link() {
        let net = star_network(4, 10.0, 1.0);
        assert_eq!(net.receiver_count(), 4);
        for r in net.receivers() {
            let route = net.route(r);
            assert_eq!(route.len(), 2, "shared + fanout");
            assert_eq!(route[0], LinkId(0), "shared link first");
        }
    }

    #[test]
    fn chain_shape() {
        let (g, nodes, links) = chain(&[1.0, 2.0, 3.0]);
        assert_eq!(nodes.len(), 4);
        assert_eq!(links.len(), 3);
        assert_eq!(g.capacity(links[1]), 2.0);
    }

    #[test]
    fn dumbbell_shape() {
        let d = dumbbell(2, 3, 5.0, 100.0);
        assert_eq!(d.senders.len(), 2);
        assert_eq!(d.receivers.len(), 3);
        assert_eq!(d.graph.link_count(), 1 + 2 + 3);
        assert_eq!(d.graph.capacity(d.bottleneck), 5.0);
    }

    #[test]
    fn kary_tree_shape() {
        let (g, _root, levels) = kary_tree(3, 2, |_| 1.0);
        assert_eq!(levels.len(), 4);
        assert_eq!(levels[3].len(), 8);
        assert_eq!(g.node_count(), 1 + 2 + 4 + 8);
        assert_eq!(g.link_count(), g.node_count() - 1);
    }

    #[test]
    fn random_tree_is_a_tree_and_deterministic() {
        let g1 = random_tree(7, 20, 1.0, 5.0);
        let g2 = random_tree(7, 20, 1.0, 5.0);
        assert_eq!(g1, g2, "same seed, same graph");
        assert_eq!(g1.link_count(), 19);
        // Connected: every node reachable from node 0.
        for k in 0..20 {
            assert!(
                crate::routing::shortest_path(&g1, NodeId(0), NodeId(k)).is_some(),
                "node {k} reachable"
            );
        }
        let g3 = random_tree(8, 20, 1.0, 5.0);
        assert_ne!(g1, g3, "different seed, different graph (overwhelmingly)");
    }

    #[test]
    fn random_network_is_valid_and_deterministic() {
        let n1 = random_network(42, 15, 4, 5).unwrap();
        let n2 = random_network(42, 15, 4, 5).unwrap();
        assert_eq!(n1.routes(), n2.routes());
        assert_eq!(n1.session_count(), 4);
        for r in n1.receivers() {
            // Route is the unique tree path; spot-check it is consistent.
            let route = n1.route(r);
            for &l in route {
                assert!(n1.crosses(r, l));
            }
        }
    }

    #[test]
    fn random_sessions_respect_member_distinctness() {
        let g = random_tree(3, 12, 1.0, 2.0);
        for seed in 0..20 {
            let sessions = random_sessions(&g, seed, 5, 6);
            for s in &sessions {
                assert!(!s.receivers.is_empty());
                for (i, a) in s.receivers.iter().enumerate() {
                    assert_ne!(*a, s.sender);
                    for b in &s.receivers[i + 1..] {
                        assert_ne!(a, b);
                    }
                }
            }
        }
    }

    /// Regression for the rejection-sampling shortfall: on tiny graphs with
    /// large `max_receivers`, every session must still hold exactly the
    /// drawn receiver count — in particular, sampling can fill the whole
    /// non-sender node set, which the old `guard < 16 * n` bailout could
    /// silently fail to do.
    #[test]
    fn sample_receivers_always_fills_the_exact_draw() {
        let mut rng = SplitMix64(99);
        let mut scratch = Vec::new();
        for n in 2..=8usize {
            for want in 1..n {
                for sender in 0..n {
                    let got = sample_receivers(&mut rng, n, NodeId(sender), want, &mut scratch);
                    assert_eq!(got.len(), want, "n={n} want={want} sender={sender}");
                    for (i, a) in got.iter().enumerate() {
                        assert_ne!(*a, NodeId(sender));
                        assert!(a.0 < n);
                        assert!(!got[i + 1..].contains(a), "duplicate receiver");
                    }
                }
            }
        }
    }

    #[test]
    fn random_sessions_on_tiny_graphs_cover_every_receiver_count() {
        // n = 3: receiver counts can only be 1 or 2; with a huge
        // max_receivers both must actually occur, and 2-receiver sessions
        // must span the full non-sender set (the old code could underfill).
        let g = random_tree(5, 3, 1.0, 2.0);
        let mut seen = [false; 3];
        for seed in 0..40 {
            for s in random_sessions(&g, seed, 4, 64) {
                seen[s.receivers.len()] = true;
                if s.receivers.len() == 2 {
                    let mut nodes: Vec<usize> = s.receivers.iter().map(|r| r.0).collect();
                    nodes.push(s.sender.0);
                    nodes.sort_unstable();
                    assert_eq!(nodes, vec![0, 1, 2]);
                }
            }
        }
        assert!(seen[1] && seen[2], "both draw sizes occur: {seen:?}");
    }

    /// Regression for the silent clamping: degenerate requests are rejected,
    /// not quietly rewritten into a different experiment.
    #[test]
    fn degenerate_random_network_requests_are_rejected() {
        assert_eq!(
            random_network(1, 1, 3, 3).unwrap_err(),
            TopologyError::TooFewNodes {
                family: "flat-tree",
                requested: 1,
                minimum: 2,
            }
        );
        assert_eq!(
            random_network(1, 10, 0, 3).unwrap_err(),
            TopologyError::NoSessions
        );
        assert_eq!(
            random_network(1, 10, 3, 0).unwrap_err(),
            TopologyError::NoReceivers
        );
        assert_eq!(
            random_network_with(TopologyFamily::KaryTree { arity: 0 }, 1, 10, 3, 3).unwrap_err(),
            TopologyError::BadArity
        );
        assert_eq!(
            random_network_with(TopologyFamily::TransitStub { transit: 0 }, 1, 10, 3, 3)
                .unwrap_err(),
            TopologyError::NoTransitNodes
        );
        assert_eq!(
            random_network_with(TopologyFamily::Dumbbell, 1, 3, 2, 2).unwrap_err(),
            TopologyError::TooFewNodes {
                family: "dumbbell",
                requested: 3,
                minimum: 4,
            }
        );
        let msg = random_network(1, 1, 3, 3).unwrap_err().to_string();
        assert!(msg.contains("at least 2 nodes"), "{msg}");
    }

    #[test]
    fn every_family_builds_connected_trees_deterministically() {
        let families = [
            TopologyFamily::FlatTree,
            TopologyFamily::KaryTree { arity: 3 },
            TopologyFamily::TransitStub { transit: 4 },
            TopologyFamily::Dumbbell,
        ];
        for family in families {
            for seed in 0..6u64 {
                let g1 = family.build_graph(seed, 17, 1.0, 10.0).unwrap();
                let g2 = family.build_graph(seed, 17, 1.0, 10.0).unwrap();
                assert_eq!(g1, g2, "{} seed {seed} deterministic", family.label());
                assert_eq!(g1.node_count(), 17);
                assert_eq!(g1.link_count(), 16, "{} is a tree", family.label());
                for k in 0..17 {
                    assert!(
                        crate::routing::shortest_path(&g1, NodeId(0), NodeId(k)).is_some(),
                        "{} node {k} reachable",
                        family.label()
                    );
                }
            }
        }
    }

    #[test]
    fn transit_stub_core_outcapacitates_stub_links() {
        let family = TopologyFamily::TransitStub { transit: 5 };
        let g = family.build_graph(11, 30, 1.0, 10.0).unwrap();
        // Core links connect transit nodes (ids < 5) to each other.
        let (mut core_min, mut stub_max) = (f64::INFINITY, 0.0_f64);
        for (_, l) in g.links() {
            if l.a.0 < 5 && l.b.0 < 5 {
                core_min = core_min.min(l.capacity);
            } else {
                stub_max = stub_max.max(l.capacity);
            }
        }
        assert!(
            core_min >= stub_max / 2.0,
            "core links ({core_min}) are provisioned above typical stub links ({stub_max})"
        );
    }

    #[test]
    fn dumbbell_family_splits_leaves_across_the_bottleneck() {
        let g = TopologyFamily::Dumbbell
            .build_graph(3, 12, 1.0, 10.0)
            .unwrap();
        // Hubs are nodes 0 and 1; every leaf hangs off exactly one hub.
        let mut left = 0usize;
        let mut right = 0usize;
        for (_, l) in g.links() {
            match (l.a.0, l.b.0) {
                (0, 1) | (1, 0) => {}
                (0, _) | (_, 0) => left += 1,
                (1, _) | (_, 1) => right += 1,
                other => panic!("leaf-to-leaf link {other:?}"),
            }
        }
        assert_eq!(left + right, 10);
        assert!(left >= 1 && right >= 1, "both sides populated");
    }

    #[test]
    fn random_network_with_families_yields_routable_sessions() {
        for family in [
            TopologyFamily::FlatTree,
            TopologyFamily::KaryTree { arity: 2 },
            TopologyFamily::TransitStub { transit: 3 },
            TopologyFamily::Dumbbell,
        ] {
            let net = random_network_with(family, 21, 16, 5, 4).unwrap();
            assert_eq!(net.session_count(), 5);
            // Receivers never share the sender's node, so tree routes are
            // always non-empty.
            for r in net.receivers() {
                assert!(!net.route(r).is_empty());
            }
        }
    }

    #[test]
    fn splitmix_unit_is_in_range() {
        let mut rng = SplitMix64(1);
        for _ in 0..1000 {
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn two_receiver_star_matches_figure7a_shape() {
        // Figure 7(a): sender, shared link, two fanout links.
        let s = star(100.0, &[50.0, 50.0]);
        let net = Network::new(
            s.graph,
            vec![Session::multi_rate(s.sender, s.receivers.clone())],
        )
        .unwrap();
        assert_eq!(net.receiver_count(), 2);
        assert!(net.crosses(ReceiverId::new(0, 0), s.shared_link));
        assert!(net.crosses(ReceiverId::new(0, 1), s.shared_link));
        assert!(!net.same_data_path(ReceiverId::new(0, 0), ReceiverId::new(0, 1)));
    }
}
