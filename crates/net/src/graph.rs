//! The network graph `G`: nodes connected by capacitated links.
//!
//! Following the paper's model (Section 2), a link `l_j` has a capacity `c_j`
//! that "limits the aggregate rate of flow it can transmit in either
//! direction between the two nodes it connects" — links are undirected and
//! the capacity is shared by both directions. (The paper notes that
//! per-direction capacities are a trivial extension obtained by splitting a
//! link in two; [`Graph::add_link`] can simply be called twice for that.)

use crate::error::{NetError, NetResult};
use crate::ids::{LinkId, NodeId};

/// An undirected, capacitated link `l_j` between two nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Link {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// The capacity `c_j > 0` shared by both directions.
    pub capacity: f64,
}

impl Link {
    /// Given one endpoint of the link, return the opposite endpoint, or
    /// `None` if `node` is not an endpoint.
    pub fn opposite(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether `node` is one of the link's endpoints.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn touches(&self, node: NodeId) -> bool {
        node == self.a || node == self.b
    }
}

/// The network graph `G`: a set of nodes connected by `n` links.
///
/// Nodes carry no attributes in the model; they exist only as attachment
/// points for session members and link endpoints. The graph maintains an
/// adjacency index for efficient routing.
///
/// # Examples
///
/// ```
/// use mlf_net::{Graph, NodeId};
///
/// let mut g = Graph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let l = g.add_link(a, b, 5.0).unwrap();
/// assert_eq!(g.capacity(l), 5.0);
/// assert_eq!(g.neighbors(a).count(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Graph {
    node_count: usize,
    links: Vec<Link>,
    /// `adj[node] = [(neighbor, link), ...]`
    adj: Vec<Vec<(NodeId, LinkId)>>,
}

impl Graph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Create a graph with `n` isolated nodes.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn with_nodes(n: usize) -> Self {
        Graph {
            node_count: n,
            links: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Add a node and return its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_count);
        self.node_count += 1;
        self.adj.push(Vec::new());
        id
    }

    /// Add `k` nodes and return their ids in order.
    pub fn add_nodes(&mut self, k: usize) -> Vec<NodeId> {
        (0..k).map(|_| self.add_node()).collect()
    }

    /// Add an undirected link of the given capacity between `a` and `b`.
    ///
    /// # Errors
    ///
    /// * [`NetError::UnknownNode`] if either endpoint does not exist.
    /// * [`NetError::SelfLoop`] if `a == b`.
    /// * [`NetError::BadCapacity`] if the capacity is not a positive, finite
    ///   number. (Infinite-capacity links are modelled by a large finite
    ///   number; keeping capacities finite keeps the allocator's arithmetic
    ///   well-defined.)
    pub fn add_link(&mut self, a: NodeId, b: NodeId, capacity: f64) -> NetResult<LinkId> {
        if a.0 >= self.node_count {
            return Err(NetError::UnknownNode(a));
        }
        if b.0 >= self.node_count {
            return Err(NetError::UnknownNode(b));
        }
        let id = LinkId(self.links.len());
        if a == b {
            return Err(NetError::SelfLoop { link: id, node: a });
        }
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(NetError::BadCapacity { link: id, capacity });
        }
        self.links.push(Link { a, b, capacity });
        self.adj[a.0].push((b, id));
        self.adj[b.0].push((a, id));
        Ok(id)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of links `n`.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Iterate over node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).map(NodeId)
    }

    /// Iterate over `(LinkId, &Link)` pairs.
    pub fn links(&self) -> impl Iterator<Item = (LinkId, &Link)> + '_ {
        self.links.iter().enumerate().map(|(i, l)| (LinkId(i), l))
    }

    /// Access a link by id. Panics if out of range (ids are only minted by
    /// this graph, so an out-of-range id is a logic error).
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    /// Capacity `c_j` of a link.
    pub fn capacity(&self, id: LinkId) -> f64 {
        self.links[id.0].capacity
    }

    /// The capacities of all links, indexed by link id.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn capacities(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.capacity).collect()
    }

    /// Whether a node id is valid for this graph.
    pub(crate) fn contains_node(&self, node: NodeId) -> bool {
        node.0 < self.node_count
    }

    /// Whether a link id is valid for this graph.
    pub(crate) fn contains_link(&self, link: LinkId) -> bool {
        link.0 < self.links.len()
    }

    /// Iterate over `(neighbor, link)` pairs adjacent to `node`.
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, LinkId)> + '_ {
        self.adj[node.0].iter().copied()
    }

    /// Node degree (number of incident links).
    // mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
    pub fn degree(&self, node: NodeId) -> usize {
        self.adj[node.0].len()
    }

    /// Replace the capacity of an existing link.
    ///
    /// Useful in experiments that sweep a bottleneck capacity.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn set_capacity(&mut self, id: LinkId, capacity: f64) -> NetResult<()> {
        if !self.contains_link(id) {
            return Err(NetError::UnknownLink(id));
        }
        if !(capacity.is_finite() && capacity > 0.0) {
            return Err(NetError::BadCapacity { link: id, capacity });
        }
        self.links[id.0].capacity = capacity;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line3() -> (Graph, Vec<NodeId>, Vec<LinkId>) {
        let mut g = Graph::new();
        let nodes = g.add_nodes(3);
        let l0 = g.add_link(nodes[0], nodes[1], 1.0).unwrap();
        let l1 = g.add_link(nodes[1], nodes[2], 2.0).unwrap();
        (g, nodes, vec![l0, l1])
    }

    #[test]
    fn builds_a_simple_line() {
        let (g, nodes, links) = line3();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.link_count(), 2);
        assert_eq!(g.capacity(links[0]), 1.0);
        assert_eq!(g.degree(nodes[1]), 2);
        assert_eq!(g.degree(nodes[0]), 1);
    }

    #[test]
    fn rejects_bad_links() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert!(matches!(
            g.add_link(a, a, 1.0),
            Err(NetError::SelfLoop { .. })
        ));
        assert!(matches!(
            g.add_link(a, b, 0.0),
            Err(NetError::BadCapacity { .. })
        ));
        assert!(matches!(
            g.add_link(a, b, f64::INFINITY),
            Err(NetError::BadCapacity { .. })
        ));
        assert!(matches!(
            g.add_link(a, b, f64::NAN),
            Err(NetError::BadCapacity { .. })
        ));
        assert!(matches!(
            g.add_link(a, NodeId(99), 1.0),
            Err(NetError::UnknownNode(_))
        ));
    }

    #[test]
    fn opposite_endpoint() {
        let (g, nodes, links) = line3();
        let l = g.link(links[0]);
        assert_eq!(l.opposite(nodes[0]), Some(nodes[1]));
        assert_eq!(l.opposite(nodes[1]), Some(nodes[0]));
        assert_eq!(l.opposite(nodes[2]), None);
        assert!(l.touches(nodes[0]));
        assert!(!l.touches(nodes[2]));
    }

    #[test]
    fn neighbors_reflect_links() {
        let (g, nodes, links) = line3();
        let n: Vec<_> = g.neighbors(nodes[1]).collect();
        assert!(n.contains(&(nodes[0], links[0])));
        assert!(n.contains(&(nodes[2], links[1])));
    }

    #[test]
    fn set_capacity_updates_and_validates() {
        let (mut g, _, links) = line3();
        g.set_capacity(links[0], 7.5).unwrap();
        assert_eq!(g.capacity(links[0]), 7.5);
        assert!(g.set_capacity(links[0], -1.0).is_err());
        assert!(g.set_capacity(LinkId(42), 1.0).is_err());
    }

    #[test]
    fn parallel_links_are_allowed() {
        // Two unidirectional halves of a full-duplex link are modelled as
        // two parallel links, which the graph must therefore permit.
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        let l0 = g.add_link(a, b, 1.0).unwrap();
        let l1 = g.add_link(a, b, 1.0).unwrap();
        assert_ne!(l0, l1);
        assert_eq!(g.neighbors(a).count(), 2);
    }
}
