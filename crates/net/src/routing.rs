//! Routing: computing each receiver's data-path from its session sender.
//!
//! The paper assumes "the network employs a routing algorithm, such that for
//! each receiver `r_{i,k} ∈ S_i`, there is a sequence of links
//! `(l_{j1}, ..., l_{js})` that carries data from `X_i` to `r_{i,k}`"
//! (Section 2). The concrete algorithm is immaterial to the theory; what
//! matters is the *set* of links on each receiver's data-path. We provide:
//!
//! * hop-count shortest-path routing ([`shortest_path`]) with deterministic
//!   tie-breaking (lowest link id wins), which on the paper's tree-shaped
//!   example topologies recovers the unique route; and
//! * validation of explicitly supplied routes ([`validate_route`]) for
//!   networks where a non-shortest route is wanted.

use crate::error::{NetError, NetResult, RouteDefect};
use crate::graph::Graph;
use crate::ids::{LinkId, NodeId, ReceiverId};
use std::collections::VecDeque;

/// A receiver's data-path: the ordered sequence of links from the session
/// sender to the receiver. The *set* of these links is what the fairness
/// definitions consume (`R_{i,j}` membership); order matters only for
/// packet-level simulation.
pub type Route = Vec<LinkId>;

/// Compute the hop-count shortest path between two nodes as a sequence of
/// links, or `None` if the nodes are disconnected.
///
/// Ties are broken deterministically: BFS explores neighbors in adjacency
/// (insertion) order, so among equal-hop routes the one using
/// earliest-inserted links is returned. Determinism matters because the whole
/// reproduction pipeline (allocator, simulator, benches) must be re-runnable
/// bit-for-bit.
///
/// If `from == to`, the empty route is returned.
pub fn shortest_path(graph: &Graph, from: NodeId, to: NodeId) -> Option<Route> {
    if from == to {
        return Some(Vec::new());
    }
    if !graph.contains_node(from) || !graph.contains_node(to) {
        return None;
    }
    // parent[v] = (previous node, link used to reach v)
    let mut parent: Vec<Option<(NodeId, LinkId)>> = vec![None; graph.node_count()];
    let mut seen = vec![false; graph.node_count()];
    let mut queue = VecDeque::new();
    seen[from.0] = true;
    queue.push_back(from);
    while let Some(u) = queue.pop_front() {
        for (v, l) in graph.neighbors(u) {
            if !seen[v.0] {
                seen[v.0] = true;
                parent[v.0] = Some((u, l));
                if v == to {
                    queue.clear();
                    break;
                }
                queue.push_back(v);
            }
        }
    }
    if !seen[to.0] {
        return None;
    }
    let mut route = Vec::new();
    let mut cur = to;
    while cur != from {
        let (prev, link) = parent[cur.0].expect("parent chain is complete");
        route.push(link);
        cur = prev;
    }
    route.reverse();
    Some(route)
}

/// Validate that `route` is a simple path from `from` to `to` in `graph`.
///
/// A valid route:
/// * starts at `from` and ends at `to`,
/// * uses consecutive links that share endpoints,
/// * never repeats a link (the model's data-paths are link *sets*).
///
/// The empty route is valid exactly when `from == to` (a receiver co-located
/// with its sender — allowed for members of *different* sessions sharing a
/// node, and degenerate-but-harmless otherwise).
pub fn validate_route(
    graph: &Graph,
    from: NodeId,
    to: NodeId,
    route: &[LinkId],
    receiver: ReceiverId,
) -> NetResult<()> {
    let defect = |reason| NetError::InvalidRoute { receiver, reason };
    if route.is_empty() {
        return if from == to {
            Ok(())
        } else {
            Err(defect(RouteDefect::Empty))
        };
    }
    let mut used = vec![false; graph.link_count()];
    let mut cur = from;
    for (i, &lid) in route.iter().enumerate() {
        if !graph.contains_link(lid) {
            return Err(NetError::UnknownLink(lid));
        }
        if used[lid.0] {
            return Err(defect(RouteDefect::RepeatedLink));
        }
        used[lid.0] = true;
        let link = graph.link(lid);
        match link.opposite(cur) {
            Some(next) => cur = next,
            None => {
                return Err(defect(if i == 0 {
                    RouteDefect::WrongStart
                } else {
                    RouteDefect::Disconnected
                }));
            }
        }
    }
    if cur != to {
        return Err(defect(RouteDefect::WrongEnd));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -l0- 1 -l1- 2
    ///  \------l2----/   (direct shortcut)
    fn triangle() -> (Graph, Vec<NodeId>, Vec<LinkId>) {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        let l0 = g.add_link(n[0], n[1], 1.0).unwrap();
        let l1 = g.add_link(n[1], n[2], 1.0).unwrap();
        let l2 = g.add_link(n[0], n[2], 1.0).unwrap();
        (g, n, vec![l0, l1, l2])
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        let (g, n, l) = triangle();
        assert_eq!(shortest_path(&g, n[0], n[2]), Some(vec![l[2]]));
        assert_eq!(shortest_path(&g, n[0], n[1]), Some(vec![l[0]]));
    }

    #[test]
    fn shortest_path_self_is_empty() {
        let (g, n, _) = triangle();
        assert_eq!(shortest_path(&g, n[1], n[1]), Some(vec![]));
    }

    #[test]
    fn shortest_path_disconnected_is_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(shortest_path(&g, a, b), None);
    }

    #[test]
    fn shortest_path_is_deterministic_on_ties() {
        // Two parallel 2-hop routes; BFS must pick the one through the
        // earlier-inserted middle node every time.
        let mut g = Graph::new();
        let n = g.add_nodes(4); // 0 -> {1,2} -> 3
        let l01 = g.add_link(n[0], n[1], 1.0).unwrap();
        let _l02 = g.add_link(n[0], n[2], 1.0).unwrap();
        let l13 = g.add_link(n[1], n[3], 1.0).unwrap();
        let _l23 = g.add_link(n[2], n[3], 1.0).unwrap();
        for _ in 0..10 {
            assert_eq!(shortest_path(&g, n[0], n[3]), Some(vec![l01, l13]));
        }
    }

    #[test]
    fn validate_route_accepts_good_routes() {
        let (g, n, l) = triangle();
        let r = ReceiverId::new(0, 0);
        validate_route(&g, n[0], n[2], &[l[0], l[1]], r).unwrap();
        validate_route(&g, n[0], n[2], &[l[2]], r).unwrap();
        validate_route(&g, n[0], n[0], &[], r).unwrap();
    }

    #[test]
    fn validate_route_rejects_each_defect() {
        let (g, n, l) = triangle();
        let r = ReceiverId::new(0, 0);
        // Empty but endpoints differ.
        assert!(matches!(
            validate_route(&g, n[0], n[2], &[], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::Empty,
                ..
            })
        ));
        // Starts at the wrong node.
        assert!(matches!(
            validate_route(&g, n[0], n[2], &[l[1]], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::WrongStart,
                ..
            })
        ));
        // Ends at the wrong node.
        assert!(matches!(
            validate_route(&g, n[0], n[1], &[l[0], l[1]], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::WrongEnd,
                ..
            })
        ));
        // Disconnected middle.
        let mut g2 = Graph::new();
        let m = g2.add_nodes(4);
        let a = g2.add_link(m[0], m[1], 1.0).unwrap();
        let b = g2.add_link(m[2], m[3], 1.0).unwrap();
        assert!(matches!(
            validate_route(&g2, m[0], m[3], &[a, b], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::Disconnected,
                ..
            })
        ));
        // Repeated link (0 -> 1 -> 0 is a repeat, not a walk we allow).
        assert!(matches!(
            validate_route(&g, n[0], n[0], &[l[0], l[0]], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::RepeatedLink,
                ..
            })
        ));
        // Unknown link id.
        assert!(matches!(
            validate_route(&g, n[0], n[2], &[LinkId(99)], r),
            Err(NetError::UnknownLink(_))
        ));
    }
}
