//! Routing: computing each receiver's data-path from its session sender.
//!
//! The paper assumes "the network employs a routing algorithm, such that for
//! each receiver `r_{i,k} ∈ S_i`, there is a sequence of links
//! `(l_{j1}, ..., l_{js})` that carries data from `X_i` to `r_{i,k}`"
//! (Section 2). The concrete algorithm is immaterial to the theory; what
//! matters is the *set* of links on each receiver's data-path. We provide:
//!
//! * hop-count shortest-path routing ([`shortest_path`]) with deterministic
//!   tie-breaking (lowest link id wins), which on the paper's tree-shaped
//!   example topologies recovers the unique route; and
//! * validation of explicitly supplied routes ([`validate_route`]) for
//!   networks where a non-shortest route is wanted.

use crate::error::{NetError, NetResult, RouteDefect};
use crate::graph::Graph;
use crate::ids::{LinkId, NodeId, ReceiverId};
use std::collections::VecDeque;

/// A receiver's data-path: the ordered sequence of links from the session
/// sender to the receiver. The *set* of these links is what the fairness
/// definitions consume (`R_{i,j}` membership); order matters only for
/// packet-level simulation.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub type Route = Vec<LinkId>;

/// Compute the hop-count shortest path between two nodes as a sequence of
/// links, or `None` if the nodes are disconnected.
///
/// Ties are broken deterministically: BFS explores neighbors in adjacency
/// (insertion) order, so among equal-hop routes the one using
/// earliest-inserted links is returned. Determinism matters because the whole
/// reproduction pipeline (allocator, simulator, benches) must be re-runnable
/// bit-for-bit.
///
/// If `from == to`, the empty route is returned.
///
/// This convenience wrapper allocates fresh BFS buffers per call; when
/// routing many receivers over one graph (network construction, topology
/// sweeps), use a [`PathFinder`] to reuse them.
pub fn shortest_path(graph: &Graph, from: NodeId, to: NodeId) -> Option<Route> {
    PathFinder::new().shortest_path(graph, from, to)
}

/// Reusable BFS scratch for [`shortest_path`]-style queries.
///
/// A `PathFinder` owns the `parent`/`seen`/queue buffers one BFS needs, so
/// routing every receiver of a topology (or a whole sweep of topologies)
/// performs no per-query allocation beyond the returned [`Route`] itself —
/// visible at sweep scale on transit–stub builds, where `Network`
/// construction routes hundreds of receivers back to back.
///
/// Results are identical to the free [`shortest_path`] function: the
/// buffers are scratch, not state (`seen` gates every `parent` read, so
/// stale entries from earlier queries are never observed).
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
#[derive(Debug, Default, Clone)]
pub struct PathFinder {
    /// parent[v] = (previous node, link used to reach v)
    parent: Vec<Option<(NodeId, LinkId)>>,
    seen: Vec<bool>,
    queue: VecDeque<NodeId>,
}

impl PathFinder {
    /// A finder with empty scratch (grown on first use).
    pub fn new() -> Self {
        PathFinder::default()
    }

    /// [`shortest_path`] against this finder's reusable scratch.
    pub fn shortest_path(&mut self, graph: &Graph, from: NodeId, to: NodeId) -> Option<Route> {
        if from == to {
            return Some(Vec::new());
        }
        if !graph.contains_node(from) || !graph.contains_node(to) {
            return None;
        }
        let n = graph.node_count();
        self.parent.clear();
        self.parent.resize(n, None);
        self.seen.clear();
        self.seen.resize(n, false);
        self.queue.clear();
        self.seen[from.0] = true;
        self.queue.push_back(from);
        while let Some(u) = self.queue.pop_front() {
            for (v, l) in graph.neighbors(u) {
                if !self.seen[v.0] {
                    self.seen[v.0] = true;
                    self.parent[v.0] = Some((u, l));
                    if v == to {
                        self.queue.clear();
                        break;
                    }
                    self.queue.push_back(v);
                }
            }
        }
        if !self.seen[to.0] {
            return None;
        }
        let mut route = Vec::new();
        let mut cur = to;
        while cur != from {
            // `seen[to]` implies a complete parent chain back to `from`; a
            // broken chain degrades to "no route" rather than panicking.
            let (prev, link) = self.parent[cur.0]?;
            route.push(link);
            cur = prev;
        }
        route.reverse();
        Some(route)
    }
}

/// Validate that `route` is a simple path from `from` to `to` in `graph`.
///
/// A valid route:
/// * starts at `from` and ends at `to`,
/// * uses consecutive links that share endpoints,
/// * never repeats a link (the model's data-paths are link *sets*).
///
/// The empty route is valid exactly when `from == to` (a receiver co-located
/// with its sender — allowed for members of *different* sessions sharing a
/// node, and degenerate-but-harmless otherwise).
pub fn validate_route(
    graph: &Graph,
    from: NodeId,
    to: NodeId,
    route: &[LinkId],
    receiver: ReceiverId,
) -> NetResult<()> {
    let defect = |reason| NetError::InvalidRoute { receiver, reason };
    if route.is_empty() {
        return if from == to {
            Ok(())
        } else {
            Err(defect(RouteDefect::Empty))
        };
    }
    // Repeat detection: routes are almost always a handful of links, so a
    // backward scan beats allocating a links-wide bitvec per call — at
    // bench scale (10⁵ receivers × 10⁵ links) the bitvec zeroing alone
    // cost seconds of network construction. Long routes fall back to it.
    let mut used = if route.len() > 64 {
        vec![false; graph.link_count()]
    } else {
        Vec::new()
    };
    let mut cur = from;
    for (i, &lid) in route.iter().enumerate() {
        if !graph.contains_link(lid) {
            return Err(NetError::UnknownLink(lid));
        }
        let repeated = if used.is_empty() {
            route[..i].contains(&lid)
        } else {
            std::mem::replace(&mut used[lid.0], true)
        };
        if repeated {
            return Err(defect(RouteDefect::RepeatedLink));
        }
        let link = graph.link(lid);
        match link.opposite(cur) {
            Some(next) => cur = next,
            None => {
                return Err(defect(if i == 0 {
                    RouteDefect::WrongStart
                } else {
                    RouteDefect::Disconnected
                }));
            }
        }
    }
    if cur != to {
        return Err(defect(RouteDefect::WrongEnd));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0 -l0- 1 -l1- 2
    ///  \------l2----/   (direct shortcut)
    fn triangle() -> (Graph, Vec<NodeId>, Vec<LinkId>) {
        let mut g = Graph::new();
        let n = g.add_nodes(3);
        let l0 = g.add_link(n[0], n[1], 1.0).unwrap();
        let l1 = g.add_link(n[1], n[2], 1.0).unwrap();
        let l2 = g.add_link(n[0], n[2], 1.0).unwrap();
        (g, n, vec![l0, l1, l2])
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        let (g, n, l) = triangle();
        assert_eq!(shortest_path(&g, n[0], n[2]), Some(vec![l[2]]));
        assert_eq!(shortest_path(&g, n[0], n[1]), Some(vec![l[0]]));
    }

    #[test]
    fn shortest_path_self_is_empty() {
        let (g, n, _) = triangle();
        assert_eq!(shortest_path(&g, n[1], n[1]), Some(vec![]));
    }

    #[test]
    fn shortest_path_disconnected_is_none() {
        let mut g = Graph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert_eq!(shortest_path(&g, a, b), None);
    }

    #[test]
    fn shortest_path_is_deterministic_on_ties() {
        // Two parallel 2-hop routes; BFS must pick the one through the
        // earlier-inserted middle node every time.
        let mut g = Graph::new();
        let n = g.add_nodes(4); // 0 -> {1,2} -> 3
        let l01 = g.add_link(n[0], n[1], 1.0).unwrap();
        let _l02 = g.add_link(n[0], n[2], 1.0).unwrap();
        let l13 = g.add_link(n[1], n[3], 1.0).unwrap();
        let _l23 = g.add_link(n[2], n[3], 1.0).unwrap();
        for _ in 0..10 {
            assert_eq!(shortest_path(&g, n[0], n[3]), Some(vec![l01, l13]));
        }
    }

    #[test]
    fn pathfinder_reuse_matches_fresh_queries() {
        // A reused finder must answer exactly like per-call allocation —
        // including queries that leave stale parent entries behind.
        let (g, n, _) = triangle();
        let mut finder = PathFinder::new();
        for _ in 0..3 {
            for &from in &n {
                for &to in &n {
                    assert_eq!(
                        finder.shortest_path(&g, from, to),
                        shortest_path(&g, from, to),
                        "{from:?} -> {to:?}"
                    );
                }
            }
        }
        // Shrinking graphs must not read out-of-date scratch sized for a
        // bigger one.
        let mut small = Graph::new();
        let a = small.add_node();
        let b = small.add_node();
        let l = small.add_link(a, b, 1.0).unwrap();
        assert_eq!(finder.shortest_path(&small, a, b), Some(vec![l]));
        // Disconnected pair after the finder has seen other graphs.
        let mut disc = Graph::new();
        let x = disc.add_node();
        let y = disc.add_node();
        assert_eq!(finder.shortest_path(&disc, x, y), None);
    }

    #[test]
    fn validate_route_accepts_good_routes() {
        let (g, n, l) = triangle();
        let r = ReceiverId::new(0, 0);
        validate_route(&g, n[0], n[2], &[l[0], l[1]], r).unwrap();
        validate_route(&g, n[0], n[2], &[l[2]], r).unwrap();
        validate_route(&g, n[0], n[0], &[], r).unwrap();
    }

    #[test]
    fn validate_route_rejects_each_defect() {
        let (g, n, l) = triangle();
        let r = ReceiverId::new(0, 0);
        // Empty but endpoints differ.
        assert!(matches!(
            validate_route(&g, n[0], n[2], &[], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::Empty,
                ..
            })
        ));
        // Starts at the wrong node.
        assert!(matches!(
            validate_route(&g, n[0], n[2], &[l[1]], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::WrongStart,
                ..
            })
        ));
        // Ends at the wrong node.
        assert!(matches!(
            validate_route(&g, n[0], n[1], &[l[0], l[1]], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::WrongEnd,
                ..
            })
        ));
        // Disconnected middle.
        let mut g2 = Graph::new();
        let m = g2.add_nodes(4);
        let a = g2.add_link(m[0], m[1], 1.0).unwrap();
        let b = g2.add_link(m[2], m[3], 1.0).unwrap();
        assert!(matches!(
            validate_route(&g2, m[0], m[3], &[a, b], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::Disconnected,
                ..
            })
        ));
        // Repeated link (0 -> 1 -> 0 is a repeat, not a walk we allow).
        assert!(matches!(
            validate_route(&g, n[0], n[0], &[l[0], l[0]], r),
            Err(NetError::InvalidRoute {
                reason: RouteDefect::RepeatedLink,
                ..
            })
        ));
        // Unknown link id.
        assert!(matches!(
            validate_route(&g, n[0], n[2], &[LinkId(99)], r),
            Err(NetError::UnknownLink(_))
        ));
    }
}
