//! # mlf-net — network substrate for the SIGCOMM '99 layering-fairness study
//!
//! This crate implements the network model of *"The Impact of Multicast
//! Layering on Network Fairness"* (Rubenstein, Kurose, Towsley, SIGCOMM
//! 1999), Section 2 / Table 1:
//!
//! * a capacitated undirected [`Graph`] `G` of nodes and links `l_j` with
//!   capacities `c_j`;
//! * multicast [`Session`]s `S_i` with one sender `X_i`, receivers
//!   `r_{i,k}`, a type `chi(S_i) ∈ {single-rate, multi-rate}` and a maximum
//!   desired rate `kappa_i`;
//! * a fully-routed [`Network`] `N = (G, {S_i}, chi, tau)` exposing each
//!   receiver's data-path and the per-link receiver sets `R_{i,j}` / `R_j`;
//! * [`topology`] builders (stars, trees, dumbbells, random trees) and the
//!   paper's exact example networks in [`paper`].
//!
//! Everything here is purely structural: rate allocations, fairness
//! properties and the max-min allocator live in `mlf-core`; the packet-level
//! simulator lives in `mlf-sim`.
//!
//! ## Example
//!
//! ```
//! use mlf_net::{Graph, Network, Session, ReceiverId};
//!
//! // sender -- 10 -- hub -- 4 / 6 -- two receivers
//! let mut g = Graph::new();
//! let s = g.add_node();
//! let hub = g.add_node();
//! let r1 = g.add_node();
//! let r2 = g.add_node();
//! g.add_link(s, hub, 10.0).unwrap();
//! g.add_link(hub, r1, 4.0).unwrap();
//! g.add_link(hub, r2, 6.0).unwrap();
//!
//! let net = Network::new(g, vec![Session::multi_rate(s, vec![r1, r2])]).unwrap();
//! assert_eq!(net.route(ReceiverId::new(0, 0)).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod graph;
pub mod ids;
pub mod network;
pub mod paper;
pub mod routing;
pub mod session;
pub mod topology;

pub use error::NetError;
pub use error::RouteDefect;
pub use graph::{Graph, Link};
pub use ids::{LinkId, NodeId, ReceiverId, SessionId};
pub use network::Network;
pub use routing::{shortest_path, validate_route, PathFinder, Route};
pub use session::{Session, SessionType};
pub use topology::{TopologyError, TopologyFamily};
