//! Benchmarks the coordinator's process-isolated worker fleet against
//! the in-process thread transport and the serial sweep.
//!
//! Three things are recorded:
//!
//! 1. **Correctness, always**: before any timing, the process-fleet
//!    report is asserted bitwise identical to the serial sweep —
//!    fault-free, under a seeded six-kind process fault plan (worker
//!    SIGKILLs and torn frames included), and with the disk spill tier
//!    enabled. A robustness regression fails the bench run itself,
//!    which is why CI executes this bench.
//! 2. **Throughput artifact**: the process-fleet sweep's
//!    points-per-second (2 workers, spot checks on, no faults) is
//!    written as `BENCH_coordinator_process.json` for the CI regression
//!    gate — it tracks the cost of process isolation (spawn, frame
//!    codec, pipe I/O) on top of the thread-transport coordination
//!    overhead.
//! 3. **Overhead**: hand-timed thread-transport vs process-fleet
//!    wall-clock over the full sweep, printed so the isolation tax can
//!    be read directly. Skipped in `MLF_BENCH_CHECK=1` mode, along with
//!    criterion sampling.
//!
//! The bench binary re-executes itself as the fleet's workers, so
//! `main` is hand-rolled: the worker guard must run before criterion.

use criterion::{criterion_group, Criterion};
use mlf_bench::or_exit;
use mlf_bench::regression::{check_mode, measure_and_emit, time_best_of_three};
use mlf_core::allocator::MultiRate;
use mlf_core::LinkRateModel;
use mlf_scenario::checkpoint::encode_point;
use mlf_scenario::{
    CoordinatorConfig, FaultPlan, LinkRates, ProcessConfig, Scenario, SweepPoint, TransportKind,
};
use std::hint::black_box;
use std::time::Duration;

/// Figure-5 scale, matching the sweep_coordinator bench: 30-node trees,
/// 8 sessions, random-join redundancy.
fn fig5_scale_scenario() -> Scenario {
    Scenario::builder()
        .label("fig5-scale-process-fleet")
        .random_networks(30, 8, 5)
        .link_rates(LinkRates::Uniform(LinkRateModel::RandomJoin { sigma: 6.0 }))
        .allocator(MultiRate::new())
        .build()
        .expect("valid scenario")
}

const FULL_SWEEP_SEEDS: u64 = 128;

fn cfg(transport: TransportKind) -> CoordinatorConfig {
    CoordinatorConfig {
        workers: 2,
        shard_size: 8,
        spot_check: 2,
        shard_timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        transport,
        ..CoordinatorConfig::default()
    }
}

fn process_cfg() -> CoordinatorConfig {
    cfg(TransportKind::Process(ProcessConfig::default()))
}

fn assert_bitwise(got: &[SweepPoint], want: &[SweepPoint], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: point count diverged");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            encode_point(g) == encode_point(w),
            "{what}: point {i} diverged bitwise"
        );
    }
}

/// The robustness differential, asserted before anything is timed.
fn assert_process_fleet_matches_serial(scenario: &mut Scenario) {
    let serial = scenario.sweep(0..FULL_SWEEP_SEEDS);

    let out = scenario
        .coordinate(0..FULL_SWEEP_SEEDS, &process_cfg())
        .expect("fault-free process fleet");
    assert_bitwise(&out.report.points, &serial.points, "process fleet");
    assert_eq!(out.stats.respawns, 0, "no respawns without faults");

    // Seeded six-kind process plan: crashes, stalls, corrupt hashes,
    // duplicates, worker SIGKILLs, torn frames.
    let shards = FULL_SWEEP_SEEDS.div_ceil(8);
    let faulted = CoordinatorConfig {
        shard_timeout: Duration::from_millis(500),
        fault_plan: FaultPlan::from_seed_process(21, 2, shards),
        ..process_cfg()
    };
    let out = scenario
        .coordinate(0..FULL_SWEEP_SEEDS, &faulted)
        .expect("faulted process fleet");
    assert_bitwise(
        &out.report.points,
        &serial.points,
        "process fleet under seeded faults",
    );

    // Spill tier enabled: same bytes, segments written and re-served.
    let spill_dir = std::env::temp_dir().join(format!(
        "mlf-bench-coordinator-process-spill-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let spilled = CoordinatorConfig {
        spill_dir: Some(spill_dir.clone()),
        ..process_cfg()
    };
    for run in 0..2 {
        let out = scenario
            .coordinate(0..FULL_SWEEP_SEEDS, &spilled)
            .expect("spill-enabled process fleet");
        assert_bitwise(
            &out.report.points,
            &serial.points,
            &format!("spill-enabled process fleet, run {run}"),
        );
        assert_eq!(out.stats.spill_corrupt_segments, 0);
    }
    let _ = std::fs::remove_dir_all(&spill_dir);

    println!(
        "determinism: process-fleet sweep bitwise-identical to serial over {FULL_SWEEP_SEEDS} \
         seeds (fault-free, seeded kill/torn-frame plan, spill tier on)"
    );
}

/// Time the process-fleet sweep and write `BENCH_coordinator_process.json`.
fn emit_artifact(scenario: &Scenario) -> Duration {
    let fleet_cfg = process_cfg();
    or_exit(measure_and_emit(
        "coordinator_process",
        FULL_SWEEP_SEEDS,
        || {
            scenario
                .coordinate(0..FULL_SWEEP_SEEDS, &fleet_cfg)
                .map(|out| out.report.points.len())
                .unwrap_or(0)
        },
    ))
}

fn report_overhead(scenario: &mut Scenario, fleet: Duration) {
    let threads_cfg = cfg(TransportKind::Threads);
    let threads = time_best_of_three(|| {
        scenario
            .coordinate(0..FULL_SWEEP_SEEDS, &threads_cfg)
            .map(|out| out.report.points.len())
            .unwrap_or(0)
    });
    println!(
        "wall-clock over {FULL_SWEEP_SEEDS} seeds: coordinated threads {threads:?}, \
         process fleet {fleet:?}"
    );
    println!(
        "  process-isolation overhead vs thread transport: {:.2}x",
        fleet.as_secs_f64() / threads.as_secs_f64()
    );
}

fn bench_coordinator_process(c: &mut Criterion) {
    let mut scenario = fig5_scale_scenario();
    assert_process_fleet_matches_serial(&mut scenario);
    let fleet = emit_artifact(&scenario);
    if check_mode() {
        println!("MLF_BENCH_CHECK=1: skipping overhead report and criterion sampling");
        return;
    }
    report_overhead(&mut scenario, fleet);

    // Criterion samples on a smaller sweep so each measured window stays
    // short (every iteration spawns a fresh two-process fleet); the
    // full-size comparison above is the headline number.
    let small_cfg = process_cfg();
    let mut group = c.benchmark_group("scenario/process_fleet_32seeds");
    group.bench_function("process_fleet_2_workers", |b| {
        b.iter(|| {
            black_box(
                scenario
                    .coordinate(0..32, &small_cfg)
                    .map(|out| out.report.points.len())
                    .unwrap_or(0),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_coordinator_process);

fn main() {
    // Fleet workers re-execute this bench binary: route them into the
    // stdio worker loop before criterion parses anything.
    mlf_scenario::transport::maybe_run_process_worker();
    benches();
}
