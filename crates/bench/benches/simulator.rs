//! Criterion benchmarks of the packet-level simulator: slot throughput per
//! protocol and scaling in receiver count — the knobs that set the cost of
//! regenerating Figure 8 at full fidelity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mlf_protocols::{experiment, ExperimentParams, ProtocolKind};
use std::hint::black_box;

fn bench_protocol_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/one_trial_20k_packets");
    let base = ExperimentParams {
        receivers: 50,
        packets: 20_000,
        trials: 1,
        ..ExperimentParams::quick(0.0001, 0.03).unwrap()
    };
    group.throughput(Throughput::Elements(base.packets));
    for kind in ProtocolKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| black_box(experiment::run_trial(kind, &base, 0)))
        });
    }
    group.finish();
}

fn bench_receiver_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator/receiver_scaling");
    for &receivers in &[10usize, 50, 100, 200] {
        let params = ExperimentParams {
            receivers,
            packets: 10_000,
            trials: 1,
            ..ExperimentParams::quick(0.0001, 0.03).unwrap()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(receivers),
            &params,
            |b, params| {
                b.iter(|| {
                    black_box(experiment::run_trial(
                        ProtocolKind::Deterministic,
                        params,
                        0,
                    ))
                })
            },
        );
    }
    group.finish();
}

fn bench_rng_and_loss(c: &mut Criterion) {
    use mlf_sim::{LossProcess, SimRng};
    c.bench_function("sim/rng_unit_1k", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.unit();
            }
            black_box(acc)
        })
    });
    c.bench_function("sim/gilbert_elliott_1k", |b| {
        let mut rng = SimRng::seed_from_u64(2);
        let mut lp = LossProcess::bursty_with_average(0.03, 8.0);
        b.iter(|| {
            let mut lost = 0u32;
            for _ in 0..1000 {
                lost += lp.sample(&mut rng) as u32;
            }
            black_box(lost)
        })
    });
}

criterion_group!(
    benches,
    bench_protocol_throughput,
    bench_receiver_scaling,
    bench_rng_and_loss
);
criterion_main!(benches);
