//! Benchmarks the protocol-sweep tentpole: `ProtocolScenario::sweep_par`
//! sharding a Figure-8-scale grid (all three protocols × a 6-point
//! independent-loss axis × 2 replicate seeds, on a scaled-down star) across
//! scoped worker threads through the shared deterministic executor, versus
//! the serial sweep.
//!
//! Three things happen, in order:
//!
//! 1. **Correctness, always**: the parallel points are asserted bitwise
//!    identical to the serial ones at 2, 4, and 8 threads before any timing
//!    runs — a determinism regression fails the bench run itself, which is
//!    why CI executes this bench.
//! 2. **Throughput artifact**: the serial sweep is timed (best of three)
//!    and written as `BENCH_protocol_sweep.json` for the CI regression gate
//!    (`bench_gate` fails the job if points-per-second drops >30% below
//!    the committed baseline).
//! 3. **Speedup + sampling**: wall-clock serial-vs-parallel comparison and
//!    criterion sampling — skipped when `MLF_BENCH_CHECK=1` (CI check
//!    mode), where the determinism assert and the artifact are the point.

use criterion::{criterion_group, criterion_main, Criterion};
use mlf_bench::or_exit;
use mlf_bench::regression::{check_mode, measure_and_emit, time_best_of_three};
use mlf_protocols::ExperimentParams;
use mlf_scenario::{ProtocolScenario, ProtocolSweepGrid};
use std::hint::black_box;
use std::time::Duration;

/// Figure-8 scale in grid shape (full protocol panel × loss axis ×
/// replicate seeds), scaled down in per-point volume so the sweep finishes
/// in CI time while still giving the throughput gate a measurement window
/// of hundreds of milliseconds: 24 receivers, 50k packets, 3 trials per
/// seed.
fn fig8_scale_scenario() -> ProtocolScenario {
    ProtocolScenario::builder()
        .label("fig8-scale-protocol-sweep")
        .template(ExperimentParams {
            receivers: 24,
            packets: 50_000,
            trials: 3,
            ..ExperimentParams::quick(0.0001, 0.0).expect("valid losses")
        })
        .build()
        .expect("valid protocol scenario")
}

fn sweep_grid() -> ProtocolSweepGrid {
    let seed = 0x51_66_C0_99;
    ProtocolSweepGrid::figure8_axis(6).with_seeds([seed, seed + 1])
}

fn assert_parallel_matches_serial(scenario: &ProtocolScenario, grid: &ProtocolSweepGrid) {
    let serial = scenario.sweep(grid);
    for threads in [2usize, 4, 8] {
        let parallel = scenario.sweep_par(grid, threads);
        assert_eq!(
            serial, parallel,
            "protocol sweep_par diverged from serial at {threads} threads"
        );
    }
    println!(
        "determinism: parallel protocol sweep bitwise-identical to serial over {} points \
         (3 protocols x 6 losses x 2 seeds) at 2/4/8 threads",
        serial.points.len()
    );
}

fn emit_artifact(scenario: &ProtocolScenario, grid: &ProtocolSweepGrid) -> Duration {
    let points = grid.kinds.len() * grid.independent_losses.len() * grid.seeds.len();
    or_exit(measure_and_emit("protocol_sweep", points as u64, || {
        scenario.sweep(grid).points.len()
    }))
}

fn report_wall_clock_speedup(
    scenario: &ProtocolScenario,
    grid: &ProtocolSweepGrid,
    serial: Duration,
) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!("wall-clock (available parallelism {cores}): serial {serial:?}");
    for threads in [2usize, 4] {
        let par = time_best_of_three(|| scenario.sweep_par(grid, threads).points.len());
        println!(
            "  parallel speedup at {threads} threads: {:.2}x ({par:?})",
            serial.as_secs_f64() / par.as_secs_f64()
        );
    }
}

fn bench_protocol_sweep(c: &mut Criterion) {
    let scenario = fig8_scale_scenario();
    let grid = sweep_grid();
    assert_parallel_matches_serial(&scenario, &grid);
    let serial = emit_artifact(&scenario, &grid);
    if check_mode() {
        println!("MLF_BENCH_CHECK=1: skipping speedup report and criterion sampling");
        return;
    }
    report_wall_clock_speedup(&scenario, &grid, serial);

    // Criterion samples on a smaller grid so the measured windows stay
    // short; the full-grid comparison above is the headline number.
    let small = ProtocolSweepGrid::figure8_axis(3).with_seeds([0x51_66_C0_99]);
    let mut group = c.benchmark_group("protocol/fig8_scale_sweep_9pts");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(scenario.sweep(&small).points.len()))
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("par_{threads}_threads"), |b| {
            b.iter(|| black_box(scenario.sweep_par(&small, threads).points.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_sweep);
criterion_main!(benches);
