//! Benchmarks the tentpole hot-path claim: `Allocator::solve` with a reused
//! `SolverWorkspace` vs the legacy per-call free-function path, on the
//! Figure 5 random-join sweep (RandomJoin link-rate models force the
//! bisection solver, the allocator's most scratch-hungry code path).
//!
//! Alongside wall-clock timings, a counting global allocator reports heap
//! allocations **per solve** for both paths — the number the workspace
//! design exists to cut.

use criterion::{criterion_group, criterion_main, Criterion};
use mlf_core::allocator::{Allocator, Hybrid, SolverWorkspace};
use mlf_core::{LinkRateConfig, LinkRateModel};
use mlf_net::topology::random_network;
use mlf_net::Network;
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to the system allocator unchanged; the
// only addition is a relaxed counter increment on the allocation path.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations_during<T>(f: impl FnOnce() -> T) -> (T, u64) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (out, ALLOCATIONS.load(Ordering::Relaxed) - before)
}

/// The sweep corpus: one network per seed, all sessions under the Appendix B
/// random-join model (Figure 5's setting, fed back into the allocator).
fn sweep_corpus() -> (Vec<Network>, LinkRateConfig) {
    let nets: Vec<Network> = (0..24u64)
        .map(|s| random_network(s, 30, 8, 5).unwrap())
        .collect();
    let cfg = LinkRateConfig::uniform(8, LinkRateModel::RandomJoin { sigma: 6.0 });
    (nets, cfg)
}

#[allow(deprecated)]
fn legacy_sweep(nets: &[Network], cfg: &LinkRateConfig) -> f64 {
    nets.iter()
        .map(|net| mlf_core::max_min_allocation_with(net, cfg).total_rate())
        .sum()
}

fn workspace_sweep(nets: &[Network], allocator: &Hybrid, ws: &mut SolverWorkspace) -> f64 {
    nets.iter()
        .map(|net| allocator.solve(net, ws).allocation.total_rate())
        .sum()
}

fn report_allocation_counts(nets: &[Network], cfg: &LinkRateConfig) {
    let allocator = Hybrid::as_declared().with_config(cfg.clone());
    let mut ws = SolverWorkspace::new();
    // Warm the workspace so steady-state reuse is measured, then compare.
    let (warm_total, _) = allocations_during(|| workspace_sweep(nets, &allocator, &mut ws));
    let (reused_total, reused_allocs) =
        allocations_during(|| workspace_sweep(nets, &allocator, &mut ws));
    let (legacy_total, legacy_allocs) = allocations_during(|| legacy_sweep(nets, cfg));
    assert_eq!(warm_total, reused_total);
    assert_eq!(reused_total, legacy_total, "paths must agree");
    let n = nets.len() as u64;
    println!(
        "allocations/solve over the {n}-network random-join sweep: \
         legacy per-call path {}  |  reused workspace {}  ({:.1}x fewer)",
        legacy_allocs / n,
        reused_allocs / n,
        legacy_allocs as f64 / reused_allocs.max(1) as f64
    );
}

fn bench_sweep(c: &mut Criterion) {
    let (nets, cfg) = sweep_corpus();
    report_allocation_counts(&nets, &cfg);

    let mut group = c.benchmark_group("allocator/fig5_random_join_sweep");
    group.bench_function("legacy_per_call", |b| {
        b.iter(|| black_box(legacy_sweep(&nets, &cfg)))
    });
    let allocator = Hybrid::as_declared().with_config(cfg.clone());
    let mut ws = SolverWorkspace::new();
    group.bench_function("reused_workspace", |b| {
        b.iter(|| black_box(workspace_sweep(&nets, &allocator, &mut ws)))
    });
    group.finish();
}

fn bench_single_network_resolve(c: &mut Criterion) {
    // The simulation-loop shape: the same network solved over and over.
    let net = random_network(7, 40, 10, 5).unwrap();
    let cfg = LinkRateConfig::efficient(10);
    let allocator = Hybrid::as_declared().with_config(cfg.clone());
    let mut ws = SolverWorkspace::new();
    let mut group = c.benchmark_group("allocator/repeated_resolve_40n_10s");
    #[allow(deprecated)]
    group.bench_function("legacy_per_call", |b| {
        b.iter(|| black_box(mlf_core::max_min_allocation_with(&net, &cfg)))
    });
    group.bench_function("reused_workspace", |b| {
        b.iter(|| black_box(allocator.solve(&net, &mut ws).allocation.total_rate()))
    });
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_single_network_resolve);
criterion_main!(benches);
