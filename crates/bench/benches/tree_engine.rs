//! Benchmarks the per-link bitset tree engine tentpole at six-figure
//! scale: a complete 10-ary tree of depth 5 (100,000 leaf receivers,
//! 111,110 links, one multi-rate session) with an 8-layer exponential
//! ladder, bitset engine versus the frozen pre-bitset reference
//! (`mlf_sim::reference_tree`).
//!
//! Three things happen, in order:
//!
//! 1. **Correctness, always**: every protocol's bitset run is asserted
//!    bitwise identical (whole `TreeReport`) to the reference run on a
//!    moderate 4-ary depth-4 tree (256 receivers) before any timing — an
//!    engine-determinism regression fails the bench run itself, which is
//!    why CI executes this bench. (The workspace differential covers the
//!    same claim across random shapes; this is the bench-shaped pin.)
//! 2. **Throughput artifact + speedup floor**: the bitset engine is timed
//!    best-of-three over all three protocols at the full 10⁵-receiver
//!    scale and written as `BENCH_tree_engine.json` (the gated "points"
//!    are slots; the metric is slots/second), then the reference is timed
//!    the same way at a reduced slot budget — it is O(links × downstream)
//!    per slot — and the bitset engine is asserted **≥ 5x** faster, the
//!    tentpole's acceptance bar (measured orders of magnitude beyond it).
//! 3. **Criterion sampling**: per-protocol bitset-vs-reference samples at
//!    the moderate scale — skipped when `MLF_BENCH_CHECK=1` (CI check
//!    mode), where the determinism assert, the artifact, and the 5x floor
//!    are the point.

use criterion::{criterion_group, criterion_main, Criterion};
use mlf_bench::or_exit;
use mlf_bench::regression::{check_mode, measure_and_emit, time_best_of_three};
use mlf_net::{Graph, LinkId, Network, Session};
use mlf_protocols::{make_receiver, CoordinatedSender, ProtocolKind};
use mlf_sim::engine::{MarkerSource, NoMarkers, ReceiverController};
use mlf_sim::tree::{run_tree_into, TreeConfig, TreeReport, TreeScratch};
use mlf_sim::{reference_tree, LossProcess, SimRng, Tick};
use std::hint::black_box;

const LAYERS: usize = 8;
const SEED: u64 = 0x51_66_C0_99;

/// Full-scale shape: 10-ary, depth 5 → 10⁵ leaf receivers.
const BIG_ARITY: usize = 10;
const BIG_DEPTH: usize = 5;
const BIG_SLOTS: u64 = 16_384;
/// The reference at full scale costs ~10⁶ receiver/route checks per slot;
/// a reduced budget keeps its best-of-three timing to seconds.
const BIG_REF_SLOTS: u64 = 128;

/// Moderate shape for the always-on bitwise assert and criterion samples.
const MID_ARITY: usize = 4;
const MID_DEPTH: usize = 4;
const MID_SLOTS: u64 = 20_000;

enum Markers {
    None(NoMarkers),
    Coordinated(CoordinatedSender),
}

impl MarkerSource for Markers {
    fn marker(&mut self, slot: Tick, layer: usize) -> Option<usize> {
        match self {
            Markers::None(m) => m.marker(slot, layer),
            Markers::Coordinated(m) => m.marker(slot, layer),
        }
    }
}

/// A complete `arity`-ary tree of the given depth with every leaf a
/// receiver, built with explicit routes: recording each node's root path
/// during construction and handing them to [`Network::with_routes`] skips
/// the per-receiver BFS of [`Network::new`], which at 10⁵ receivers ×
/// 2×10⁵ graph elements would dominate the whole bench.
fn leaf_tree(arity: usize, depth: usize) -> Network {
    let mut g = Graph::new();
    let root = g.add_node();
    let mut frontier: Vec<(mlf_net::NodeId, Vec<LinkId>)> = vec![(root, Vec::new())];
    for _ in 0..depth {
        let mut next = Vec::with_capacity(frontier.len() * arity);
        for (p, route) in &frontier {
            for _ in 0..arity {
                let c = g.add_node();
                let l = g.add_link(*p, c, 1e6).expect("fresh link");
                let mut r = route.clone();
                r.push(l);
                next.push((c, r));
            }
        }
        frontier = next;
    }
    let (leaves, routes): (Vec<_>, Vec<_>) = frontier.into_iter().unzip();
    Network::with_routes(g, vec![Session::multi_rate(root, leaves)], vec![routes])
        .expect("explicit routes of a complete tree are valid")
}

fn config(net: &Network) -> TreeConfig {
    TreeConfig {
        layer_rates: (0..LAYERS)
            .map(|i| {
                if i == 0 {
                    1.0
                } else {
                    (1u64 << (i - 1)) as f64
                }
            })
            .collect(),
        link_loss: vec![LossProcess::bernoulli(0.03); net.link_count()],
        join_latency: 0,
        leave_latency: 0,
    }
}

fn receivers_of(net: &Network) -> usize {
    net.session(mlf_net::SessionId(0)).receivers.len()
}

fn rig(kind: ProtocolKind, receivers: usize) -> (Vec<Box<dyn ReceiverController>>, Markers) {
    let base = SimRng::seed_from_u64(SEED ^ 0xABCD_EF01_2345_6789);
    let controllers = (0..receivers)
        .map(|r| make_receiver(kind, base.split(1_000_000 + r as u64)))
        .collect();
    let markers = match kind {
        ProtocolKind::Coordinated => Markers::Coordinated(CoordinatedSender::new(LAYERS)),
        _ => Markers::None(NoMarkers),
    };
    (controllers, markers)
}

/// One bitset run through reusable scratch (the production trial path).
fn run_bitset(
    net: &Network,
    cfg: &TreeConfig,
    kind: ProtocolKind,
    slots: u64,
    report: &mut TreeReport,
    scratch: &mut TreeScratch,
) {
    let (mut ctls, mut mk) = rig(kind, receivers_of(net));
    run_tree_into(net, cfg, &mut ctls, &mut mk, slots, SEED, report, scratch)
        .expect("bench configuration is valid");
}

fn run_reference(net: &Network, cfg: &TreeConfig, kind: ProtocolKind, slots: u64) -> TreeReport {
    let (mut ctls, mut mk) = rig(kind, receivers_of(net));
    reference_tree::run_tree(net, cfg, &mut ctls, &mut mk, slots, SEED)
}

fn assert_engines_agree(net: &Network, cfg: &TreeConfig) {
    let mut report = TreeReport::empty();
    let mut scratch = TreeScratch::default();
    for kind in ProtocolKind::ALL {
        run_bitset(net, cfg, kind, MID_SLOTS, &mut report, &mut scratch);
        let reference = run_reference(net, cfg, kind, MID_SLOTS);
        assert_eq!(
            report,
            reference,
            "bitset engine diverged from reference for {}",
            kind.label()
        );
    }
    println!(
        "determinism: bitset engine bitwise-identical to reference across all 3 protocols \
         at {} receivers x {MID_SLOTS} slots",
        receivers_of(net)
    );
}

fn bench_tree_engine(c: &mut Criterion) {
    let mid = leaf_tree(MID_ARITY, MID_DEPTH);
    let mid_cfg = config(&mid);
    assert_engines_agree(&mid, &mid_cfg);

    let big = leaf_tree(BIG_ARITY, BIG_DEPTH);
    let big_cfg = config(&big);
    println!(
        "big tree: {} receivers, {} links",
        receivers_of(&big),
        big.link_count()
    );

    // Gated throughput: total slots across the three protocols per pass of
    // the bitset engine (scratch reused, as in a trial loop).
    let total_slots = BIG_SLOTS * ProtocolKind::ALL.len() as u64;
    let bitset = or_exit(measure_and_emit("tree_engine", total_slots, || {
        let mut report = TreeReport::empty();
        let mut scratch = TreeScratch::default();
        let mut sum = 0usize;
        for kind in ProtocolKind::ALL {
            run_bitset(&big, &big_cfg, kind, BIG_SLOTS, &mut report, &mut scratch);
            sum += report.final_levels.len();
        }
        black_box(sum)
    }));
    let bitset_sps = total_slots as f64 / bitset.as_secs_f64();

    let ref_total_slots = BIG_REF_SLOTS * ProtocolKind::ALL.len() as u64;
    let cold = time_best_of_three(|| {
        ProtocolKind::ALL
            .iter()
            .map(|&kind| {
                run_reference(&big, &big_cfg, kind, BIG_REF_SLOTS)
                    .final_levels
                    .len()
            })
            .sum()
    });
    let cold_sps = ref_total_slots as f64 / cold.as_secs_f64();
    let speedup = bitset_sps / cold_sps;
    println!(
        "tree engine: bitset {bitset_sps:.0} slots/s vs reference {cold_sps:.0} slots/s \
         ({speedup:.1}x; bitset {bitset:?} over {total_slots} slots, \
         reference {cold:?} over {ref_total_slots} slots)"
    );
    assert!(
        speedup >= 5.0,
        "bitset tree engine must be >= 5x the reference at 1e5 receivers, got {speedup:.1}x"
    );

    if check_mode() {
        println!("MLF_BENCH_CHECK=1: skipping criterion sampling");
        return;
    }

    // Criterion samples at the moderate scale (the reference would take
    // minutes per sample at 10⁵ receivers).
    let mut group = c.benchmark_group("sim/tree_engine_kary");
    let bitset_slots = 10_000u64;
    let reference_slots = 1_000u64;
    for kind in ProtocolKind::ALL {
        group.bench_function(format!("bitset_{}", kind.label()), |b| {
            let mut report = TreeReport::empty();
            let mut scratch = TreeScratch::default();
            b.iter(|| {
                run_bitset(
                    &mid,
                    &mid_cfg,
                    kind,
                    bitset_slots,
                    &mut report,
                    &mut scratch,
                );
                black_box(report.carried[0])
            })
        });
        group.bench_function(format!("reference_{}", kind.label()), |b| {
            b.iter(|| black_box(run_reference(&mid, &mid_cfg, kind, reference_slots).carried[0]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree_engine);
criterion_main!(benches);
