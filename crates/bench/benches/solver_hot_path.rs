//! Benchmarks the PR-4 tentpole: the incidence-indexed incremental solver
//! core and the cross-sweep topology/solve cache, on solver-bound
//! workloads — large GT-ITM-style transit–stub hierarchies and wide
//! high-fanout k-ary trees, swept over a `seeds × link-rate models` grid.
//!
//! Three things are recorded:
//!
//! 1. **Correctness, always**: the warm-cache replay of the grid is
//!    asserted bitwise identical to the cold sweep, and the parallel
//!    executor (worker-local caches) to the serial one, before any timing
//!    runs.
//! 2. **Throughput artifact**: the *cold* grid sweep's points-per-second —
//!    the number that tracks raw solver hot-path cost (topology build +
//!    index build + progressive filling, no memo hits) — is written as
//!    `BENCH_solver_hot_path.json` for the CI regression gate.
//! 3. **Warm-cache speedup**: the same grid re-swept against the warm
//!    scenario cache must run **≥ 2x** the cold throughput (the tentpole's
//!    acceptance bar; in practice hits skip the solve entirely and the
//!    ratio is far higher). Asserted, then printed.

use criterion::{criterion_group, criterion_main, Criterion};
use mlf_bench::or_exit;
use mlf_bench::regression::{check_mode, measure_and_emit, time_best_of_three};
use mlf_core::allocator::MultiRate;
use mlf_core::LinkRateModel;
use mlf_net::TopologyFamily;
use mlf_scenario::{Scenario, SweepGrid, SweepReport};
use std::cell::RefCell;
use std::hint::black_box;

/// One solver-bound workload: a topology family at scale plus a model grid.
struct Workload {
    label: &'static str,
    family: TopologyFamily,
    nodes: usize,
    sessions: usize,
    max_receivers: usize,
    grid: SweepGrid,
}

fn workloads() -> Vec<Workload> {
    let models = [
        LinkRateModel::Efficient,
        LinkRateModel::Scaled(2.0),
        LinkRateModel::Sum,
    ];
    vec![
        Workload {
            label: "transit-stub-96",
            family: TopologyFamily::TransitStub { transit: 8 },
            nodes: 96,
            sessions: 12,
            max_receivers: 6,
            grid: SweepGrid::seeds(0..24).with_models(models),
        },
        Workload {
            label: "kary-85",
            family: TopologyFamily::KaryTree { arity: 4 },
            nodes: 85,
            sessions: 10,
            max_receivers: 8,
            grid: SweepGrid::seeds(0..24).with_models(models),
        },
    ]
}

fn scenario_for(w: &Workload) -> Scenario {
    Scenario::builder()
        .label(format!("solver-hot-path/{}", w.label))
        .random_networks_with(w.family, w.nodes, w.sessions, w.max_receivers)
        .allocator(MultiRate::new())
        .build()
        .expect("valid hot-path scenario")
}

fn total_points(ws: &[Workload]) -> u64 {
    ws.iter()
        .map(|w| (w.grid.seeds.len() * w.grid.models.len()) as u64)
        .sum()
}

/// Cold pass over every workload: fresh scenarios, empty caches.
fn sweep_cold(ws: &[Workload]) -> Vec<SweepReport> {
    ws.iter()
        .map(|w| scenario_for(w).sweep_grid(&w.grid))
        .collect()
}

fn assert_cache_and_parallel_agreement(ws: &[Workload]) {
    for w in ws {
        let mut scenario = scenario_for(w);
        let cold = scenario.sweep_grid(&w.grid);
        assert_eq!(cold.cache.hits, 0, "{}: cold sweep must not hit", w.label);
        let warm = scenario.sweep_grid(&w.grid);
        assert_eq!(cold, warm, "{}: warm replay diverged from cold", w.label);
        assert_eq!(
            warm.cache.misses, 0,
            "{}: warm sweep must not miss",
            w.label
        );
        for threads in [2usize, 4] {
            let par = scenario.sweep_grid_par(&w.grid, threads);
            assert_eq!(
                cold, par,
                "{}: parallel diverged at {threads} threads",
                w.label
            );
        }
    }
    println!(
        "determinism: warm-cache and parallel grid sweeps bitwise-identical to cold/serial \
         across {} workloads",
        ws.len()
    );
}

fn bench_solver_hot_path(c: &mut Criterion) {
    let ws = workloads();
    assert_cache_and_parallel_agreement(&ws);
    let points = total_points(&ws);

    // Cold throughput: the gated number. Fresh scenario per pass, so every
    // point pays topology build + index build + solve.
    let cold = or_exit(measure_and_emit("solver_hot_path", points, || {
        sweep_cold(&ws).iter().map(|r| r.points.len()).sum()
    }));
    let cold_pps = points as f64 / cold.as_secs_f64();

    // Warm throughput: the same grids against scenarios whose caches
    // already hold every point.
    let warmed: Vec<RefCell<Scenario>> = ws
        .iter()
        .map(|w| {
            let mut s = scenario_for(w);
            let _ = s.sweep_grid(&w.grid);
            RefCell::new(s)
        })
        .collect();
    let warm = time_best_of_three(|| {
        ws.iter()
            .zip(&warmed)
            .map(|(w, s)| s.borrow_mut().sweep_grid(&w.grid).points.len())
            .sum()
    });
    let warm_pps = points as f64 / warm.as_secs_f64();
    let speedup = warm_pps / cold_pps;
    println!(
        "warm-cache sweep: {warm_pps:.1} points/s vs cold {cold_pps:.1} points/s \
         ({speedup:.1}x; cold {cold:?}, warm {warm:?} over {points} points)"
    );
    assert!(
        speedup >= 2.0,
        "warm-cache grid sweep must be >= 2x the cold path, got {speedup:.2}x"
    );

    if check_mode() {
        println!("MLF_BENCH_CHECK=1: skipping criterion sampling");
        return;
    }

    // Criterion samples on the first workload only, cold vs warm.
    let w = &ws[0];
    let mut group = c.benchmark_group("solver/hot_path_grid");
    group.bench_function("cold", |b| {
        b.iter(|| black_box(scenario_for(w).sweep_grid(&w.grid).points.len()))
    });
    let warm_scenario = RefCell::new({
        let mut s = scenario_for(w);
        let _ = s.sweep_grid(&w.grid);
        s
    });
    group.bench_function("warm", |b| {
        b.iter(|| black_box(warm_scenario.borrow_mut().sweep_grid(&w.grid).points.len()))
    });
    group.finish();
}

criterion_group!(benches, bench_solver_hot_path);
criterion_main!(benches);
