//! Benchmarks the fault-tolerant sweep coordinator against the plain
//! serial sweep and the lean `sweep_par` sharder.
//!
//! Three things are recorded:
//!
//! 1. **Correctness, always**: before any timing, the coordinated report is
//!    asserted bitwise identical to the serial sweep — fault-free at 2 and
//!    4 workers, under two seeded fault plans, and through a
//!    kill-at-every-shard checkpoint/resume loop. A robustness regression
//!    fails the bench run itself, which is why CI executes this bench.
//! 2. **Throughput artifact**: the coordinated sweep's points-per-second
//!    (2 workers, spot checks on, no faults, no checkpoint) is written as
//!    `BENCH_sweep_coordinator.json` for the CI regression gate — it tracks
//!    the coordination overhead (channels, hashing, spot checks) on top of
//!    per-point solve cost.
//! 3. **Overhead**: hand-timed serial vs `sweep_par` vs coordinated
//!    wall-clock over the full sweep, printed so the cost of verification
//!    can be read directly. Skipped in `MLF_BENCH_CHECK=1` mode, along with
//!    criterion sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use mlf_bench::or_exit;
use mlf_bench::regression::{check_mode, measure_and_emit, time_best_of_three};
use mlf_core::allocator::MultiRate;
use mlf_core::LinkRateModel;
use mlf_scenario::checkpoint::encode_point;
use mlf_scenario::{
    CoordinatorConfig, CoordinatorError, FaultPlan, LinkRates, Scenario, SweepPoint,
};
use std::hint::black_box;
use std::time::Duration;

/// Figure-5 scale, matching the parallel_sweep bench: 30-node trees,
/// 8 sessions, random-join redundancy.
fn fig5_scale_scenario() -> Scenario {
    Scenario::builder()
        .label("fig5-scale-coordinated-sweep")
        .random_networks(30, 8, 5)
        .link_rates(LinkRates::Uniform(LinkRateModel::RandomJoin { sigma: 6.0 }))
        .allocator(MultiRate::new())
        .build()
        .expect("valid scenario")
}

const FULL_SWEEP_SEEDS: u64 = 128;

fn cfg(workers: usize) -> CoordinatorConfig {
    CoordinatorConfig {
        workers,
        shard_size: 8,
        spot_check: 2,
        shard_timeout: Duration::from_secs(5),
        backoff_base: Duration::from_millis(2),
        backoff_cap: Duration::from_millis(20),
        ..CoordinatorConfig::default()
    }
}

fn assert_bitwise(got: &[SweepPoint], want: &[SweepPoint], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: point count diverged");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!(
            encode_point(g) == encode_point(w),
            "{what}: point {i} diverged bitwise"
        );
    }
}

/// The robustness differential, asserted before anything is timed.
fn assert_coordinator_matches_serial(scenario: &mut Scenario) {
    let serial = scenario.sweep(0..FULL_SWEEP_SEEDS);

    for workers in [2usize, 4] {
        let out = scenario
            .coordinate(0..FULL_SWEEP_SEEDS, &cfg(workers))
            .expect("fault-free coordination");
        assert_bitwise(
            &out.report.points,
            &serial.points,
            &format!("coordinate at {workers} workers"),
        );
    }

    for fault_seed in [11u64, 12] {
        let shards = FULL_SWEEP_SEEDS.div_ceil(8);
        let faulted = CoordinatorConfig {
            // Short deadline so injected stalls resolve quickly.
            shard_timeout: Duration::from_millis(200),
            fault_plan: FaultPlan::from_seed(fault_seed, 2, shards),
            ..cfg(2)
        };
        let out = scenario
            .coordinate(0..FULL_SWEEP_SEEDS, &faulted)
            .expect("faulted coordination");
        assert_bitwise(
            &out.report.points,
            &serial.points,
            &format!("coordinate under fault plan {fault_seed}"),
        );
    }

    // Kill after every accepted shard, resume from the checkpoint, repeat.
    let path = std::env::temp_dir().join(format!(
        "mlf-bench-coordinator-resume-{}.jsonl",
        std::process::id()
    ));
    std::fs::remove_file(&path).ok();
    let resume_cfg = CoordinatorConfig {
        checkpoint: Some(path.clone()),
        max_new_shards: Some(4),
        ..cfg(2)
    };
    let resumed = loop {
        match scenario.coordinate(0..FULL_SWEEP_SEEDS, &resume_cfg) {
            Ok(out) => break out,
            Err(CoordinatorError::Interrupted { .. }) => continue,
            Err(e) => panic!("resume loop failed: {e}"),
        }
    };
    std::fs::remove_file(&path).ok();
    assert_bitwise(
        &resumed.report.points,
        &serial.points,
        "kill/resume via checkpoint",
    );
    assert!(resumed.stats.shards_from_checkpoint > 0);

    println!(
        "determinism: coordinated sweep bitwise-identical to serial over {FULL_SWEEP_SEEDS} \
         seeds (2/4 workers, 2 fault plans, kill-at-every-4-shards resume)"
    );
}

/// Time the coordinated sweep and write `BENCH_sweep_coordinator.json`.
fn emit_artifact(scenario: &Scenario) -> Duration {
    let coordinator_cfg = cfg(2);
    or_exit(measure_and_emit(
        "sweep_coordinator",
        FULL_SWEEP_SEEDS,
        || {
            scenario
                .coordinate(0..FULL_SWEEP_SEEDS, &coordinator_cfg)
                .map(|out| out.report.points.len())
                .unwrap_or(0)
        },
    ))
}

fn report_overhead(scenario: &mut Scenario, coordinated: Duration) {
    let serial = time_best_of_three(|| scenario.sweep_par(0..FULL_SWEEP_SEEDS, 1).points.len());
    let par2 = time_best_of_three(|| scenario.sweep_par(0..FULL_SWEEP_SEEDS, 2).points.len());
    println!(
        "wall-clock over {FULL_SWEEP_SEEDS} seeds: serial {serial:?}, sweep_par(2) {par2:?}, \
         coordinated(2 workers, spot checks) {coordinated:?}"
    );
    println!(
        "  coordination overhead vs sweep_par(2): {:.2}x",
        coordinated.as_secs_f64() / par2.as_secs_f64()
    );
}

fn bench_sweep_coordinator(c: &mut Criterion) {
    let mut scenario = fig5_scale_scenario();
    assert_coordinator_matches_serial(&mut scenario);
    let coordinated = emit_artifact(&scenario);
    if check_mode() {
        println!("MLF_BENCH_CHECK=1: skipping overhead report and criterion sampling");
        return;
    }
    report_overhead(&mut scenario, coordinated);

    // Criterion samples on a smaller sweep so the measured windows stay
    // short; the full-size comparison above is the headline number.
    let small_cfg = cfg(2);
    let mut group = c.benchmark_group("scenario/coordinated_sweep_32seeds");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(scenario.sweep_par(0..32, 1).points.len()))
    });
    group.bench_function("coordinated_2_workers", |b| {
        b.iter(|| {
            black_box(
                scenario
                    .coordinate(0..32, &small_cfg)
                    .map(|out| out.report.points.len())
                    .unwrap_or(0),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep_coordinator);
criterion_main!(benches);
