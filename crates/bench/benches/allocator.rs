//! Criterion benchmarks of the max-min allocator: scaling in network size,
//! session-type mix, and link-rate model, plus the paper's exact examples
//! as micro-cases.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlf_core::allocator::{Allocator, Hybrid, SolverWorkspace};
use mlf_core::{LinkRateConfig, LinkRateModel};
use mlf_net::topology::random_network;
use mlf_net::SessionType;
use std::hint::black_box;

fn bench_paper_examples(c: &mut Criterion) {
    let fig1 = mlf_net::paper::figure1();
    let fig2 = mlf_net::paper::figure2();
    let allocator = Hybrid::as_declared();
    let mut ws = SolverWorkspace::new();
    c.bench_function("allocator/figure1", |b| {
        b.iter(|| {
            black_box(
                allocator
                    .solve(&fig1.network, &mut ws)
                    .allocation
                    .total_rate(),
            )
        })
    });
    let mut ws = SolverWorkspace::new();
    c.bench_function("allocator/figure2_single_rate", |b| {
        b.iter(|| {
            black_box(
                allocator
                    .solve(&fig2.network, &mut ws)
                    .allocation
                    .total_rate(),
            )
        })
    });
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator/scaling");
    for &(nodes, sessions) in &[(10usize, 4usize), (30, 10), (100, 30), (300, 100)] {
        let net = random_network(42, nodes, sessions, 6).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{sessions}s")),
            &net,
            |b, net| {
                let allocator = Hybrid::as_declared();
                let mut ws = SolverWorkspace::new();
                b.iter(|| black_box(allocator.solve(net, &mut ws).allocation.total_rate()))
            },
        );
    }
    group.finish();
}

fn bench_session_types(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator/session_types");
    let net = random_network(7, 60, 20, 6).unwrap();
    let multi = net.with_uniform_kind(SessionType::MultiRate);
    let single = net.with_uniform_kind(SessionType::SingleRate);
    let allocator = Hybrid::as_declared();
    let mut ws = SolverWorkspace::new();
    group.bench_function("multi_rate", |b| {
        b.iter(|| black_box(allocator.solve(&multi, &mut ws).allocation.total_rate()))
    });
    group.bench_function("single_rate", |b| {
        b.iter(|| black_box(allocator.solve(&single, &mut ws).allocation.total_rate()))
    });
    group.finish();
}

fn bench_link_rate_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocator/link_rate_models");
    let net = random_network(9, 60, 20, 6).unwrap();
    let m = net.session_count();
    for (name, cfg) in [
        ("efficient", LinkRateConfig::efficient(m)),
        (
            "scaled2",
            LinkRateConfig::uniform(m, LinkRateModel::Scaled(2.0)),
        ),
        ("sum", LinkRateConfig::uniform(m, LinkRateModel::Sum)),
        (
            "random_join",
            LinkRateConfig::uniform(m, LinkRateModel::RandomJoin { sigma: 100.0 }),
        ),
    ] {
        let allocator = Hybrid::as_declared().with_config(cfg.clone());
        let mut ws = SolverWorkspace::new();
        group.bench_function(name, |b| {
            b.iter(|| black_box(allocator.solve(&net, &mut ws).allocation.total_rate()))
        });
    }
    group.finish();
}

fn bench_property_checks(c: &mut Criterion) {
    let net = random_network(11, 60, 20, 6).unwrap();
    let cfg = LinkRateConfig::efficient(net.session_count());
    let alloc = Hybrid::as_declared().allocate(&net);
    c.bench_function("properties/check_all_60n_20s", |b| {
        b.iter(|| black_box(mlf_core::check_all(&net, &cfg, &alloc)))
    });
}

criterion_group!(
    benches,
    bench_paper_examples,
    bench_scaling,
    bench_session_types,
    bench_link_rate_models,
    bench_property_checks
);
criterion_main!(benches);
