//! Benchmarks the level-indexed star engine tentpole at paper scale: the
//! Figure 8 star (8 layers, 100 receivers, shared loss 1e-4, independent
//! loss 0.05) for 500k slots per protocol, indexed engine versus the frozen
//! pre-index reference (`mlf_sim::reference`).
//!
//! Three things happen, in order:
//!
//! 1. **Correctness, always**: every protocol's indexed run is asserted
//!    bitwise identical (whole `StarReport`) to the reference run before
//!    any timing — an engine-determinism regression fails the bench run
//!    itself, which is why CI executes this bench.
//! 2. **Throughput artifact + speedup floor**: the indexed engine is timed
//!    best-of-three over all three protocols and written as
//!    `BENCH_star_engine.json` (the gated "points" are slots; the metric is
//!    slots/second), then the reference is timed the same way and the
//!    indexed engine is asserted **≥ 3x** faster — the tentpole's
//!    acceptance bar (measured ~5–13x depending on protocol).
//! 3. **Criterion sampling**: per-protocol indexed-vs-reference samples —
//!    skipped when `MLF_BENCH_CHECK=1` (CI check mode), where the
//!    determinism assert, the artifact, and the 3x floor are the point.

use criterion::{criterion_group, criterion_main, Criterion};
use mlf_bench::or_exit;
use mlf_bench::regression::{check_mode, measure_and_emit, time_best_of_three};
use mlf_protocols::{make_receiver, CoordinatedSender, ProtocolKind};
use mlf_sim::engine::{MarkerSource, NoMarkers, ReceiverController, StarConfig, StarReport};
use mlf_sim::{reference, run_star_into, SimRng, StarScratch, Tick};
use std::hint::black_box;

const RECEIVERS: usize = 100;
const LAYERS: usize = 8;
const SLOTS: u64 = 500_000;
const SEED: u64 = 0x51_66_C0_99;

enum Markers {
    None(NoMarkers),
    Coordinated(CoordinatedSender),
}

impl MarkerSource for Markers {
    fn marker(&mut self, slot: Tick, layer: usize) -> Option<usize> {
        match self {
            Markers::None(m) => m.marker(slot, layer),
            Markers::Coordinated(m) => m.marker(slot, layer),
        }
    }
}

fn paper_config() -> StarConfig {
    StarConfig::figure8(LAYERS, RECEIVERS, 0.0001, 0.05)
}

/// Controllers and marker source exactly as the Figure 8 `TrialRig` wires
/// them.
fn rig(kind: ProtocolKind) -> (Vec<Box<dyn ReceiverController>>, Markers) {
    let base = SimRng::seed_from_u64(SEED ^ 0xABCD_EF01_2345_6789);
    let controllers = (0..RECEIVERS)
        .map(|r| make_receiver(kind, base.split(1_000_000 + r as u64)))
        .collect();
    let markers = match kind {
        ProtocolKind::Coordinated => Markers::Coordinated(CoordinatedSender::new(LAYERS)),
        _ => Markers::None(NoMarkers),
    };
    (controllers, markers)
}

/// One indexed run through reusable scratch (the production trial path).
fn run_indexed(
    cfg: &StarConfig,
    kind: ProtocolKind,
    slots: u64,
    report: &mut StarReport,
    scratch: &mut StarScratch,
) {
    let (mut ctls, mut mk) = rig(kind);
    run_star_into(cfg, &mut ctls, &mut mk, slots, SEED, report, scratch);
}

fn run_reference(cfg: &StarConfig, kind: ProtocolKind, slots: u64) -> StarReport {
    let (mut ctls, mut mk) = rig(kind);
    reference::run_star(cfg, &mut ctls, &mut mk, slots, SEED)
}

fn assert_engines_agree(cfg: &StarConfig) {
    let mut report = StarReport::default();
    let mut scratch = StarScratch::default();
    for kind in ProtocolKind::ALL {
        run_indexed(cfg, kind, SLOTS, &mut report, &mut scratch);
        let reference = run_reference(cfg, kind, SLOTS);
        assert_eq!(
            report,
            reference,
            "indexed engine diverged from reference for {}",
            kind.label()
        );
    }
    println!(
        "determinism: indexed engine bitwise-identical to reference across all 3 protocols \
         at {RECEIVERS} receivers x {SLOTS} slots"
    );
}

fn bench_star_engine(c: &mut Criterion) {
    let cfg = paper_config();
    assert_engines_agree(&cfg);

    // Gated throughput: total slots across the three protocols per pass of
    // the indexed engine (scratch reused, as in a trial loop).
    let total_slots = SLOTS * ProtocolKind::ALL.len() as u64;
    let indexed = or_exit(measure_and_emit("star_engine", total_slots, || {
        let mut report = StarReport::default();
        let mut scratch = StarScratch::default();
        let mut sum = 0usize;
        for kind in ProtocolKind::ALL {
            run_indexed(&cfg, kind, SLOTS, &mut report, &mut scratch);
            sum += report.final_levels.len();
        }
        black_box(sum)
    }));
    let indexed_sps = total_slots as f64 / indexed.as_secs_f64();

    let cold = time_best_of_three(|| {
        ProtocolKind::ALL
            .iter()
            .map(|&kind| run_reference(&cfg, kind, SLOTS).final_levels.len())
            .sum()
    });
    let cold_sps = total_slots as f64 / cold.as_secs_f64();
    let speedup = indexed_sps / cold_sps;
    println!(
        "star engine: indexed {indexed_sps:.0} slots/s vs reference {cold_sps:.0} slots/s \
         ({speedup:.2}x; indexed {indexed:?}, reference {cold:?} over {total_slots} slots)"
    );
    assert!(
        speedup >= 3.0,
        "level-indexed engine must be >= 3x the reference at paper scale, got {speedup:.2}x"
    );

    if check_mode() {
        println!("MLF_BENCH_CHECK=1: skipping criterion sampling");
        return;
    }

    // Criterion samples at a reduced slot budget per protocol.
    let mut group = c.benchmark_group("sim/star_engine_paper_scale");
    let sample_slots = 50_000u64;
    for kind in ProtocolKind::ALL {
        group.bench_function(format!("indexed_{}", kind.label()), |b| {
            let mut report = StarReport::default();
            let mut scratch = StarScratch::default();
            b.iter(|| {
                run_indexed(&cfg, kind, sample_slots, &mut report, &mut scratch);
                black_box(report.shared_carried)
            })
        });
        group.bench_function(format!("reference_{}", kind.label()), |b| {
            b.iter(|| black_box(run_reference(&cfg, kind, sample_slots).shared_carried))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_star_engine);
criterion_main!(benches);
