//! Criterion benchmarks of the analytic machinery: the two-receiver Markov
//! chain (build + stationary solve), the Appendix B closed form, and the
//! fixed-layer enumerator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mlf_layering::randomjoin;
use mlf_protocols::{markov, ProtocolKind};
use std::hint::black_box;

fn bench_markov(c: &mut Criterion) {
    let mut group = c.benchmark_group("markov/two_receiver");
    for &layers in &[4usize, 6, 8, 10] {
        group.bench_with_input(BenchmarkId::new("build", layers), &layers, |b, &m| {
            b.iter(|| {
                black_box(markov::two_receiver_chain(
                    ProtocolKind::Coordinated,
                    m,
                    0.001,
                    0.03,
                    0.03,
                ))
            })
        });
        let model =
            markov::two_receiver_chain(ProtocolKind::Coordinated, layers, 0.001, 0.03, 0.03);
        group.bench_with_input(BenchmarkId::new("solve", layers), &model, |b, model| {
            b.iter(|| black_box(model.stationary_redundancy()))
        });
    }
    group.finish();
}

fn bench_appendix_b(c: &mut Criterion) {
    let rates = vec![0.1; 100];
    c.bench_function("randomjoin/analytic_100_receivers", |b| {
        b.iter(|| black_box(randomjoin::analytic_redundancy(&rates, 1.0)))
    });
    c.bench_function("randomjoin/figure5_full_series", |b| {
        let xs: Vec<usize> = (1..=100).collect();
        b.iter(|| black_box(randomjoin::figure5_series(&xs)))
    });
}

fn bench_fixed_layers(c: &mut Criterion) {
    c.bench_function("fixed_layers/section3_enumeration", |b| {
        b.iter(|| black_box(mlf_layering::fixed::section3_example(6.0)))
    });
}

criterion_group!(benches, bench_markov, bench_appendix_b, bench_fixed_layers);
criterion_main!(benches);
