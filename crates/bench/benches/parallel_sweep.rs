//! Benchmarks the PR-2 tentpole: `Scenario::sweep_par` sharding a
//! Figure-5-scale sweep (256 seeded random topologies under the Appendix B
//! random-join link-rate model) across scoped worker threads, versus the
//! serial `sweep_grid` on one workspace.
//!
//! Three things are recorded:
//!
//! 1. **Correctness, always**: the parallel points are asserted bitwise
//!    identical to the serial ones at 2, 4, and 8 threads before any timing
//!    runs — a determinism regression fails the bench run itself, which is
//!    why CI executes this bench.
//! 2. **Throughput artifact**: the serial sweep's points-per-second is
//!    written as `BENCH_parallel_sweep.json` for the CI regression gate
//!    (`bench_gate` fails the job on a >30% drop below the committed
//!    baseline in `crates/bench/baselines/`).
//! 3. **Speedup**: a hand-timed serial-vs-parallel comparison over the full
//!    256-seed sweep, printed as `parallel speedup at N threads: X.XXx`.
//!    On multi-core hardware the 4-thread sweep runs ≥ 2x faster than
//!    serial; on a single-core container the ratio degrades to ~1x (the
//!    report prints the detected parallelism so the number can be read in
//!    context). Skipped in `MLF_BENCH_CHECK=1` mode, along with criterion
//!    sampling.

use criterion::{criterion_group, criterion_main, Criterion};
use mlf_bench::or_exit;
use mlf_bench::regression::{check_mode, measure_and_emit, time_best_of_three};
use mlf_core::allocator::MultiRate;
use mlf_core::LinkRateModel;
use mlf_scenario::{LinkRates, Scenario, SweepGrid};
use std::hint::black_box;

/// Figure-5 scale: 30-node trees, 8 sessions, up to 5 receivers each, all
/// sessions under the random-join redundancy model.
fn fig5_scale_scenario() -> Scenario {
    Scenario::builder()
        .label("fig5-scale-parallel-sweep")
        .random_networks(30, 8, 5)
        .link_rates(LinkRates::Uniform(LinkRateModel::RandomJoin { sigma: 6.0 }))
        .allocator(MultiRate::new())
        .build()
        .expect("valid scenario")
}

const FULL_SWEEP_SEEDS: u64 = 256;

fn assert_parallel_matches_serial(scenario: &mut Scenario) {
    let grid = SweepGrid::seeds(0..FULL_SWEEP_SEEDS);
    let serial = scenario.sweep_grid(&grid);
    for threads in [2usize, 4, 8] {
        let parallel = scenario.sweep_grid_par(&grid, threads);
        assert_eq!(
            serial, parallel,
            "sweep_par diverged from serial at {threads} threads"
        );
    }
    println!(
        "determinism: parallel sweep bitwise-identical to serial over {FULL_SWEEP_SEEDS} seeds \
         at 2/4/8 threads"
    );
}

/// Time the serial sweep and write `BENCH_parallel_sweep.json` for the CI
/// regression gate (serial points-per-second tracks per-solve cost without
/// parallel scheduling noise).
fn emit_artifact(scenario: &Scenario) -> std::time::Duration {
    or_exit(measure_and_emit("parallel_sweep", FULL_SWEEP_SEEDS, || {
        scenario.sweep_par(0..FULL_SWEEP_SEEDS, 1).points.len()
    }))
}

fn report_wall_clock_speedup(scenario: &Scenario, serial: std::time::Duration) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "wall-clock over {FULL_SWEEP_SEEDS} seeds (available parallelism {cores}): \
         serial {serial:?}"
    );
    for threads in [2usize, 4] {
        let par = time_best_of_three(|| {
            scenario
                .sweep_par(0..FULL_SWEEP_SEEDS, threads)
                .points
                .len()
        });
        println!(
            "  parallel speedup at {threads} threads: {:.2}x ({par:?})",
            serial.as_secs_f64() / par.as_secs_f64()
        );
    }
}

fn bench_parallel_sweep(c: &mut Criterion) {
    let mut scenario = fig5_scale_scenario();
    assert_parallel_matches_serial(&mut scenario);
    let serial = emit_artifact(&scenario);
    if check_mode() {
        println!("MLF_BENCH_CHECK=1: skipping speedup report and criterion sampling");
        return;
    }
    report_wall_clock_speedup(&scenario, serial);

    // Criterion samples on a smaller grid so the measured windows stay
    // short; the full-size comparison above is the headline number.
    let mut group = c.benchmark_group("scenario/fig5_scale_sweep_64seeds");
    group.bench_function("serial", |b| {
        b.iter(|| black_box(scenario.sweep_par(0..64, 1).points.len()))
    });
    for threads in [2usize, 4] {
        group.bench_function(format!("par_{threads}_threads"), |b| {
            b.iter(|| black_box(scenario.sweep_par(0..64, threads).points.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_sweep);
criterion_main!(benches);
