//! Section 3 fixed-layer regenerator: enumerate the feasible allocations of
//! the single-link two-session example and show none is max-min fair.
//!
//! `cargo run -p mlf-bench --bin fig_fixed_layers [--capacity 6]`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_layering::fixed;

const KNOBS: &[cli::Knob] = &[knob("capacity", "6", "capacity of the single shared link")];

fn main() {
    let args = Args::for_binary(
        "fig_fixed_layers",
        "Section 3 fixed-layer example: no max-min fair allocation exists",
        KNOBS,
    );
    let capacity: f64 = or_exit(args.get("capacity", 6.0));

    let analysis = fixed::section3_example(capacity);
    println!(
        "Single link of capacity {capacity}; S1 layers 3 x {:.2}, S2 layers 2 x {:.2}\n",
        capacity / 3.0,
        capacity / 2.0
    );
    let mut t = Table::new(["a1", "a2", "max-min fair?"]);
    for alloc in &analysis.feasible {
        let a1 = alloc.rates()[0][0];
        let a2 = alloc.rates()[1][0];
        let is_mm = fixed::is_max_min_within(alloc, &analysis.feasible);
        t.row([format!("{a1:.2}"), format!("{a2:.2}"), format!("{is_mm}")]);
    }
    print!("{t}");
    println!(
        "\nfeasible allocations: {} (paper: 7 at c = 6)",
        analysis.feasible.len()
    );
    match &analysis.max_min {
        None => println!("max-min fair allocation: NONE EXISTS (paper: none exists)"),
        Some(a) => println!("max-min fair allocation: {:?} (unexpected!)", a.rates()),
    }

    let path = write_csv(".", "fig_fixed_layers", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
