//! Section 5 ablation (extension beyond the paper's experiments): the paper
//! *predicts* that join/leave latency increases redundancy ("a link
//! continues to receive at the rate prior to the leave, until the leave
//! takes effect, while the receiver's rate reduces immediately"). This
//! bench quantifies the prediction by sweeping the prune latency — driven
//! through `ProtocolSweepGrid`'s latency axis, so the whole ablation shards
//! across worker threads with bitwise-deterministic output, and each point
//! surfaces the *per-receiver* goodput spread (min/max/σ across receivers),
//! not just the mean.
//!
//! `cargo run --release -p mlf-bench --bin ablation_latency
//!    [--trials 5] [--packets 30000] [--receivers 30] [--threads 0]`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_protocols::{ExperimentParams, ProtocolKind};
use mlf_scenario::{ProtocolScenario, ProtocolSweepGrid};

const KNOBS: &[cli::Knob] = &[
    knob("trials", "5", "trials per point"),
    knob("packets", "30000", "base-layer packets per trial"),
    knob("receivers", "30", "receivers on the star"),
    knob(
        "threads",
        "0",
        "sweep worker threads (0 = available parallelism)",
    ),
];

fn main() {
    let args = Args::for_binary(
        "ablation_latency",
        "Leave-latency ablation: prune latency vs redundancy (Section 5 prediction)",
        KNOBS,
    );
    let trials: usize = or_exit(args.get("trials", 5));
    let packets: u64 = or_exit(args.get("packets", 30_000));
    let receivers: usize = or_exit(args.get("receivers", 30));
    let threads: usize = or_exit(args.get("threads", 0));

    let template = ExperimentParams {
        layers: 8,
        receivers,
        shared_loss: 0.0001,
        independent_loss: 0.03,
        packets,
        trials,
        seed: 0xAB1A7E,
        join_latency: 0,
        leave_latency: 0,
    }
    .validated()
    .expect("static losses are valid");
    let scenario = ProtocolScenario::builder()
        .label("ablation_latency")
        .template(template)
        .build()
        .expect("valid template");
    let latencies = [0u64, 16, 64, 256, 1024, 4096];
    let grid = ProtocolSweepGrid::independent_losses([template.independent_loss])
        .with_kinds([ProtocolKind::Deterministic])
        .with_latencies(latencies.iter().map(|&l| (0, l)));

    println!(
        "Leave-latency ablation: Deterministic protocol, shared loss 1e-4, independent 0.03\n"
    );
    let report = scenario.sweep_par(&grid, threads);
    let mut t = Table::new([
        "leave latency (slots)",
        "redundancy",
        "ci95",
        "mean level",
        "goodput min",
        "goodput max",
        "goodput stddev",
    ]);
    for point in &report.points {
        let spread = point.receiver_goodput();
        t.row([
            point.leave_latency.to_string(),
            format!("{:.3}", point.outcome.redundancy.mean()),
            format!("{:.3}", point.outcome.redundancy.ci95_half_width()),
            format!("{:.2}", point.outcome.mean_level.mean()),
            format!("{:.4}", spread.min()),
            format!("{:.4}", spread.max()),
            format!("{:.4}", spread.std_dev()),
        ]);
    }
    print!("{t}");
    println!("\nRedundancy grows with prune latency, confirming the Section 5 prediction.");

    let path = write_csv(".", "ablation_latency", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
