//! Section 5 ablation (extension beyond the paper's experiments): the paper
//! *predicts* that join/leave latency increases redundancy ("a link
//! continues to receive at the rate prior to the leave, until the leave
//! takes effect, while the receiver's rate reduces immediately"). This
//! bench quantifies the prediction by sweeping the prune latency.
//!
//! `cargo run --release -p mlf-bench --bin ablation_latency
//!    [--trials 5] [--packets 30000] [--receivers 30]`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_protocols::{experiment, ExperimentParams, ProtocolKind};

const KNOBS: &[cli::Knob] = &[
    knob("trials", "5", "trials per point"),
    knob("packets", "30000", "base-layer packets per trial"),
    knob("receivers", "30", "receivers on the star"),
];

fn main() {
    let args = Args::for_binary(
        "ablation_latency",
        "Leave-latency ablation: prune latency vs redundancy (Section 5 prediction)",
        KNOBS,
    );
    let trials: usize = or_exit(args.get("trials", 5));
    let packets: u64 = or_exit(args.get("packets", 30_000));
    let receivers: usize = or_exit(args.get("receivers", 30));

    println!(
        "Leave-latency ablation: Deterministic protocol, shared loss 1e-4, independent 0.03\n"
    );
    let mut t = Table::new(["leave latency (slots)", "redundancy", "ci95", "mean level"]);
    for latency in [0u64, 16, 64, 256, 1024, 4096] {
        let params = ExperimentParams {
            layers: 8,
            receivers,
            shared_loss: 0.0001,
            independent_loss: 0.03,
            packets,
            trials,
            seed: 0xAB1A7E,
            join_latency: 0,
            leave_latency: latency,
        };
        let out = experiment::run_point(ProtocolKind::Deterministic, &params);
        t.row([
            latency.to_string(),
            format!("{:.3}", out.redundancy.mean()),
            format!("{:.3}", out.redundancy.ci95_half_width()),
            format!("{:.2}", out.mean_level.mean()),
        ]);
    }
    print!("{t}");
    println!("\nRedundancy grows with prune latency, confirming the Section 5 prediction.");

    let path = write_csv(".", "ablation_latency", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
