//! Figure 2 regenerator: the single-rate failure example. Prints the
//! single-rate max-min allocation, the multi-rate replacement, which of the
//! four fairness properties each satisfies, and the Lemma 3 ordering —
//! two `Scenario`s over the same topology, differing only in allocator.
//!
//! `cargo run -p mlf-bench --bin fig2_single_rate`

use mlf_bench::{write_csv, Table};
use mlf_core::allocator::{Hybrid, MultiRate};
use mlf_core::is_strictly_min_unfavorable;
use mlf_net::paper;
use mlf_scenario::Scenario;

fn main() {
    let example = paper::figure2();
    // The declared regime (S1 single-rate) vs the multi-rate replacement:
    // one network, two allocators.
    let mut declared = Scenario::builder()
        .label("figure2-declared")
        .network(example.network.clone())
        .allocator(Hybrid::as_declared())
        .build()
        .expect("figure 2 scenario");
    let mut replaced = Scenario::builder()
        .label("figure2-multi-rate")
        .network(example.network)
        .allocator(MultiRate::new())
        .build()
        .expect("figure 2 scenario");

    let single_report = declared.run();
    let multi_report = replaced.run();
    let a_single = &single_report.solution.allocation;
    let a_multi = &multi_report.solution.allocation;
    let r_single = single_report.fairness.expect("audited");
    let r_multi = multi_report.fairness.expect("audited");

    println!("Figure 2: single-rate S1 vs its multi-rate replacement\n");
    let mut t = Table::new(["receiver", "single-rate", "multi-rate"]);
    for (r, a) in a_single.iter() {
        t.row([
            format!("{r}"),
            format!("{a:.2}"),
            format!("{:.2}", a_multi.rate(r)),
        ]);
    }
    print!("{t}");

    println!("\nproperty                         single-rate  multi-rate");
    for (name, s, m) in [
        (
            "1 fully-utilized-receiver-fair",
            r_single.fully_utilized_receiver_fair(),
            r_multi.fully_utilized_receiver_fair(),
        ),
        (
            "2 same-path-receiver-fair",
            r_single.same_path_receiver_fair(),
            r_multi.same_path_receiver_fair(),
        ),
        (
            "3 per-receiver-link-fair",
            r_single.per_receiver_link_fair(),
            r_multi.per_receiver_link_fair(),
        ),
        (
            "4 per-session-link-fair",
            r_single.per_session_link_fair(),
            r_multi.per_session_link_fair(),
        ),
    ] {
        println!("  {name:<32} {s:<12} {m}");
    }
    println!("\npaper: single-rate holds only property 4; multi-rate holds all four.");
    println!(
        "Lemma 3 ordering (single <m multi): {}",
        is_strictly_min_unfavorable(&a_single.ordered_vector(), &a_multi.ordered_vector())
    );

    let path = write_csv(".", "fig2_single_rate", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
