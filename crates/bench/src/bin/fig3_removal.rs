//! Figure 3 regenerator: receiver removal moves max-min fair rates in
//! *either* direction. Prints both example networks before/after removing
//! `r3,2` next to the paper's values. One allocator + one workspace serve
//! all four solves.
//!
//! `cargo run -p mlf-bench --bin fig3_removal`

use mlf_bench::{write_csv, Table};
use mlf_core::allocator::{Allocator, Hybrid, SolverWorkspace};
use mlf_net::paper::{self, RemovalExample};

fn main() {
    println!("Figure 3: the effect of removing receiver r3,2\n");
    let mut ws = SolverWorkspace::new();
    run("3(a) intra-session DECREASE", paper::figure3a(), &mut ws);
    println!();
    run("3(b) intra-session INCREASE", paper::figure3b(), &mut ws);
}

fn run(title: &str, ex: RemovalExample, ws: &mut SolverWorkspace) {
    let allocator = Hybrid::as_declared();
    let before = allocator.solve(&ex.network, ws).allocation;
    let after_net = ex.network.without_receiver(ex.removed).expect("removable");
    let after = allocator.solve(&after_net, ws).allocation;

    println!("-- Figure {title} --");
    let mut t = Table::new(["receiver", "before", "after", "paper before", "paper after"]);
    for (r, b) in before.iter() {
        let removed = r == ex.removed;
        let a = if removed {
            "-".to_string()
        } else {
            // Indices shift after removal within the same session.
            let idx = if r.session == ex.removed.session && r.index > ex.removed.index {
                r.index - 1
            } else {
                r.index
            };
            format!("{:.0}", after.rates()[r.session.0][idx])
        };
        let pb = format!("{:.0}", ex.before[r.session.0][r.index]);
        let pa = if removed {
            "-".to_string()
        } else {
            let idx = if r.session == ex.removed.session && r.index > ex.removed.index {
                r.index - 1
            } else {
                r.index
            };
            format!("{:.0}", ex.after[r.session.0][idx])
        };
        t.row([format!("{r}"), format!("{b:.0}"), a, pb, pa]);
    }
    print!("{t}");
    let name = if title.contains("(a)") {
        "fig3a_removal"
    } else {
        "fig3b_removal"
    };
    let path = write_csv(".", name, &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
