//! Burst-loss ablation (extension beyond the paper): the paper's Bernoulli
//! loss model deliberately ignores temporal loss correlation (it cites the
//! Yajnik et al. measurements as justification). Here we swap each fanout
//! link's Bernoulli process for a Gilbert–Elliott process with the *same
//! average loss rate* and growing burst length, and measure how much the
//! redundancy of the protocols moves.
//!
//! `cargo run --release -p mlf-bench --bin ablation_burst
//!    [--trials 5] [--packets 30000] [--receivers 30] [--loss 0.03]`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_protocols::{make_receiver, CoordinatedSender, ProtocolKind};
use mlf_sim::{
    run_star, LossProcess, NoMarkers, ReceiverController, RunningStats, SimRng, StarConfig,
};

const KNOBS: &[cli::Knob] = &[
    knob("trials", "5", "trials per point"),
    knob("packets", "30000", "base-layer packets per trial"),
    knob("receivers", "30", "receivers on the star"),
    knob("loss", "0.03", "average independent loss rate"),
];

fn main() {
    let args = Args::for_binary(
        "ablation_burst",
        "Burst-loss ablation: Gilbert-Elliott vs Bernoulli at equal average loss",
        KNOBS,
    );
    let trials: usize = or_exit(args.get("trials", 5));
    let packets: u64 = or_exit(args.get("packets", 30_000));
    let receivers: usize = or_exit(args.get("receivers", 30));
    let loss: f64 = or_exit(args.get("loss", 0.03));

    println!(
        "Burst-loss ablation: average independent loss {loss}, shared 1e-4, \
         {receivers} receivers, {packets} packets x {trials} trials\n"
    );
    let mut t = Table::new([
        "mean burst (pkts)",
        "Uncoordinated",
        "Deterministic",
        "Coordinated",
    ]);
    for burst in [1.0f64, 2.0, 4.0, 8.0, 16.0] {
        let mut cells = vec![format!("{burst:.0}")];
        for kind in ProtocolKind::ALL {
            let mut stats = RunningStats::new();
            for trial in 0..trials {
                stats.push(run_once(
                    kind,
                    receivers,
                    loss,
                    burst,
                    packets,
                    trial as u64,
                ));
            }
            cells.push(format!("{:.3}", stats.mean()));
        }
        t.row(cells);
    }
    print!("{t}");
    println!("\nMeasured effect: burstier *independent* loss moderately increases");
    println!("redundancy — a receiver inside a burst drops several layers in");
    println!("quick succession while its peers stay high, widening the level");
    println!("spread the shared link must cover. The paper's Bernoulli model is");
    println!("thus mildly optimistic about redundancy under bursty last-mile");
    println!("loss, though all protocols stay within the paper's < 5 envelope");
    println!("and coordination still helps at every burst length.");

    let path = write_csv(".", "ablation_burst", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}

fn run_once(
    kind: ProtocolKind,
    receivers: usize,
    loss: f64,
    burst: f64,
    packets: u64,
    trial: u64,
) -> f64 {
    let layers = 8;
    let fanout = if burst <= 1.0 {
        LossProcess::bernoulli(loss)
    } else {
        LossProcess::bursty_with_average(loss, burst)
    };
    let mut cfg = StarConfig::figure8(layers, receivers, 0.0001, 0.0);
    cfg.fanout_loss = vec![fanout; receivers];
    let base = SimRng::seed_from_u64(0xB065_7000 + trial);
    let mut controllers: Vec<Box<dyn ReceiverController>> = (0..receivers)
        .map(|r| make_receiver(kind, base.split(r as u64)))
        .collect();
    let report = match kind {
        ProtocolKind::Coordinated => {
            let mut sender = CoordinatedSender::new(layers);
            run_star(&cfg, &mut controllers, &mut sender, packets, 0x2B + trial)
        }
        _ => run_star(
            &cfg,
            &mut controllers,
            &mut NoMarkers,
            packets,
            0x2B + trial,
        ),
    };
    report.shared_redundancy().unwrap_or(1.0)
}
