//! Tree-topology extension: run the Section 4 protocols on a binary
//! multicast tree (not just the paper's star) and report redundancy per
//! tree level. Interior links whose subtrees straddle independent loss
//! accumulate redundancy; links deep in the tree, serving few receivers,
//! stay near 1 — the hierarchy-aware version of the paper's star result.
//!
//! `cargo run --release -p mlf-bench --bin ext_tree_protocols
//!    [--depth 3] [--loss 0.03] [--packets 40000] [--trials 3]`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_net::{LinkId, Network, Session};
use mlf_protocols::{make_receiver, CoordinatedSender, ProtocolKind};
use mlf_sim::{
    tree::{run_tree_expect, TreeConfig},
    LossProcess, NoMarkers, ReceiverController, RunningStats, SimRng,
};

const KNOBS: &[cli::Knob] = &[
    knob("depth", "3", "depth of the binary multicast tree"),
    knob("loss", "0.03", "per-link Bernoulli loss rate"),
    knob("packets", "40000", "base-layer packets per trial"),
    knob("trials", "3", "trials per protocol"),
];

fn main() {
    let args = Args::for_binary(
        "ext_tree_protocols",
        "Tree-topology extension: per-level protocol redundancy",
        KNOBS,
    );
    let depth: usize = or_exit(args.get("depth", 3));
    let loss: f64 = or_exit(args.get("loss", 0.03));
    let packets: u64 = or_exit(args.get("packets", 40_000));
    let trials: usize = or_exit(args.get("trials", 3));

    let (net, level_of_link) = binary_tree_session(depth);
    let leaves = net.session(mlf_net::SessionId(0)).receivers.len();
    println!(
        "Binary tree of depth {depth} ({leaves} receivers), per-link loss {loss}, \
         {packets} packets x {trials} trials\n"
    );

    let mut t = Table::new([
        "tree level",
        "Uncoordinated",
        "Deterministic",
        "Coordinated",
    ]);
    let levels = depth;
    let mut per_level: Vec<Vec<RunningStats>> = vec![vec![RunningStats::new(); 3]; levels];
    for (p_idx, kind) in ProtocolKind::ALL.into_iter().enumerate() {
        for trial in 0..trials {
            let report = run_once(&net, kind, loss, packets, trial as u64);
            for j in 0..net.link_count() {
                if let Some(r) = report.link_redundancy(LinkId(j)) {
                    per_level[level_of_link[j] - 1][p_idx].push(r);
                }
            }
        }
    }
    for (lvl, stats) in per_level.iter().enumerate() {
        t.row([
            format!("{} (root side)", lvl + 1),
            format!("{:.3}", stats[0].mean()),
            format!("{:.3}", stats[1].mean()),
            format!("{:.3}", stats[2].mean()),
        ]);
    }
    print!("{t}");
    println!("\nRedundancy is largest on root-side links (subtrees straddling");
    println!("many independent loss processes) and decays toward the leaves;");
    println!("coordination helps most exactly where redundancy concentrates.");

    let path = write_csv(".", "ext_tree_protocols", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}

/// A complete binary tree of the given depth with one multi-rate session
/// from the root to every leaf. Returns the network and each link's tree
/// level (1 = root-adjacent).
fn binary_tree_session(depth: usize) -> (Network, Vec<usize>) {
    let mut g = mlf_net::Graph::new();
    let root = g.add_node();
    let mut frontier = vec![root];
    let mut level_of_link = Vec::new();
    for level in 1..=depth {
        let mut next = Vec::new();
        for &p in &frontier {
            for _ in 0..2 {
                let c = g.add_node();
                g.add_link(p, c, 1e6).unwrap();
                level_of_link.push(level);
                next.push(c);
            }
        }
        frontier = next;
    }
    let net = Network::new(g, vec![Session::multi_rate(root, frontier)]).unwrap();
    (net, level_of_link)
}

fn run_once(
    net: &Network,
    kind: ProtocolKind,
    loss: f64,
    packets: u64,
    trial: u64,
) -> mlf_sim::TreeReport {
    let layers = 8;
    let cfg = TreeConfig {
        layer_rates: (0..layers)
            .map(|i| {
                if i == 0 {
                    1.0
                } else {
                    (1u64 << (i - 1)) as f64
                }
            })
            .collect(),
        link_loss: vec![LossProcess::bernoulli(loss); net.link_count()],
        join_latency: 0,
        leave_latency: 0,
    };
    let n = net.session(mlf_net::SessionId(0)).receivers.len();
    let base = SimRng::seed_from_u64(0x7EEE + trial);
    let mut controllers: Vec<Box<dyn ReceiverController>> = (0..n)
        .map(|r| make_receiver(kind, base.split(r as u64)))
        .collect();
    match kind {
        ProtocolKind::Coordinated => {
            let mut sender = CoordinatedSender::new(layers);
            run_tree_expect(
                net,
                &cfg,
                &mut controllers,
                &mut sender,
                packets,
                0x11 + trial,
            )
        }
        _ => run_tree_expect(
            net,
            &cfg,
            &mut controllers,
            &mut NoMarkers,
            packets,
            0x11 + trial,
        ),
    }
}
