//! Figure 6 regenerator: normalized fair rate vs redundancy for the four
//! `m/n` curves, from the closed form *and* cross-checked against the
//! allocator on a concrete bottleneck network.
//!
//! `cargo run -p mlf-bench --bin fig6_fair_rate_impact [--steps 19]`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_core::{redundancy, LinkRateConfig, LinkRateModel};
use mlf_net::{Graph, Network, Session};
use mlf_scenario::{LinkRates, Scenario};

const FRACTIONS: [f64; 4] = [0.01, 0.05, 0.1, 1.0];
const KNOBS: &[cli::Knob] = &[knob(
    "steps",
    "19",
    "number of redundancy steps on the v axis",
)];

fn main() {
    let args = Args::for_binary(
        "fig6_fair_rate_impact",
        "Figure 6 regenerator: normalized fair rate vs redundancy",
        KNOBS,
    );
    let steps: usize = or_exit(args.get("steps", 19));

    println!("Figure 6: normalized fair rate vs redundancy v\n");
    let mut t = Table::new(["v", "m/n=0.01", "m/n=0.05", "m/n=0.1", "m/n=1"]);
    for row in redundancy::figure6_series(&FRACTIONS, 10.0, steps) {
        t.numeric_row(format!("{:.1}", row.v), &row.normalized_rates, 4);
    }
    print!("{t}");

    // Allocator cross-check at m/n = 0.1 (n = 20 sessions, m = 2), v = 4.
    let (net, cfg) = bottleneck(100.0, 20, 2, 4.0);
    let mut scenario = Scenario::builder()
        .label("figure6-cross-check")
        .network(net)
        .link_rates(LinkRates::Explicit(cfg))
        .check_properties(false)
        .build()
        .expect("figure 6 scenario");
    let report = scenario.run();
    let measured = report.metrics.min_rate / (100.0 / 20.0);
    let predicted = redundancy::normalized_fair_rate(0.1, 4.0);
    println!(
        "\nallocator cross-check (n=20, m=2, v=4): measured {measured:.4}, closed form {predicted:.4}"
    );
    assert!((measured - predicted).abs() < 1e-9);

    let path = write_csv(".", "fig6_fair_rate_impact", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}

/// `n` sessions on a single bottleneck, `m` of them 2-receiver multi-rate
/// sessions with redundancy `v`.
fn bottleneck(capacity: f64, n: usize, m: usize, v: f64) -> (Network, LinkRateConfig) {
    let mut g = Graph::new();
    let src = g.add_node();
    let hub = g.add_node();
    g.add_link(src, hub, capacity).unwrap();
    let mut sessions = Vec::new();
    for i in 0..n {
        if i < m {
            let a = g.add_node();
            let b = g.add_node();
            g.add_link(hub, a, capacity * 10.0).unwrap();
            g.add_link(hub, b, capacity * 10.0).unwrap();
            sessions.push(Session::multi_rate(src, vec![a, b]));
        } else {
            sessions.push(Session::unicast(src, hub));
        }
    }
    let net = Network::new(g, sessions).unwrap();
    let mut cfg = LinkRateConfig::efficient(n);
    for i in 0..m {
        cfg = cfg.with_session(i, LinkRateModel::Scaled(v));
    }
    (net, cfg)
}
