//! Figure 4 regenerator: redundancy 2 on the shared link breaks the
//! session-perspective fairness properties while the receiver-perspective
//! ones survive. Two `Scenario`s: the redundant link-rate config vs the
//! efficient counterfactual.
//!
//! `cargo run -p mlf-bench --bin fig4_redundancy`

use mlf_bench::{write_csv, Table};
use mlf_core::{redundancy, LinkRateConfig, LinkRateModel};
use mlf_net::{paper, LinkId, SessionId};
use mlf_scenario::{LinkRates, Scenario};

fn main() {
    let ex = paper::figure4();
    let redundant = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Scaled(2.0));

    // The scenario's link-rate config drives both the solve and the
    // property audit — one source of truth.
    let mut scenario_red = Scenario::builder()
        .label("figure4-redundant")
        .network(ex.network.clone())
        .link_rates(LinkRates::Explicit(redundant.clone()))
        .build()
        .expect("figure 4 scenario");
    let mut scenario_eff = Scenario::builder()
        .label("figure4-efficient")
        .network(ex.network)
        .build()
        .expect("figure 4 scenario");

    let report_red = scenario_red.run();
    let report_eff = scenario_eff.run();
    let net = scenario_red.network().expect("fixed network");
    let a_red = &report_red.solution.allocation;
    let a_eff = &report_eff.solution.allocation;

    println!("Figure 4: S1 with redundancy 2 on shared links\n");
    let mut t = Table::new(["receiver", "redundant v=2", "efficient v=1"]);
    for (r, a) in a_red.iter() {
        t.row([
            format!("{r}"),
            format!("{a:.2}"),
            format!("{:.2}", a_eff.rate(r)),
        ]);
    }
    print!("{t}");

    println!("\nShared link l4 under v=2:");
    println!(
        "  u_1,4 = {:.0}, u_2,4 = {:.0}, capacity {:.0}, redundancy of S1 = {:.1}",
        a_red.session_link_rate(net, &redundant, LinkId(3), SessionId(0)),
        a_red.session_link_rate(net, &redundant, LinkId(3), SessionId(1)),
        net.graph().capacity(LinkId(3)),
        redundancy(net, &redundant, a_red, LinkId(3), SessionId(0)).unwrap(),
    );

    let rep = report_red.fairness.expect("audited");
    println!("\nProperties under redundancy 2:");
    println!(
        "  receiver-perspective (1, 2): {} {}   <- survive, as the paper notes",
        rep.fully_utilized_receiver_fair(),
        rep.same_path_receiver_fair()
    );
    println!(
        "  session-perspective (3, 4):  {} {}   <- fail for S2 (paper: fail)",
        rep.per_receiver_link_fair(),
        rep.per_session_link_fair()
    );

    println!(
        "\nEfficient counterfactual holds all four properties: {}",
        report_eff.fairness.expect("audited").all_hold()
    );

    let path = write_csv(".", "fig4_redundancy", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
