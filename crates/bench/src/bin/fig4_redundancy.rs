//! Figure 4 regenerator: redundancy 2 on the shared link breaks the
//! session-perspective fairness properties while the receiver-perspective
//! ones survive.
//!
//! `cargo run -p mlf-bench --bin fig4_redundancy`

use mlf_bench::{write_csv, Table};
use mlf_core::{
    max_min_allocation, max_min_allocation_with, properties, redundancy, LinkRateConfig,
    LinkRateModel,
};
use mlf_net::{paper, LinkId, SessionId};

fn main() {
    let ex = paper::figure4();
    let net = &ex.network;
    let redundant = LinkRateConfig::efficient(2).with_session(0, LinkRateModel::Scaled(2.0));
    let efficient = LinkRateConfig::efficient(2);

    let a_red = max_min_allocation_with(net, &redundant);
    let a_eff = max_min_allocation(net);

    println!("Figure 4: S1 with redundancy 2 on shared links\n");
    let mut t = Table::new(["receiver", "redundant v=2", "efficient v=1"]);
    for (r, a) in a_red.iter() {
        t.row([
            format!("{r}"),
            format!("{a:.2}"),
            format!("{:.2}", a_eff.rate(r)),
        ]);
    }
    print!("{t}");

    println!("\nShared link l4 under v=2:");
    println!(
        "  u_1,4 = {:.0}, u_2,4 = {:.0}, capacity {:.0}, redundancy of S1 = {:.1}",
        a_red.session_link_rate(net, &redundant, LinkId(3), SessionId(0)),
        a_red.session_link_rate(net, &redundant, LinkId(3), SessionId(1)),
        net.graph().capacity(LinkId(3)),
        redundancy(net, &redundant, &a_red, LinkId(3), SessionId(0)).unwrap(),
    );

    let rep = properties::check_all(net, &redundant, &a_red);
    println!("\nProperties under redundancy 2:");
    println!(
        "  receiver-perspective (1, 2): {} {}   <- survive, as the paper notes",
        rep.fully_utilized_receiver_fair(),
        rep.same_path_receiver_fair()
    );
    println!(
        "  session-perspective (3, 4):  {} {}   <- fail for S2 (paper: fail)",
        rep.per_receiver_link_fair(),
        rep.per_session_link_fair()
    );

    let rep_eff = properties::check_all(net, &efficient, &a_eff);
    println!(
        "\nEfficient counterfactual holds all four properties: {}",
        rep_eff.all_hold()
    );

    let path = write_csv(".", "fig4_redundancy", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
