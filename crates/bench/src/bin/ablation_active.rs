//! Active-node ablation (Section 5 extension): compare the four
//! coordination designs — Uncoordinated, Deterministic, Coordinated
//! (sender markers), and Active-node (hub-delegated control) — across the
//! Figure 8 independent-loss axis, reporting redundancy *and* mean goodput
//! so the autonomy-vs-efficiency trade-off is visible.
//!
//! `cargo run --release -p mlf-bench --bin ablation_active
//!    [--trials 5] [--packets 30000] [--receivers 30]`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_protocols::{active, experiment, ExperimentParams, ProtocolKind};
use mlf_sim::RunningStats;

const KNOBS: &[cli::Knob] = &[
    knob("trials", "5", "trials per point"),
    knob("packets", "30000", "base-layer packets per trial"),
    knob("receivers", "30", "receivers on the star"),
];

fn main() {
    let args = Args::for_binary(
        "ablation_active",
        "Active-node ablation: hub-delegated control vs the paper's protocols",
        KNOBS,
    );
    let trials: usize = or_exit(args.get("trials", 5));
    let packets: u64 = or_exit(args.get("packets", 30_000));
    let receivers: usize = or_exit(args.get("receivers", 30));

    println!(
        "Active-node ablation: {receivers} receivers, shared loss 1e-4, \
         {packets} packets x {trials} trials\n"
    );
    let mut t = Table::new([
        "indep loss",
        "Uncoordinated",
        "Deterministic",
        "Coordinated",
        "ActiveNode",
        "ActiveNode goodput",
        "Coordinated goodput",
    ]);
    for loss in [0.01f64, 0.03, 0.05, 0.08, 0.1] {
        let params = ExperimentParams {
            layers: 8,
            receivers,
            shared_loss: 0.0001,
            independent_loss: loss,
            packets,
            trials,
            seed: 0xAC71,
            join_latency: 0,
            leave_latency: 0,
        };
        let mut cells = vec![format!("{loss:.2}")];
        let mut coord_goodput = 0.0;
        for kind in ProtocolKind::ALL {
            let out = experiment::run_point(kind, &params);
            cells.push(format!("{:.3}", out.redundancy.mean()));
            if kind == ProtocolKind::Coordinated {
                coord_goodput = out.goodput.mean();
            }
        }
        // Active-node runs.
        let mut red = RunningStats::new();
        let mut goodput = RunningStats::new();
        for trial in 0..trials {
            let report = active::run_trial_active(&params, trial);
            if let Some(r) = report.shared_redundancy() {
                red.push(r);
            }
            goodput.push((0..receivers).map(|r| report.goodput(r)).sum::<f64>() / receivers as f64);
        }
        cells.push(format!("{:.3}", red.mean()));
        cells.push(format!("{:.4}", goodput.mean()));
        cells.push(format!("{coord_goodput:.4}"));
        t.row(cells);
    }
    print!("{t}");
    println!("\nActive-node delegation pins redundancy at ~1 (the paper's");
    println!("feasibility claim), at the cost of subtree-uniform rates: its");
    println!("goodput tracks the representative receiver, not each receiver's");
    println!("own bottleneck — single-rate coupling reborn one hop down.");

    let path = write_csv(".", "ablation_active", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
