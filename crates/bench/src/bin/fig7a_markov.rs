//! Figure 7(a) regenerator: exact Markov analysis of the two-receiver star.
//! Sweeps how a fixed end-to-end loss budget is split between shared and
//! independent loss, reproducing the paper's analytic headline: redundancy
//! is highest when receivers experience the same (independent) end-to-end
//! loss rates.
//!
//! `cargo run -p mlf-bench --bin fig7a_markov [--layers 8] [--loss 0.04]`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_protocols::{markov, ProtocolKind};

const KNOBS: &[cli::Knob] = &[
    knob("layers", "8", "number of layers in the ladder"),
    knob("loss", "0.04", "total per-receiver loss budget"),
];

fn main() {
    let args = Args::for_binary(
        "fig7a_markov",
        "Figure 7(a) regenerator: exact two-receiver Markov analysis",
        KNOBS,
    );
    let layers: usize = or_exit(args.get("layers", 8));
    let loss: f64 = or_exit(args.get("loss", 0.04));

    println!("Two-receiver star, {layers} layers, total per-receiver loss ≈ {loss}\n");

    // Sweep 1: shared vs independent split of the loss budget.
    println!("-- shared/independent split of the loss budget --\n");
    let mut t = Table::new([
        "shared",
        "independent",
        "Uncoordinated",
        "Deterministic",
        "Coordinated",
    ]);
    for share in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let p_s = loss * share;
        let p_i = loss * (1.0 - share);
        let reds: Vec<f64> = ProtocolKind::ALL
            .iter()
            .map(|&k| markov::two_receiver_chain(k, layers, p_s, p_i, p_i).stationary_redundancy())
            .collect();
        let mut cells = vec![format!("{p_s:.3}"), format!("{p_i:.3}")];
        cells.extend(reds.iter().map(|r| format!("{r:.4}")));
        t.row(cells);
    }
    print!("{t}");
    println!("\n(shared loss synchronizes leaves -> lower redundancy)\n");

    // Sweep 2: asymmetry between the two receivers' independent losses.
    println!("-- asymmetric independent loss, fixed total --\n");
    let mut t2 = Table::new(["p1", "p2", "Uncoordinated", "Coordinated"]);
    for split in [0.5, 0.4, 0.3, 0.2, 0.1] {
        let p1 = 2.0 * loss * split;
        let p2 = 2.0 * loss * (1.0 - split);
        let u = markov::two_receiver_chain(ProtocolKind::Uncoordinated, layers, 1e-4, p1, p2)
            .stationary_redundancy();
        let c = markov::two_receiver_chain(ProtocolKind::Coordinated, layers, 1e-4, p1, p2)
            .stationary_redundancy();
        t2.row([
            format!("{p1:.3}"),
            format!("{p2:.3}"),
            format!("{u:.4}"),
            format!("{c:.4}"),
        ]);
    }
    print!("{t2}");
    println!("\n(equal loss rates maximize redundancy — the paper's key finding)");

    let path = write_csv(".", "fig7a_markov", &t.records()).expect("csv");
    println!("series written to {}", path.display());
}
