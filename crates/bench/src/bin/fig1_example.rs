//! Figure 1 regenerator: the three-session example network, its multi-rate
//! max-min fair allocation, per-link session rates, and the property audit
//! the prose walks through.
//!
//! `cargo run -p mlf-bench --bin fig1_example`

use mlf_bench::{write_csv, Table};
use mlf_core::{max_min_allocation, properties, LinkRateConfig};
use mlf_net::{paper, LinkId, SessionId};

fn main() {
    let example = paper::figure1();
    let net = &example.network;
    let cfg = LinkRateConfig::efficient(net.session_count());
    let alloc = max_min_allocation(net);

    println!("Figure 1: multi-rate max-min fair allocation\n");
    let mut rates = Table::new(["receiver", "rate", "paper"]);
    for (r, a) in alloc.iter() {
        let expected = example.expected_rates[r.session.0][r.index];
        rates.row([format!("{r}"), format!("{a:.0}"), format!("{expected:.0}")]);
    }
    print!("{rates}");

    println!("\nSession link rates (u1 : u2 : u3), capacities, utilization\n");
    let mut links = Table::new(["link", "capacity", "u1:u2:u3", "full"]);
    for j in 0..net.link_count() {
        let l = LinkId(j);
        let triple: Vec<String> = (0..3)
            .map(|i| format!("{:.0}", alloc.session_link_rate(net, &cfg, l, SessionId(i))))
            .collect();
        links.row([
            format!("{l}"),
            format!("{:.0}", net.graph().capacity(l)),
            triple.join(":"),
            format!("{}", alloc.is_fully_utilized(net, &cfg, l)),
        ]);
    }
    print!("{links}");

    let report = properties::check_all(net, &cfg, &alloc);
    println!(
        "\nAll four fairness properties hold: {} (paper: yes)",
        report.all_hold()
    );

    let path = write_csv(".", "fig1_example", &rates.records()).expect("csv");
    println!("series written to {}", path.display());
}
