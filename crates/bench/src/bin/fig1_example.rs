//! Figure 1 regenerator: the three-session example network, its multi-rate
//! max-min fair allocation, per-link session rates, and the property audit
//! the prose walks through — composed as a `Scenario`.
//!
//! `cargo run -p mlf-bench --bin fig1_example`

use mlf_bench::{write_csv, Table};
use mlf_core::LinkRateConfig;
use mlf_net::{paper, LinkId, SessionId};
use mlf_scenario::Scenario;

fn main() {
    let example = paper::figure1();
    let mut scenario = Scenario::builder()
        .label("figure1")
        .network(example.network)
        .build()
        .expect("figure 1 scenario");
    let report = scenario.run();
    let net = scenario.network().expect("fixed network");
    let cfg = LinkRateConfig::efficient(net.session_count());
    let alloc = &report.solution.allocation;

    println!("Figure 1: multi-rate max-min fair allocation\n");
    let mut rates = Table::new(["receiver", "rate", "paper"]);
    for (r, a) in alloc.iter() {
        let expected = example.expected_rates[r.session.0][r.index];
        rates.row([format!("{r}"), format!("{a:.0}"), format!("{expected:.0}")]);
    }
    print!("{rates}");

    println!("\nSession link rates (u1 : u2 : u3), capacities, utilization\n");
    let mut links = Table::new(["link", "capacity", "u1:u2:u3", "full"]);
    for j in 0..net.link_count() {
        let l = LinkId(j);
        let triple: Vec<String> = (0..3)
            .map(|i| format!("{:.0}", alloc.session_link_rate(net, &cfg, l, SessionId(i))))
            .collect();
        links.row([
            format!("{l}"),
            format!("{:.0}", net.graph().capacity(l)),
            triple.join(":"),
            format!("{}", alloc.is_fully_utilized(net, &cfg, l)),
        ]);
    }
    print!("{links}");

    println!(
        "\nAll four fairness properties hold: {} (paper: yes)",
        report.fairness.expect("properties audited").all_hold()
    );

    let path = write_csv(".", "fig1_example", &rates.records()).expect("csv");
    println!("series written to {}", path.display());
}
