//! Figure 8 regenerator: redundancy of the three protocols vs independent
//! link loss on the 100-receiver, 8-layer modified star — now driven
//! through the `ProtocolScenario` parallel sweep engine, so the
//! `(loss × protocol × seed)` grid shards across worker threads with
//! bitwise-deterministic output (any `--threads` value produces the same
//! numbers).
//!
//! The paper's panels:
//! * 8(a): `--shared 0.0001` (the default)
//! * 8(b): `--shared 0.05`
//!
//! Full-fidelity run (paper parameters — takes a few minutes serially;
//! `--threads 0` uses every core):
//! `cargo run --release -p mlf-bench --bin fig8_protocols -- --trials 30 --packets 100000 --receivers 100 --threads 0`
//!
//! Scaled run for a quick look:
//! `cargo run --release -p mlf-bench --bin fig8_protocols -- --trials 5 --packets 30000 --receivers 40`
//!
//! `--sweep-seeds N` pools N replicate base seeds per grid cell (the
//! per-cell statistics merge the replicates' trials exactly; the default 1
//! reproduces the classic `figure8_series` numbers bit for bit).

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_protocols::{ExperimentParams, ProtocolKind};
use mlf_scenario::{ProtocolScenario, ProtocolSweepGrid};
use mlf_sim::RunningStats;

const KNOBS: &[cli::Knob] = &[
    knob("shared", "0.0001", "shared (sender-side) loss rate"),
    knob("trials", "30", "trials per point"),
    knob("packets", "100000", "base-layer packets per trial"),
    knob("receivers", "100", "receivers on the star"),
    knob("layers", "8", "layers in the ladder"),
    knob("points", "11", "points on the independent-loss axis"),
    knob(
        "sweep-seeds",
        "1",
        "replicate base seeds pooled per grid cell",
    ),
    knob(
        "threads",
        "0",
        "sweep worker threads (0 = available parallelism)",
    ),
];

fn main() {
    let args = Args::for_binary(
        "fig8_protocols",
        "Figure 8 regenerator: protocol redundancy vs independent loss",
        KNOBS,
    );
    let shared: f64 = or_exit(args.get("shared", 0.0001));
    let trials: usize = or_exit(args.get("trials", 30));
    let packets: u64 = or_exit(args.get("packets", 100_000));
    let receivers: usize = or_exit(args.get("receivers", 100));
    let layers: usize = or_exit(args.get("layers", 8));
    let points: usize = or_exit(args.get("points", 11));
    let sweep_seeds: u64 = or_exit(args.get("sweep-seeds", 1));
    let threads: usize = or_exit(args.get("threads", 0));
    if points < 2 {
        eprintln!("error: --points must be at least 2");
        std::process::exit(2);
    }
    if sweep_seeds == 0 {
        eprintln!("error: --sweep-seeds must be at least 1");
        std::process::exit(2);
    }

    // The loss knobs come straight off the command line; the typed
    // validation turns a bad probability into a clean exit instead of NaN
    // statistics deep inside the sweep.
    let template = match (ExperimentParams {
        layers,
        receivers,
        shared_loss: shared,
        independent_loss: 0.0,
        packets,
        trials,
        seed: 0x51_66_C0_99,
        join_latency: 0,
        leave_latency: 0,
    })
    .validated()
    {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let scenario = ProtocolScenario::builder()
        .label(if shared < 0.01 {
            "fig8a_protocols"
        } else {
            "fig8b_protocols"
        })
        .template(template)
        .build()
        .expect("template was validated above");

    let losses: Vec<f64> = (0..points)
        .map(|i| 0.1 * i as f64 / (points - 1) as f64)
        .collect();
    let grid = ProtocolSweepGrid::independent_losses(losses.iter().copied())
        .with_seeds(template.seed..template.seed + sweep_seeds);

    println!(
        "Figure 8 ({}): {receivers} receivers, {layers} layers, shared loss {shared}, \
         {packets} packets x {trials} trials, {sweep_seeds} seed(s)/cell, \
         worker threads: {}\n",
        if shared < 0.01 {
            "a: low shared loss"
        } else {
            "b: high shared loss"
        },
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );

    let report = scenario.sweep_par(&grid, threads);

    let mut t = Table::new([
        "indep loss",
        "Uncoordinated",
        "ci95",
        "Deterministic",
        "ci95",
        "Coordinated",
        "ci95",
    ]);
    // Grid order is losses-major, then kinds, then seeds: each loss owns a
    // contiguous chunk of kinds × seeds points, and each kind's replicate
    // seeds pool into one exact statistic via RunningStats::merge.
    let kinds = ProtocolKind::ALL.len();
    let replicates = sweep_seeds as usize;
    for cell in report.points.chunks(kinds * replicates) {
        let mut cells = vec![format!("{:.3}", cell[0].independent_loss)];
        for by_kind in cell.chunks(replicates) {
            let mut pooled = RunningStats::new();
            for point in by_kind {
                pooled.merge(&point.outcome.redundancy);
            }
            cells.push(format!("{:.3}", pooled.mean()));
            cells.push(format!("{:.3}", pooled.ci95_half_width()));
        }
        t.row(cells);
    }
    println!("{t}");

    // The paper's headline checks.
    let records = t.records();
    let last_row = &records[records.len() - 1];
    let coord_max: f64 = records[1..]
        .iter()
        .map(|r| r[5].parse::<f64>().unwrap())
        .fold(0.0, f64::max);
    println!("max Coordinated redundancy over the sweep: {coord_max:.3} (paper: < 2.5)");
    println!(
        "at 10% independent loss: Uncoordinated {}, Deterministic {}, Coordinated {}",
        last_row[1], last_row[3], last_row[5]
    );

    let path = write_csv(".", scenario.label(), &records).expect("csv");
    println!("series written to {}", path.display());
}
