//! Figure 8 regenerator: redundancy of the three protocols vs independent
//! link loss on the 100-receiver, 8-layer modified star.
//!
//! The paper's panels:
//! * 8(a): `--shared 0.0001` (the default)
//! * 8(b): `--shared 0.05`
//!
//! Full-fidelity run (paper parameters — takes a few minutes):
//! `cargo run --release -p mlf-bench --bin fig8_protocols -- --trials 30 --packets 100000 --receivers 100`
//!
//! Scaled run for a quick look:
//! `cargo run --release -p mlf-bench --bin fig8_protocols -- --trials 5 --packets 30000 --receivers 40`

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_protocols::{experiment, ExperimentParams, ProtocolKind};

const KNOBS: &[cli::Knob] = &[
    knob("shared", "0.0001", "shared (sender-side) loss rate"),
    knob("trials", "30", "trials per point"),
    knob("packets", "100000", "base-layer packets per trial"),
    knob("receivers", "100", "receivers on the star"),
    knob("layers", "8", "layers in the ladder"),
    knob("points", "11", "points on the independent-loss axis"),
];

fn main() {
    let args = Args::for_binary(
        "fig8_protocols",
        "Figure 8 regenerator: protocol redundancy vs independent loss",
        KNOBS,
    );
    let shared: f64 = or_exit(args.get("shared", 0.0001));
    let trials: usize = or_exit(args.get("trials", 30));
    let packets: u64 = or_exit(args.get("packets", 100_000));
    let receivers: usize = or_exit(args.get("receivers", 100));
    let layers: usize = or_exit(args.get("layers", 8));
    let points: usize = or_exit(args.get("points", 11));

    let template = ExperimentParams {
        layers,
        receivers,
        shared_loss: shared,
        independent_loss: 0.0,
        packets,
        trials,
        seed: 0x51_66_C0_99,
        join_latency: 0,
        leave_latency: 0,
    };
    let losses: Vec<f64> = (0..points)
        .map(|i| 0.1 * i as f64 / (points - 1) as f64)
        .collect();

    println!(
        "Figure 8 ({}): {receivers} receivers, {layers} layers, shared loss {shared}, \
         {packets} packets x {trials} trials\n",
        if shared < 0.01 {
            "a: low shared loss"
        } else {
            "b: high shared loss"
        }
    );

    let mut t = Table::new([
        "indep loss",
        "Uncoordinated",
        "ci95",
        "Deterministic",
        "ci95",
        "Coordinated",
        "ci95",
    ]);
    for point in experiment::figure8_series(&template, &losses) {
        let mut cells = vec![format!("{:.3}", point.independent_loss)];
        for out in &point.outcomes {
            cells.push(format!("{:.3}", out.redundancy.mean()));
            cells.push(format!("{:.3}", out.redundancy.ci95_half_width()));
        }
        t.row(cells);
        // Stream rows as they finish (long-running sweep).
        let last = t.records().last().unwrap().join("  ");
        println!("{last}");
    }
    println!("\n{t}");

    // The paper's headline checks.
    let records = t.records();
    let last_row = &records[records.len() - 1];
    let coord_max: f64 = records[1..]
        .iter()
        .map(|r| r[5].parse::<f64>().unwrap())
        .fold(0.0, f64::max);
    println!("max Coordinated redundancy over the sweep: {coord_max:.3} (paper: < 2.5)");
    println!(
        "at 10% independent loss: Uncoordinated {}, Deterministic {}, Coordinated {}",
        last_row[1], last_row[3], last_row[5]
    );

    let name = if shared < 0.01 {
        "fig8a_protocols"
    } else {
        "fig8b_protocols"
    };
    let path = write_csv(".", name, &records).expect("csv");
    println!("series written to {}", path.display());
    let _ = ProtocolKind::ALL; // legend order documented in the table header
}
