//! The CI bench-regression gate: compare a freshly emitted
//! `BENCH_<name>.json` against its committed baseline and fail (exit 1)
//! when points-per-second regressed more than the allowed fraction.
//!
//! ```text
//! cargo run -p mlf-bench --bin bench_gate -- \
//!     --baseline crates/bench/baselines/BENCH_protocol_sweep.json \
//!     --current  crates/bench/BENCH_protocol_sweep.json \
//!     --max-regress 0.30
//! ```
//!
//! Exit status: 0 within band (or faster), 1 on regression, 2 on bad
//! input/unreadable records. Faster-than-baseline runs always pass; the
//! baselines only need re-seeding when the measured hot path genuinely
//! changes (the gate also rejects silently shrunken workloads — a points
//! mismatch is an error, not a pass).

use mlf_bench::regression::{check_regression, BenchRecord, GateOutcome};
use mlf_bench::{cli, knob, or_exit, Args};

const KNOBS: &[cli::Knob] = &[
    knob("baseline", "(required)", "committed baseline BENCH_*.json"),
    knob("current", "(required)", "freshly emitted BENCH_*.json"),
    knob(
        "max-regress",
        "0.30",
        "maximum tolerated fractional throughput drop",
    ),
];

fn main() {
    let args = Args::for_binary(
        "bench_gate",
        "CI gate: fail when a bench's points-per-second regresses beyond the baseline band",
        KNOBS,
    );
    let baseline_path: String = or_exit(args.get("baseline", String::new()));
    let current_path: String = or_exit(args.get("current", String::new()));
    let max_regress: f64 = or_exit(args.get("max-regress", 0.30));
    if baseline_path.is_empty() || current_path.is_empty() {
        eprintln!("error: --baseline and --current are required");
        std::process::exit(2);
    }
    if !(0.0..1.0).contains(&max_regress) {
        eprintln!("error: --max-regress must be in [0, 1), got {max_regress}");
        std::process::exit(2);
    }

    let read = |path: &str| -> BenchRecord {
        match BenchRecord::read(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    };
    let baseline = read(&baseline_path);
    let current = read(&current_path);

    match check_regression(&baseline, &current, max_regress) {
        Ok(GateOutcome::Pass(ratio)) => {
            println!(
                "PASS {}: {:.3} points/s vs baseline {:.3} ({:.0}% of baseline, \
                 floor {:.0}%)",
                current.bench,
                current.points_per_second,
                baseline.points_per_second,
                ratio * 100.0,
                (1.0 - max_regress) * 100.0
            );
        }
        Ok(GateOutcome::Regressed(ratio)) => {
            eprintln!(
                "REGRESSION {}: {:.3} points/s is {:.0}% of the baseline {:.3} \
                 (allowed floor {:.0}%)",
                current.bench,
                current.points_per_second,
                ratio * 100.0,
                baseline.points_per_second,
                (1.0 - max_regress) * 100.0
            );
            std::process::exit(1);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}
