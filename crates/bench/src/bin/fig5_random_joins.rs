//! Figure 5 regenerator: redundancy of a single layer with random joins,
//! for the paper's five receiver-rate configurations, 1 to 100 receivers
//! (analytic closed form + Monte-Carlo confirmation at selected points),
//! plus a network-level random-join sweep across the four topology
//! families, executed through the parallel sweep engine.
//!
//! `cargo run --release -p mlf-bench --bin fig5_random_joins
//!    [--max-receivers 100] [--mc-quanta 200] [--mc-sigma 100]
//!    [--sweep-seeds 64] [--threads 0] [--coordinate-procs 0]
//!    [--checkpoint PATH] [--spill DIR]`
//!
//! With `--coordinate-procs N` the network sweep runs on the
//! fault-tolerant coordinator over a fleet of N supervised worker
//! *processes* instead of the in-process thread pool, optionally with a
//! crash-safe checkpoint (`--checkpoint`) and the workers' disk spill
//! tier (`--spill`); the fleet's `CoordinatorStats` are printed per
//! family. The merged bytes are identical in every mode.

use mlf_bench::{cli, knob, or_exit, write_csv, Args, Table};
use mlf_core::allocator::MultiRate;
use mlf_core::LinkRateModel;
use mlf_layering::randomjoin::{self, Figure5Config};
use mlf_net::TopologyFamily;
use mlf_scenario::{
    CoordinatorConfig, CoordinatorStats, LinkRates, ProcessConfig, Scenario, TransportKind,
};
use std::path::PathBuf;

const KNOBS: &[cli::Knob] = &[
    knob(
        "max-receivers",
        "100",
        "largest receiver count on the x axis",
    ),
    knob(
        "mc-quanta",
        "200",
        "Monte-Carlo quanta per confirmation point",
    ),
    knob(
        "mc-sigma",
        "100",
        "packets per quantum in the Monte-Carlo runs",
    ),
    knob(
        "sweep-seeds",
        "64",
        "random topologies per family in the network sweep",
    ),
    knob(
        "threads",
        "0",
        "sweep worker threads (0 = available parallelism)",
    ),
    knob(
        "coordinate-procs",
        "0",
        "run the network sweep on a supervised fleet of N worker processes (0 = thread sweep)",
    ),
    knob(
        "checkpoint",
        "",
        "crash-safe checkpoint base path for the fleet sweep (per-family suffix; empty = off)",
    ),
    knob(
        "spill",
        "",
        "directory for the fleet workers' disk spill tier (per-family subdir; empty = off)",
    ),
];

fn main() {
    // Fleet workers re-execute this binary: route them into the stdio
    // worker loop before any CLI parsing (never returns for workers).
    mlf_scenario::transport::maybe_run_process_worker();

    let args = Args::for_binary(
        "fig5_random_joins",
        "Figure 5 regenerator: single-layer random-join redundancy",
        KNOBS,
    );
    let max_receivers: usize = or_exit(args.get("max-receivers", 100));
    let mc_quanta: usize = or_exit(args.get("mc-quanta", 200));
    let mc_sigma: usize = or_exit(args.get("mc-sigma", 100));
    let sweep_seeds: u64 = or_exit(args.get("sweep-seeds", 64));
    let threads: usize = or_exit(args.get("threads", 0));
    let coordinate_procs: usize = or_exit(args.get("coordinate-procs", 0));
    let checkpoint: String = or_exit(args.get("checkpoint", String::new()));
    let spill: String = or_exit(args.get("spill", String::new()));

    // Log-spaced x-axis like the paper's log plot.
    let mut xs = vec![1usize, 2, 3, 4, 5, 7, 10, 14, 20, 30, 50, 70];
    xs.push(max_receivers);
    xs.retain(|&x| x <= max_receivers);
    xs.dedup();

    let mut t = Table::new([
        "receivers",
        "All 0.1",
        "All 0.5",
        "1st .5 rest .1",
        "All 0.9",
        "1st .9 rest .1",
    ]);
    for point in randomjoin::figure5_series(&xs) {
        t.numeric_row(point.receivers.to_string(), &point.redundancy, 3);
    }
    println!("Figure 5 (analytic): redundancy of a single layer, random joins\n");
    print!("{t}");
    println!(
        "\nasymptotes (σ / max rate): {:?}",
        Figure5Config::ALL.map(|c| c.asymptote())
    );

    println!("\nMonte-Carlo confirmation ({mc_sigma} packets/quantum, {mc_quanta} quanta):\n");
    let mut mc = Table::new(["config", "receivers", "analytic", "simulated"]);
    for (cfg, r) in [
        (Figure5Config::All01, 10usize),
        (Figure5Config::All05, 10),
        (Figure5Config::All09, 10),
        (Figure5Config::First05Rest01, 10),
        (Figure5Config::First09Rest01, 10),
        (Figure5Config::All01, 50),
    ] {
        let analytic = randomjoin::analytic_redundancy(&cfg.rates(r), 1.0);
        let sim = randomjoin::monte_carlo_redundancy(cfg, r, mc_sigma, mc_quanta, 0x515);
        mc.row([
            cfg.label().to_string(),
            r.to_string(),
            format!("{analytic:.3}"),
            format!("{sim:.3}"),
        ]);
    }
    print!("{mc}");

    let path = write_csv(".", "fig5_random_joins", &t.records()).expect("csv");
    println!("\nseries written to {}", path.display());

    // ---- Network-level sweep through the parallel engine -----------------
    // The same random-join redundancy model, now inside whole networks:
    // every session of every random topology carries RandomJoin link rates
    // and the multi-rate allocator solves the resulting fixed point. Each
    // family's seeds are sharded across `threads` workers by `sweep_par`,
    // whose merge order makes the output independent of the thread count.
    // sweep_par resolves 0 to available parallelism and clamps to the job
    // count internally; the banner reports what was requested.
    println!(
        "\nNetwork sweep (random-join model, {sweep_seeds} seeds/family, \
         requested worker threads: {}):\n",
        if threads == 0 {
            "auto".to_string()
        } else {
            threads.to_string()
        }
    );
    let families = [
        TopologyFamily::FlatTree,
        TopologyFamily::KaryTree { arity: 3 },
        TopologyFamily::TransitStub { transit: 4 },
        TopologyFamily::Dumbbell,
    ];
    let mut sweep_table = Table::new([
        "family",
        "mean Jain",
        "mean min rate",
        "mean satisfaction",
        "all-props rate",
        "cache h/m/e",
    ]);
    if coordinate_procs > 0 && !checkpoint.is_empty() {
        // The writer creates the file, not its directory.
        if let Some(parent) = std::path::Path::new(&checkpoint).parent() {
            or_exit(std::fs::create_dir_all(parent).map_err(|e| {
                format!(
                    "cannot create checkpoint directory {}: {e}",
                    parent.display()
                )
            }));
        }
    }
    let mut fleet_stats: Vec<(&'static str, CoordinatorStats)> = Vec::new();
    for family in families {
        let scenario = Scenario::builder()
            .label(format!("fig5-sweep/{}", family.label()))
            .random_networks_with(family, 30, 8, 5)
            .link_rates(LinkRates::Uniform(LinkRateModel::RandomJoin { sigma: 6.0 }))
            .allocator(MultiRate::new())
            .build()
            .expect("family sweep scenario");
        let report = if coordinate_procs > 0 {
            let cfg = CoordinatorConfig {
                workers: coordinate_procs,
                checkpoint: (!checkpoint.is_empty())
                    .then(|| PathBuf::from(format!("{checkpoint}.{}", family.label()))),
                spill_dir: (!spill.is_empty()).then(|| PathBuf::from(&spill).join(family.label())),
                transport: TransportKind::Process(ProcessConfig::default()),
                ..CoordinatorConfig::default()
            };
            let out = or_exit(scenario.coordinate(0..sweep_seeds, &cfg));
            fleet_stats.push((family.label(), out.stats));
            out.report
        } else {
            scenario.sweep_par(0..sweep_seeds, threads)
        };
        sweep_table.row([
            family.label().to_string(),
            format!("{:.4}", report.mean_jain()),
            format!("{:.4}", report.mean_min_rate()),
            format!("{:.4}", report.mean_of(|p| p.metrics.satisfaction)),
            format!("{:.3}", report.all_properties_rate()),
            format!(
                "{}/{}/{}",
                report.cache.hits, report.cache.misses, report.cache.evictions
            ),
        ]);
    }
    print!("{sweep_table}");
    for (family, stats) in &fleet_stats {
        println!("\nprocess fleet [{family}] ({coordinate_procs} workers):\n{stats}");
    }
    println!(
        "\n(cache h/m/e: sweep solve-cache hits/misses/evictions — every (seed, model) cell \
         is unique in a one-shot sweep, so cold sweeps report all misses; warm re-sweeps and \
         model grids report hits where cells repeat)"
    );
}
