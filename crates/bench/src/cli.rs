//! A tiny `--key value` argument parser for the figure binaries.
//!
//! The binaries take a handful of numeric knobs (`--trials 30`,
//! `--packets 100000`, `--shared 0.05`); pulling in a full CLI crate for
//! that would violate the workspace's dependency policy, so this ~60-line
//! parser does the job. Unknown keys abort with a message listing the
//! knobs that were read, which doubles as `--help`.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    consumed: std::cell::RefCell<Vec<String>>,
}

impl Args {
    /// Parse `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse an explicit token stream (used by tests).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Self {
        let mut values = BTreeMap::new();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            let key = tok
                .strip_prefix("--")
                .unwrap_or_else(|| panic!("expected --key, got {tok:?}"));
            let val = it
                .next()
                .unwrap_or_else(|| panic!("missing value for --{key}"));
            values.insert(key.to_string(), val);
        }
        Args {
            values,
            consumed: Default::default(),
        }
    }

    /// Read a typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> T
    where
        T::Err: std::fmt::Debug,
    {
        self.consumed.borrow_mut().push(key.to_string());
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .unwrap_or_else(|e| panic!("bad value for --{key}: {v:?} ({e:?})")),
            None => default,
        }
    }

    /// Abort if any provided key was never consumed (typo protection).
    /// Call after all `get`s.
    pub fn finish(&self) {
        let consumed = self.consumed.borrow();
        for key in self.values.keys() {
            if !consumed.contains(key) {
                eprintln!("unknown option --{key}");
                eprintln!("known options: {}", consumed.join(", "));
                std::process::exit(2);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_typed_values_with_defaults() {
        let args = Args::parse(
            ["--trials", "7", "--shared", "0.05"]
                .iter()
                .map(|s| s.to_string()),
        );
        assert_eq!(args.get("trials", 30usize), 7);
        assert_eq!(args.get("shared", 0.0001f64), 0.05);
        assert_eq!(args.get("packets", 100_000u64), 100_000);
        args.finish();
    }

    #[test]
    #[should_panic(expected = "missing value")]
    fn missing_value_panics() {
        let _ = Args::parse(["--trials".to_string()]);
    }

    #[test]
    #[should_panic(expected = "expected --key")]
    fn positional_tokens_panic() {
        let _ = Args::parse(["trials".to_string(), "7".to_string()]);
    }

    #[test]
    #[should_panic(expected = "bad value")]
    fn unparseable_value_panics() {
        let args = Args::parse(["--trials", "many"].iter().map(|s| s.to_string()));
        let _: usize = args.get("trials", 1);
    }
}
