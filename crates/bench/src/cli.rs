//! A tiny `--key value` argument parser for the figure binaries.
//!
//! The binaries take a handful of numeric knobs (`--trials 30`,
//! `--packets 100000`, `--shared 0.05`); pulling in a full CLI crate for
//! that would violate the workspace's dependency policy, so this small
//! parser does the job. All fallible operations return [`Result`] — nothing
//! here panics on user input. The binaries funnel errors through
//! [`Args::for_binary`]/[`or_exit`], which print a `--help`-style message
//! listing the known knobs and exit with status 2; `--help` itself prints
//! the same message and exits 0.

use std::collections::BTreeMap;
use std::fmt;

/// A malformed command line, with the message shown to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

/// One knob a binary accepts: flag name, default, one-line description.
#[derive(Debug, Clone, Copy)]
pub struct Knob {
    /// The flag, without the `--` prefix.
    pub key: &'static str,
    /// Rendered default value.
    pub default: &'static str,
    /// What the knob controls.
    pub help: &'static str,
}

/// Declare a binary's knob table (for its `--help` and error messages).
pub const fn knob(key: &'static str, default: &'static str, help: &'static str) -> Knob {
    Knob { key, default, help }
}

/// Render a usage message for a binary and its knobs.
pub fn usage(binary: &str, about: &str, knobs: &[Knob]) -> String {
    let mut out = format!("{about}\n\nusage: {binary} [--key value]...\n");
    if !knobs.is_empty() {
        out.push_str("\noptions:\n");
        for k in knobs {
            out.push_str(&format!(
                "  --{:<16} {} (default {})\n",
                k.key, k.help, k.default
            ));
        }
    }
    out.push_str("  --help             print this message\n");
    out
}

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: BTreeMap<String, String>,
    known: Vec<&'static str>,
}

impl Args {
    /// Parse `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Result<Self, CliError> {
        Self::parse(std::env::args().skip(1))
    }

    /// Parse an explicit token stream (used by tests).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, CliError> {
        let mut values = BTreeMap::new();
        let mut it = tokens.into_iter().peekable();
        while let Some(tok) = it.next() {
            let key = tok.strip_prefix("--").ok_or_else(|| {
                CliError(format!(
                    "expected --key, got {tok:?} (positional arguments are not accepted)"
                ))
            })?;
            if key == "help" {
                return Err(CliError("help".to_string()));
            }
            let val = it
                .next()
                .ok_or_else(|| CliError(format!("missing value for --{key}")))?;
            if values.insert(key.to_string(), val).is_some() {
                // A repeated flag is almost always a copy-paste mistake;
                // silently letting the last value win hides it.
                return Err(CliError(format!("duplicate option --{key}")));
            }
        }
        Ok(Args {
            values,
            known: Vec::new(),
        })
    }

    /// Parse the environment against a binary's knob table: rejects unknown
    /// flags up front, handles `--help`, and on any error prints the usage
    /// message and exits (2 on errors, 0 for `--help`). The one-stop entry
    /// point for `fn main`.
    pub fn for_binary(binary: &'static str, about: &'static str, knobs: &'static [Knob]) -> Self {
        let parsed = Self::from_env().and_then(|mut args| {
            args.known = knobs.iter().map(|k| k.key).collect();
            args.check_unknown()?;
            Ok(args)
        });
        match parsed {
            Ok(args) => args,
            Err(CliError(msg)) if msg == "help" => {
                println!("{}", usage(binary, about, knobs));
                std::process::exit(0);
            }
            Err(CliError(msg)) => {
                eprintln!("error: {msg}\n");
                eprintln!("{}", usage(binary, about, knobs));
                std::process::exit(2);
            }
        }
    }

    /// Read a typed value with a default.
    pub fn get<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, CliError>
    where
        T::Err: fmt::Debug,
    {
        match self.values.get(key) {
            Some(v) => v
                .parse()
                .map_err(|e| CliError(format!("bad value for --{key}: {v:?} ({e:?})"))),
            None => Ok(default),
        }
    }

    /// Reject flags that are not in the declared knob table.
    fn check_unknown(&self) -> Result<(), CliError> {
        for key in self.values.keys() {
            if !self.known.contains(&key.as_str()) {
                return Err(CliError(format!("unknown option --{key}")));
            }
        }
        Ok(())
    }
}

/// Unwrap a result or print the error and exit with status 2 — the
/// binaries' error funnel for post-parse failures: bad values
/// ([`CliError`]) and artifact IO ([`crate::regression::RecordError`])
/// alike.
pub fn or_exit<T, E: fmt::Display>(result: Result<T, E>) -> T {
    match result {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, CliError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_typed_values_with_defaults() {
        let args = parse(&["--trials", "7", "--shared", "0.05"]).unwrap();
        assert_eq!(args.get("trials", 30usize).unwrap(), 7);
        assert_eq!(args.get("shared", 0.0001f64).unwrap(), 0.05);
        assert_eq!(args.get("packets", 100_000u64).unwrap(), 100_000);
    }

    #[test]
    fn missing_value_is_an_error_not_a_panic() {
        let err = parse(&["--trials"]).unwrap_err();
        assert!(err.to_string().contains("missing value for --trials"));
    }

    #[test]
    fn positional_tokens_are_an_error() {
        let err = parse(&["trials", "7"]).unwrap_err();
        assert!(err.to_string().contains("expected --key"));
    }

    #[test]
    fn unparseable_value_is_an_error() {
        let args = parse(&["--trials", "many"]).unwrap();
        let err = args.get("trials", 1usize).unwrap_err();
        assert!(err.to_string().contains("bad value for --trials"));
    }

    #[test]
    fn unknown_keys_are_rejected_against_the_knob_table() {
        let mut args = parse(&["--tirals", "7"]).unwrap();
        args.known = vec!["trials", "packets"];
        let err = args.check_unknown().unwrap_err();
        assert!(err.to_string().contains("unknown option --tirals"));
    }

    #[test]
    fn negative_value_for_a_positive_knob_is_an_error() {
        // usize knobs reject negatives at parse time, with the exact
        // message the binaries print before exiting 2.
        let args = parse(&["--trials", "-3"]).unwrap();
        let err = args.get("trials", 30usize).unwrap_err();
        // The prefix is ours and exact; the parenthesized suffix is std's
        // ParseIntError Debug output, which is not a stable format.
        assert!(
            err.to_string()
                .starts_with("bad value for --trials: \"-3\" ("),
            "{err}"
        );
        // Negative floats parse fine where the knob's domain allows them.
        assert_eq!(args.get("trials", 0.0f64).unwrap(), -3.0);
    }

    #[test]
    fn repeated_flags_are_an_error() {
        let err = parse(&["--trials", "7", "--trials", "9"]).unwrap_err();
        assert_eq!(err.to_string(), "duplicate option --trials");
    }

    #[test]
    fn missing_value_message_is_exact() {
        let err = parse(&["--packets", "5", "--trials"]).unwrap_err();
        assert_eq!(err.to_string(), "missing value for --trials");
    }

    #[test]
    fn unknown_flag_message_is_exact() {
        let mut args = parse(&["--nope", "1"]).unwrap();
        args.known = vec!["trials"];
        let err = args.check_unknown().unwrap_err();
        assert_eq!(err.to_string(), "unknown option --nope");
    }

    #[test]
    fn help_is_signalled() {
        let err = parse(&["--help"]).unwrap_err();
        assert_eq!(err, CliError("help".to_string()));
    }

    #[test]
    fn usage_lists_every_knob() {
        const KNOBS: &[Knob] = &[
            knob("trials", "30", "number of trials"),
            knob("packets", "100000", "packets per trial"),
        ];
        let text = usage("fig8_protocols", "Figure 8 regenerator", KNOBS);
        assert!(text.contains("--trials"));
        assert!(text.contains("number of trials"));
        assert!(text.contains("--help"));
        assert!(text.contains("fig8_protocols"));
    }
}
