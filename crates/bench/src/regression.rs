//! Bench-regression records: the `BENCH_<name>.json` artifacts the sweep
//! benches emit and the CI gate compares against committed baselines.
//!
//! The workspace builds without network access, so there is no serde; the
//! record format is a small fixed-shape JSON object written and parsed by
//! hand:
//!
//! ```json
//! {
//!   "bench": "protocol_sweep",
//!   "points": 36,
//!   "elapsed_seconds": 1.234567,
//!   "points_per_second": 29.17
//! }
//! ```
//!
//! `points_per_second` is the gated metric: the serial sweep's throughput
//! in points per second, which tracks per-point solve cost without the
//! scheduling noise of the parallel path. [`check_regression`] fails when
//! the current throughput falls more than the allowed fraction below the
//! baseline (CI uses 0.30 — a >30% regression fails the job); faster runs
//! never fail, so baselines only need re-seeding when the hot path
//! genuinely changes.

use std::io::Write;
use std::path::{Path, PathBuf};

/// One bench run's gated measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which bench produced the record (`protocol_sweep`,
    /// `parallel_sweep`).
    pub bench: String,
    /// Sweep points the measured run produced.
    pub points: u64,
    /// Wall-clock seconds of the measured (serial) run, best-of-N.
    pub elapsed_seconds: f64,
    /// The gated metric: `points / elapsed_seconds`.
    pub points_per_second: f64,
}

/// Why an artifact could not be produced, read, or gated. Every artifact
/// IO failure is a value on this type — the binaries funnel it through
/// the CLI exit-2 contract ([`crate::or_exit`]) instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordError {
    /// The filesystem refused an artifact operation.
    Io {
        /// The artifact path involved.
        path: PathBuf,
        /// What was being attempted (`"create"`, `"write"`, `"read"`).
        op: &'static str,
        /// The OS error rendered as text (io::Error does not implement
        /// `Clone`/`Eq`).
        message: String,
    },
    /// A record file or field did not parse.
    Malformed(String),
    /// A bench name outside `[A-Za-z0-9_-]` (it names the artifact file).
    BadName(String),
    /// Gate inputs describe different benches or workloads.
    Mismatch(String),
}

impl RecordError {
    fn io(path: &Path, op: &'static str, e: std::io::Error) -> Self {
        RecordError::Io {
            path: path.to_path_buf(),
            op,
            message: e.to_string(),
        }
    }
}

impl std::fmt::Display for RecordError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecordError::Io { path, op, message } => {
                write!(f, "cannot {op} {}: {message}", path.display())
            }
            RecordError::Malformed(detail)
            | RecordError::BadName(detail)
            | RecordError::Mismatch(detail) => f.write_str(detail),
        }
    }
}

impl std::error::Error for RecordError {}

impl BenchRecord {
    /// Build a record from a measured run.
    pub fn new(bench: impl Into<String>, points: u64, elapsed_seconds: f64) -> Self {
        let bench = bench.into();
        BenchRecord {
            bench,
            points,
            elapsed_seconds,
            points_per_second: points as f64 / elapsed_seconds.max(1e-12),
        }
    }

    /// Render the canonical JSON form. The bench name must be a plain
    /// identifier (`[A-Za-z0-9_-]`) — it is embedded unescaped and names
    /// the artifact file — anything else is a [`RecordError::BadName`].
    pub fn to_json(&self) -> Result<String, RecordError> {
        if !self
            .bench
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
            || self.bench.is_empty()
        {
            return Err(RecordError::BadName(format!(
                "bench names are [A-Za-z0-9_-]: {:?}",
                self.bench
            )));
        }
        Ok(format!(
            "{{\n  \"bench\": \"{}\",\n  \"points\": {},\n  \"elapsed_seconds\": {:.6},\n  \
             \"points_per_second\": {:.3}\n}}\n",
            self.bench, self.points, self.elapsed_seconds, self.points_per_second
        ))
    }

    /// Parse a record from its JSON form (accepts any field order and
    /// whitespace; unknown fields are ignored).
    pub fn parse(json: &str) -> Result<Self, RecordError> {
        let bench = string_field(json, "bench")?;
        let points = number_field(json, "points")? as u64;
        let elapsed_seconds = number_field(json, "elapsed_seconds")?;
        let points_per_second = number_field(json, "points_per_second")?;
        Ok(BenchRecord {
            bench,
            points,
            elapsed_seconds,
            points_per_second,
        })
    }

    /// Write the record as `BENCH_<bench>.json` under `dir`, returning the
    /// path.
    pub fn write(&self, dir: impl AsRef<Path>) -> Result<PathBuf, RecordError> {
        let json = self.to_json()?;
        let path = dir.as_ref().join(format!("BENCH_{}.json", self.bench));
        let mut f =
            std::fs::File::create(&path).map_err(|e| RecordError::io(&path, "create", e))?;
        f.write_all(json.as_bytes())
            .map_err(|e| RecordError::io(&path, "write", e))?;
        Ok(path)
    }

    /// Read and parse a record file.
    pub fn read(path: impl AsRef<Path>) -> Result<Self, RecordError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| RecordError::io(path, "read", e))?;
        Self::parse(&text)
    }
}

fn field_start<'a>(json: &'a str, key: &str) -> Result<&'a str, RecordError> {
    let needle = format!("\"{key}\"");
    let at = json
        .find(&needle)
        .ok_or_else(|| RecordError::Malformed(format!("missing field {key:?}")))?;
    let rest = &json[at + needle.len()..];
    let rest = rest.trim_start();
    let rest = rest
        .strip_prefix(':')
        .ok_or_else(|| RecordError::Malformed(format!("field {key:?} has no ':'")))?;
    Ok(rest.trim_start())
}

fn string_field(json: &str, key: &str) -> Result<String, RecordError> {
    let rest = field_start(json, key)?;
    let rest = rest
        .strip_prefix('"')
        .ok_or_else(|| RecordError::Malformed(format!("field {key:?} is not a string")))?;
    let end = rest
        .find('"')
        .ok_or_else(|| RecordError::Malformed(format!("field {key:?} is unterminated")))?;
    Ok(rest[..end].to_string())
}

fn number_field(json: &str, key: &str) -> Result<f64, RecordError> {
    let rest = field_start(json, key)?;
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    let token = &rest[..end];
    let value: f64 = token.parse().map_err(|_| {
        RecordError::Malformed(format!("field {key:?} is not a number (got {token:?})"))
    })?;
    if !value.is_finite() {
        return Err(RecordError::Malformed(format!(
            "field {key:?} is not finite"
        )));
    }
    Ok(value)
}

/// The gate verdict for one bench.
#[derive(Debug, Clone, PartialEq)]
pub enum GateOutcome {
    /// Throughput is within the allowed band (or better). Carries
    /// `current / baseline`.
    Pass(f64),
    /// Throughput regressed more than the allowed fraction. Carries
    /// `current / baseline`.
    Regressed(f64),
}

/// Compare a current record against a baseline: fail when
/// `points_per_second` drops by more than `max_regression` (e.g. `0.30`
/// fails anything below 70% of the baseline throughput).
///
/// The two records must describe the same bench and the same point count —
/// a silently shrunken workload would otherwise game the throughput gate.
pub fn check_regression(
    baseline: &BenchRecord,
    current: &BenchRecord,
    max_regression: f64,
) -> Result<GateOutcome, RecordError> {
    if baseline.bench != current.bench {
        return Err(RecordError::Mismatch(format!(
            "bench mismatch: baseline {:?} vs current {:?}",
            baseline.bench, current.bench
        )));
    }
    if baseline.points != current.points {
        return Err(RecordError::Mismatch(format!(
            "workload mismatch for {:?}: baseline ran {} points, current ran {} \
             (re-seed the baseline when the bench grid changes)",
            baseline.bench, baseline.points, current.points
        )));
    }
    // partial_cmp keeps NaN (a hand-built record; parse rejects it) on the
    // error path alongside zero and negatives.
    if baseline.points_per_second.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(RecordError::Mismatch(format!(
            "baseline for {:?} has non-positive points_per_second",
            baseline.bench
        )));
    }
    let ratio = current.points_per_second / baseline.points_per_second;
    if ratio < 1.0 - max_regression {
        Ok(GateOutcome::Regressed(ratio))
    } else {
        Ok(GateOutcome::Pass(ratio))
    }
}

/// Where bench artifacts go: `$MLF_BENCH_ARTIFACT_DIR` if set, else the
/// current directory (cargo runs bench binaries with the package root as
/// cwd, so artifacts land in `crates/bench/` by default).
pub fn artifact_dir() -> PathBuf {
    std::env::var_os("MLF_BENCH_ARTIFACT_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// Whether the benches should run in CI check mode (`MLF_BENCH_CHECK=1`):
/// determinism asserts + one timed measurement + artifact, skipping the
/// slower sampling loops.
pub fn check_mode() -> bool {
    std::env::var_os("MLF_BENCH_CHECK").is_some_and(|v| v == "1")
}

/// Time `f` best-of-three (the minimum keeps the report stable without a
/// stats stack).
pub fn time_best_of_three(f: impl Fn() -> usize) -> std::time::Duration {
    let mut best = std::time::Duration::MAX;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        std::hint::black_box(f());
        best = best.min(start.elapsed());
    }
    best
}

/// The gated-bench measurement both sweep benches share: time the serial
/// `sweep` best-of-three, write the `BENCH_<bench>.json` artifact into
/// [`artifact_dir`], print the throughput line, and return the elapsed
/// time for the speedup report.
///
/// An unwritable artifact is a [`RecordError`], not a warning: CI gates on
/// the file existing, so the benches funnel this through [`crate::or_exit`]
/// and fail with exit status 2 rather than silently passing.
pub fn measure_and_emit(
    bench: &str,
    points: u64,
    sweep: impl Fn() -> usize,
) -> Result<std::time::Duration, RecordError> {
    let serial = time_best_of_three(sweep);
    let record = BenchRecord::new(bench, points, serial.as_secs_f64());
    let path = record.write(artifact_dir())?;
    println!(
        "throughput: {:.3} points/s serial ({points} points in {serial:?}) -> {}",
        record.points_per_second,
        path.display()
    );
    Ok(serial)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> BenchRecord {
        BenchRecord::new("protocol_sweep", 36, 1.25)
    }

    #[test]
    fn json_roundtrips() {
        let r = record();
        assert!((r.points_per_second - 28.8).abs() < 1e-9);
        let parsed = BenchRecord::parse(&r.to_json().unwrap()).unwrap();
        assert_eq!(parsed.bench, "protocol_sweep");
        assert_eq!(parsed.points, 36);
        assert!((parsed.elapsed_seconds - 1.25).abs() < 1e-6);
        assert!((parsed.points_per_second - 28.8).abs() < 1e-3);
    }

    #[test]
    fn parse_accepts_field_reordering_and_ignores_unknowns() {
        let parsed = BenchRecord::parse(
            r#"{"points_per_second": 10.5, "commit": "abc", "points": 7,
                "bench": "parallel_sweep", "elapsed_seconds": 0.666}"#,
        )
        .unwrap();
        assert_eq!(parsed.bench, "parallel_sweep");
        assert_eq!(parsed.points, 7);
        assert!((parsed.points_per_second - 10.5).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_malformed_records() {
        let missing = BenchRecord::parse(r#"{"bench": "x", "points": 3}"#).unwrap_err();
        assert!(missing.to_string().contains("elapsed_seconds"), "{missing}");
        let not_num = BenchRecord::parse(
            r#"{"bench":"x","points":"three","elapsed_seconds":1,"points_per_second":1}"#,
        )
        .unwrap_err();
        assert!(not_num.to_string().contains("points"), "{not_num}");
        let unterminated = BenchRecord::parse(r#"{"bench": "x"#).unwrap_err();
        assert!(
            unterminated.to_string().contains("unterminated"),
            "{unterminated}"
        );
    }

    #[test]
    fn gate_passes_within_band_and_fails_beyond() {
        let baseline = record();
        // 25% slower: inside the 30% band.
        let slower = BenchRecord::new("protocol_sweep", 36, 1.25 / 0.75);
        assert!(matches!(
            check_regression(&baseline, &slower, 0.30).unwrap(),
            GateOutcome::Pass(r) if (r - 0.75).abs() < 1e-9
        ));
        // 35% slower: regression.
        let much_slower = BenchRecord::new("protocol_sweep", 36, 1.25 / 0.65);
        assert!(matches!(
            check_regression(&baseline, &much_slower, 0.30).unwrap(),
            GateOutcome::Regressed(r) if (r - 0.65).abs() < 1e-9
        ));
        // Faster never fails.
        let faster = BenchRecord::new("protocol_sweep", 36, 0.5);
        assert!(matches!(
            check_regression(&baseline, &faster, 0.30).unwrap(),
            GateOutcome::Pass(_)
        ));
    }

    #[test]
    fn gate_rejects_mismatched_workloads() {
        let baseline = record();
        let other_bench = BenchRecord::new("parallel_sweep", 36, 1.0);
        assert!(check_regression(&baseline, &other_bench, 0.3).is_err());
        let shrunk = BenchRecord::new("protocol_sweep", 6, 0.2);
        let err = check_regression(&baseline, &shrunk, 0.3).unwrap_err();
        assert!(err.to_string().contains("workload mismatch"), "{err}");
    }

    #[test]
    fn write_and_read_through_a_file() {
        let dir = std::env::temp_dir().join("mlf_bench_regression_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = record().write(&dir).unwrap();
        assert!(path.ends_with("BENCH_protocol_sweep.json"));
        let back = BenchRecord::read(&path).unwrap();
        assert_eq!(back.bench, "protocol_sweep");
        std::fs::remove_file(path).unwrap();
    }
}
