//! # mlf-bench — figure regeneration and benchmarks
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus Criterion
//! benchmarks (see `benches/`). This library holds the shared scaffolding:
//! a plain-text table renderer, a CSV writer for plotting, and a tiny
//! `--key value` argument parser so the binaries stay dependency-free.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod csvout;
pub mod table;

pub use cli::Args;
pub use csvout::write_csv;
pub use table::Table;
