//! # mlf-bench — figure regeneration and benchmarks
//!
//! One binary per table/figure of the paper (see `src/bin/`), plus Criterion
//! benchmarks (see `benches/`). This library holds the shared scaffolding:
//! a plain-text table renderer, a CSV writer for plotting, and a tiny
//! `Result`-based `--key value` argument parser so the binaries stay
//! dependency-free and exit cleanly (status 2) on malformed input.
//!
//! The binaries compose their experiments through the `mlf-scenario`
//! crate's `Scenario` builder and the `mlf-core` `Allocator` trait.
//!
//! ## The CI bench-regression gate
//!
//! The `parallel_sweep` and `protocol_sweep` benches emit
//! `BENCH_<name>.json` records ([`regression::BenchRecord`]) with their
//! serial points-per-second; committed baselines live in
//! `crates/bench/baselines/` and the `bench_gate` binary fails CI when a
//! run regresses more than 30% against them. Setting `MLF_BENCH_CHECK=1`
//! runs the benches in check mode (determinism asserts + one timed
//! measurement, no sampling loops).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod csvout;
pub mod regression;
pub mod table;

pub use cli::{knob, or_exit, usage, Args, CliError, Knob};
pub use csvout::write_csv;
pub use regression::{check_regression, BenchRecord, GateOutcome, RecordError};
pub use table::Table;
