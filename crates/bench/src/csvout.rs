//! CSV output for the figure regenerators.
//!
//! Every figure binary mirrors its terminal table into
//! `results/<name>.csv` so the series can be re-plotted (gnuplot,
//! matplotlib, …) without re-running the simulations.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Write records (header included) to `results/<name>.csv` under `root`,
/// creating the directory if needed. Returns the written path.
///
/// Cells containing commas, quotes or newlines are quoted per RFC 4180.
pub fn write_csv(
    root: impl AsRef<Path>,
    name: &str,
    records: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    let dir = root.as_ref().join("results");
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    for rec in records {
        let line: Vec<String> = rec.iter().map(|c| escape(c)).collect();
        writeln!(f, "{}", line.join(","))?;
    }
    Ok(path)
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_escapes() {
        let dir = std::env::temp_dir().join(format!("mlfbench-{}", std::process::id()));
        let records = vec![
            vec!["a".to_string(), "b,c".to_string()],
            vec!["1".to_string(), "say \"hi\"".to_string()],
        ];
        let path = write_csv(&dir, "test", &records).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,\"b,c\"\n1,\"say \"\"hi\"\"\"\n");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plain_cells_unquoted() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("1.5"), "1.5");
    }
}
