//! Minimal aligned-text table rendering for the figure binaries.
//!
//! The paper's figures are line plots; our regenerators print the same
//! series as columns so the shape is inspectable in a terminal and the CSV
//! twin (see [`crate::csvout`]) feeds any plotting tool.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row of already-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the header.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Append a row of numbers formatted with `precision` decimals, prefixed
    /// by one label cell.
    pub fn numeric_row(&mut self, label: impl Into<String>, values: &[f64], precision: usize) {
        let mut cells = vec![label.into()];
        cells.extend(values.iter().map(|v| format!("{v:.precision$}")));
        self.row(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                let _ = write!(out, "{}{}", c, " ".repeat(pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&self.header, &mut out);
        let total: usize = width.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }

    /// The rows as CSV-ready records (header first).
    pub fn records(&self) -> Vec<Vec<String>> {
        let mut v = vec![self.header.clone()];
        v.extend(self.rows.iter().cloned());
        v
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["x", "value"]);
        t.row(["1", "10.5"]);
        t.row(["100", "2"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("x    "));
        assert!(lines[1].starts_with("---"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn numeric_rows_format_consistently() {
        let mut t = Table::new(["v", "a", "b"]);
        t.numeric_row("1", &[0.5, 2.0 / 3.0], 3);
        assert_eq!(t.records()[1], vec!["1", "0.500", "0.667"]);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only one"]);
    }
}
