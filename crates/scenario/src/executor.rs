//! The deterministic parallel job executor shared by every sweep in the
//! workspace.
//!
//! [`run_jobs_par`] is the shard/merge machinery that PR 2 built inside
//! `Scenario::sweep_par`, extracted so any job type can ride it: allocator
//! sweeps shard `(model, seed)` jobs over per-thread [`SolverWorkspace`]s,
//! protocol sweeps shard `(protocol, loss, seed)` jobs with stateless
//! workers, and future engines (packet-level batches, cross-machine shards)
//! can reuse the same contract.
//!
//! ## The determinism contract
//!
//! For any `jobs`, `threads`, worker-state factory `init`, and job function
//! `solve`:
//!
//! 1. **Balanced contiguous partition.** The job slice is split into
//!    `min(threads, jobs.len())` contiguous shards; the first
//!    `jobs % threads` shards take one extra job, so no requested worker
//!    sits idle while another holds two extra jobs.
//! 2. **Worker-local state.** Each worker calls `init()` exactly once and
//!    threads the resulting state through its shard in order. State never
//!    crosses shards, so `solve` may mutate it freely (scratch buffers,
//!    RNGs re-seeded per job, caches) without affecting other shards.
//! 3. **In-order merge.** Shard outputs are concatenated in shard order, so
//!    the output vector is index-for-index the same as the serial loop
//!    `jobs.iter().map(|j| solve(&mut init(), j))` *provided* `solve`'s
//!    output for a job does not depend on worker-state history. Every
//!    caller in this workspace satisfies that (a solve's result never reads
//!    workspace history; a protocol point re-seeds its RNGs from the job),
//!    which is what makes parallel output **bitwise identical** to serial
//!    at any thread count.
//!
//! `threads == 0` means "use [`std::thread::available_parallelism`]";
//! `threads == 1` (or a single job) runs inline on the calling thread with
//! no spawn at all, so the serial path and the one-thread parallel path are
//! literally the same code.
//!
//! [`SolverWorkspace`]: mlf_core::allocator::SolverWorkspace

/// Run `jobs` across `threads` scoped worker threads and return the outputs
/// in job order.
///
/// * `init` builds one worker-local state per thread (a scratch workspace,
///   an RNG pool, …). It runs on the worker thread itself.
/// * `solve` maps one job to one output, with mutable access to its
///   worker's state.
///
/// The output is **bitwise identical** to the serial loop over `jobs` as
/// long as `solve(state, job)`'s result is a pure function of `job` (state
/// is scratch, not history) — see the module docs for the full contract.
///
/// # Panics
///
/// Propagates panics from `solve`/`init` (the scope joins every worker).
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub fn run_jobs_par<J, O, S, Init, Solve>(
    jobs: &[J],
    threads: usize,
    init: Init,
    solve: Solve,
) -> Vec<O>
where
    J: Sync,
    O: Send,
    S: Send,
    Init: Fn() -> S + Sync,
    Solve: Fn(&mut S, &J) -> O + Sync,
{
    run_jobs_par_with_state(jobs, threads, init, solve).0
}

/// [`run_jobs_par`], additionally returning every worker's final state in
/// shard order.
///
/// Worker state is scratch as far as the outputs are concerned (the
/// determinism contract is unchanged), but it can carry *telemetry* —
/// cache hit counters, solve counts — that the caller wants to aggregate
/// after the sweep. Shard order is deterministic (the balanced contiguous
/// partition depends only on `jobs.len()` and `threads`), so summing
/// per-worker counters is reproducible too.
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub fn run_jobs_par_with_state<J, O, S, Init, Solve>(
    jobs: &[J],
    threads: usize,
    init: Init,
    solve: Solve,
) -> (Vec<O>, Vec<S>)
where
    J: Sync,
    O: Send,
    S: Send,
    Init: Fn() -> S + Sync,
    Solve: Fn(&mut S, &J) -> O + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.clamp(1, jobs.len().max(1));
    let solve_shard = |shard: &[J]| -> (Vec<O>, S) {
        let mut state = init();
        let outputs = shard.iter().map(|job| solve(&mut state, job)).collect();
        (outputs, state)
    };
    if threads == 1 {
        let (outputs, state) = solve_shard(jobs);
        return (outputs, vec![state]);
    }
    // Balanced partition: the first `jobs % threads` shards take one extra
    // job, so every requested worker gets work (a plain `chunks(div_ceil)`
    // can leave whole workers idle — e.g. 9 jobs on 8 threads would spawn
    // only 5).
    let base = jobs.len() / threads;
    let extra = jobs.len() % threads;
    let mut outputs = Vec::with_capacity(jobs.len());
    let mut states = Vec::with_capacity(threads);
    let solve_shard = &solve_shard;
    std::thread::scope(|scope| {
        let mut rest = jobs;
        let workers: Vec<_> = (0..threads)
            .map(|i| {
                let (shard, tail) = rest.split_at(base + usize::from(i < extra));
                rest = tail;
                scope.spawn(move || solve_shard(shard))
            })
            .collect();
        for worker in workers {
            // mlf-lint: allow(panic-unwrap, reason = "re-raising a worker panic on the coordinating thread is the correct failure mode; swallowing it would silently drop that shard's results")
            let (shard_outputs, state) = worker.join().expect("sweep worker panicked");
            outputs.extend(shard_outputs);
            states.push(state);
        }
    });
    (outputs, states)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_jobs(n: u64) -> Vec<u64> {
        (0..n).collect()
    }

    #[test]
    fn output_is_in_job_order_at_any_thread_count() {
        let jobs = square_jobs(23);
        let serial: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for threads in [0, 1, 2, 3, 5, 8, 23, 64] {
            let par = run_jobs_par(&jobs, threads, || (), |_, &j| j * j);
            assert_eq!(serial, par, "{threads} threads");
        }
    }

    #[test]
    fn empty_job_lists_are_fine() {
        let out = run_jobs_par(&[] as &[u64], 8, || (), |_, &j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn worker_state_is_local_and_initialized_once_per_thread() {
        // Each worker counts its own jobs; the per-job output records the
        // counter *before* increment. Serial order would give 0,1,2,…;
        // sharded runs restart the count at each shard boundary. Either
        // way, the sum of (count==0) outputs equals the number of workers
        // that actually ran.
        let jobs = square_jobs(10);
        let out = run_jobs_par(
            &jobs,
            4,
            || 0u64,
            |count, _| {
                let seen = *count;
                *count += 1;
                seen
            },
        );
        assert_eq!(out.len(), 10);
        let shard_starts = out.iter().filter(|&&c| c == 0).count();
        assert_eq!(shard_starts, 4, "one fresh state per worker: {out:?}");
    }

    #[test]
    fn balanced_partition_uses_every_requested_worker() {
        // 9 jobs on 8 threads: a div_ceil chunking would spawn only 5
        // workers; the balanced split gives shard sizes 2,1,1,1,1,1,1,1.
        let jobs = square_jobs(9);
        let out = run_jobs_par(
            &jobs,
            8,
            || false,
            |fresh, &j| {
                let first = !*fresh;
                *fresh = true;
                (j, first)
            },
        );
        assert_eq!(out.iter().filter(|&&(_, first)| first).count(), 8);
        // And the merge is still in job order.
        let ids: Vec<u64> = out.iter().map(|&(j, _)| j).collect();
        assert_eq!(ids, (0..9).collect::<Vec<_>>());
    }
}
