//! Protocol experiments as first-class sweep citizens.
//!
//! The Figure 8 protocol comparison — RLM-style uncoordinated joins versus
//! deterministic and sender-coordinated join/leave behaviour under shared
//! and independent loss — used to run only through the serial
//! `mlf_protocols::experiment::figure8_series` loop, while allocator
//! experiments already had the seed-sharded parallel engine. This module
//! gives protocol grids the same treatment: a [`ProtocolScenario`] declares
//! the experiment template (star shape, packets, trials, latencies) once,
//! a [`ProtocolSweepGrid`] spans `(protocol kind × independent-loss grid ×
//! join/leave-latency pairs × trial seeds)`, and
//! [`ProtocolScenario::sweep_par`] shards the grid's
//! jobs across worker threads through the shared
//! [`executor::run_jobs_par`] — with the same **bitwise serial/parallel
//! agreement** contract the allocator sweeps have, because every point is a
//! pure function of its `(kind, loss, seed)` job (the simulator re-seeds
//! its RNGs from the job; workers hold no cross-job state).
//!
//! [`ProtocolScenario::figure8`] regroups sweep points back into the
//! `Figure8Point` shape, bitwise identical to the serial
//! [`figure8_series`] for the same template and loss axis.
//!
//! ## Example
//!
//! ```
//! use mlf_protocols::ExperimentParams;
//! use mlf_scenario::{ProtocolScenario, ProtocolSweepGrid};
//!
//! let scenario = ProtocolScenario::builder()
//!     .label("quick-panel")
//!     .template(ExperimentParams {
//!         receivers: 8,
//!         packets: 5_000,
//!         trials: 2,
//!         ..ExperimentParams::quick(0.0001, 0.0).unwrap()
//!     })
//!     .build()
//!     .unwrap();
//! let grid = ProtocolSweepGrid::independent_losses([0.01, 0.05]);
//! let serial = scenario.sweep(&grid);
//! let parallel = scenario.sweep_par(&grid, 4);
//! assert_eq!(serial, parallel); // bitwise, at any thread count
//! assert_eq!(serial.points.len(), 6); // 2 losses × 3 protocols
//! ```

use crate::executor;
use mlf_protocols::experiment::{
    figure8_series, run_point, validate_loss, ExperimentParamError, ExperimentParams, Figure8Point,
    PointOutcome,
};
use mlf_protocols::ProtocolKind;
use mlf_sim::Tick;

/// Why a [`ProtocolScenarioBuilder`] or a [`ProtocolSweepGrid`] was
/// rejected.
// mlf-lint: allow(unused-pub, reason = "reachable through public fn signatures and returned values; the ident-based usage scan cannot see type flow")
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProtocolScenarioError {
    /// The experiment template (or a grid loss) carries an invalid loss
    /// probability.
    Params(ExperimentParamError),
    /// The grid names no protocols.
    EmptyKinds,
    /// The grid names no independent-loss points.
    EmptyLossGrid,
}

impl std::fmt::Display for ProtocolScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolScenarioError::Params(e) => write!(f, "bad experiment parameters: {e}"),
            ProtocolScenarioError::EmptyKinds => {
                write!(f, "protocol sweep grid needs at least one protocol kind")
            }
            ProtocolScenarioError::EmptyLossGrid => {
                write!(
                    f,
                    "protocol sweep grid needs at least one independent-loss point"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolScenarioError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExperimentParamError> for ProtocolScenarioError {
    fn from(e: ExperimentParamError) -> Self {
        ProtocolScenarioError::Params(e)
    }
}

/// Builder for [`ProtocolScenario`]. Obtain via
/// [`ProtocolScenario::builder`].
// mlf-lint: allow(unused-pub, reason = "documented public API; doc examples and links are invisible to the analyzer")
pub struct ProtocolScenarioBuilder {
    label: String,
    template: ExperimentParams,
}

impl Default for ProtocolScenarioBuilder {
    fn default() -> Self {
        ProtocolScenarioBuilder {
            label: "protocol-scenario".to_string(),
            template: ExperimentParams::quick(0.0001, 0.0)
                // mlf-lint: allow(panic-unwrap, reason = "the default losses are compile-time constants inside the validated range")
                .expect("static default losses are valid"),
        }
    }
}

impl ProtocolScenarioBuilder {
    /// Name the scenario (shows up in reports, like
    /// [`ScenarioBuilder::label`](crate::ScenarioBuilder::label)).
    pub fn label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// The experiment template: star shape, packets, trials, base seed,
    /// join/leave latencies, and the shared loss. The grid's independent
    /// losses and seeds are substituted per point.
    pub fn template(mut self, template: ExperimentParams) -> Self {
        self.template = template;
        self
    }

    /// Validate the template's loss probabilities and assemble the
    /// scenario.
    pub fn build(self) -> Result<ProtocolScenario, ProtocolScenarioError> {
        self.template.validate()?;
        Ok(ProtocolScenario {
            label: self.label,
            template: self.template,
        })
    }
}

/// The sweep space of a protocol comparison: which protocols, which
/// independent-loss points, which join/leave latency pairs, which base
/// seeds.
///
/// The canonical job order is **losses-major, then latency pairs, then
/// kinds, then seeds** — the Figure 8 presentation order (one loss point
/// holds all protocols' outcomes), with the Section 5 latency ablation as
/// the next-outer axis. Both the serial and the parallel executor consume
/// this one expansion, so their point order can never diverge.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSweepGrid {
    /// Protocols to compare (default: all three, in the paper's order).
    pub kinds: Vec<ProtocolKind>,
    /// Fanout-link loss rates (the Figure 8 x-axis).
    pub independent_losses: Vec<f64>,
    /// `(join, leave)` latency pairs in slots, flowing into
    /// `StarConfig::with_latencies` through each point's
    /// [`ExperimentParams`]; empty means "the template's latencies" (one
    /// point per `(kind, loss, seed)`), which for
    /// [`ExperimentParams::paper`] is the idealized `(0, 0)`.
    pub latencies: Vec<(Tick, Tick)>,
    /// Base seeds; empty means "the template's seed" (one point per
    /// `(kind, loss, latency)`). Each point still runs the template's
    /// `trials` trials internally at `seed + trial`.
    pub seeds: Vec<u64>,
}

impl ProtocolSweepGrid {
    /// A grid over the given independent losses, all three protocols, the
    /// template's seed.
    pub fn independent_losses(losses: impl IntoIterator<Item = f64>) -> Self {
        ProtocolSweepGrid {
            kinds: ProtocolKind::ALL.to_vec(),
            independent_losses: losses.into_iter().collect(),
            latencies: Vec::new(),
            seeds: Vec::new(),
        }
    }

    /// The paper's Figure 8 x-axis: `points` evenly spaced losses on
    /// `[0, 0.1]`.
    pub fn figure8_axis(points: usize) -> Self {
        assert!(points >= 2, "a loss axis needs at least two points");
        Self::independent_losses((0..points).map(|i| 0.1 * i as f64 / (points - 1) as f64))
    }

    /// Restrict the grid to specific protocols.
    pub fn with_kinds(mut self, kinds: impl IntoIterator<Item = ProtocolKind>) -> Self {
        self.kinds = kinds.into_iter().collect();
        self
    }

    /// Cross the grid with explicit base seeds (replicates per point).
    pub fn with_seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Cross the grid with `(join, leave)` latency pairs (in slots) — the
    /// Section 5 latency-ablation axis. Each pair overrides the template's
    /// latencies for its points.
    pub fn with_latencies(mut self, pairs: impl IntoIterator<Item = (Tick, Tick)>) -> Self {
        self.latencies = pairs.into_iter().collect();
        self
    }

    /// Validate the grid: at least one kind and one loss, every loss
    /// finite and in `[0, 1)`.
    pub fn validate(&self) -> Result<(), ProtocolScenarioError> {
        if self.kinds.is_empty() {
            return Err(ProtocolScenarioError::EmptyKinds);
        }
        if self.independent_losses.is_empty() {
            return Err(ProtocolScenarioError::EmptyLossGrid);
        }
        for &loss in &self.independent_losses {
            validate_loss("independent", loss)?;
        }
        Ok(())
    }

    /// Expand the grid into its canonical job list (losses-major, then
    /// latency pairs, then kinds, then seeds).
    fn jobs(&self, template: &ExperimentParams) -> Vec<ProtocolJob> {
        let default_seeds = [template.seed];
        let seeds: &[u64] = if self.seeds.is_empty() {
            &default_seeds
        } else {
            &self.seeds
        };
        let default_latencies = [(template.join_latency, template.leave_latency)];
        let latencies: &[(Tick, Tick)] = if self.latencies.is_empty() {
            &default_latencies
        } else {
            &self.latencies
        };
        let mut jobs = Vec::with_capacity(
            self.independent_losses.len() * latencies.len() * self.kinds.len() * seeds.len(),
        );
        for &loss in &self.independent_losses {
            for &latency in latencies {
                for &kind in &self.kinds {
                    for &seed in seeds {
                        jobs.push(ProtocolJob {
                            kind,
                            loss,
                            latency,
                            seed,
                        });
                    }
                }
            }
        }
        jobs
    }
}

/// One expanded grid cell: the pure-function input of
/// [`ProtocolScenario::solve_job`], and therefore the unit the parallel
/// executor shards.
#[derive(Debug, Clone, Copy, PartialEq)]
struct ProtocolJob {
    kind: ProtocolKind,
    loss: f64,
    latency: (Tick, Tick),
    seed: u64,
}

/// One point of a protocol sweep: one `(protocol, independent loss,
/// latency pair, seed)` cell, with the aggregated trial statistics —
/// points from a [`ProtocolSweepGrid::with_latencies`] grid share
/// `(kind, loss, seed)` and differ only in their
/// `join_latency`/`leave_latency` tags.
///
/// Equality is bitwise on every statistic — the serial/parallel
/// differential compares whole reports with `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSweepPoint {
    /// Which protocol ran.
    pub kind: ProtocolKind,
    /// The template's shared-link loss rate.
    pub shared_loss: f64,
    /// This point's fanout-link loss rate.
    pub independent_loss: f64,
    /// The base seed this point's trials started from.
    pub seed: u64,
    /// The configured join (graft) latency in slots.
    pub join_latency: Tick,
    /// The configured leave (prune) latency in slots.
    pub leave_latency: Tick,
    /// The full trial statistics: shared-link redundancy, mean
    /// subscription level, goodput (throughput), and the observed
    /// loss-regime stats, straight from the `StarReport`s.
    pub outcome: PointOutcome,
}

impl ProtocolSweepPoint {
    /// Mean shared-link redundancy (the Figure 8 y-value).
    pub fn redundancy(&self) -> f64 {
        self.outcome.redundancy.mean()
    }

    /// Mean receiver goodput in packets/slot (throughput).
    pub fn throughput(&self) -> f64 {
        self.outcome.goodput.mean()
    }

    /// Mean observed per-receiver loss rate (the realized loss regime).
    pub fn observed_loss(&self) -> f64 {
        self.outcome.observed_loss.mean()
    }

    /// The per-receiver goodput distribution (one observation per
    /// `(receiver, trial)`): `min()`/`max()`/`std_dev()` expose the spread
    /// across receivers behind [`ProtocolSweepPoint::throughput`]'s mean.
    pub fn receiver_goodput(&self) -> &mlf_sim::RunningStats {
        &self.outcome.receiver_goodput
    }

    /// The per-receiver mean-subscription-level distribution, one
    /// observation per `(receiver, trial)`.
    pub fn receiver_mean_level(&self) -> &mlf_sim::RunningStats {
        &self.outcome.receiver_mean_level
    }
}

/// The outcome of a protocol sweep: one [`ProtocolSweepPoint`] per grid
/// cell, in the grid's canonical order.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSweepReport {
    /// The scenario's label.
    pub label: String,
    /// The points, losses-major, then latency pairs, then kinds, then
    /// seeds.
    pub points: Vec<ProtocolSweepPoint>,
}

impl ProtocolSweepReport {
    /// Mean of a per-point value.
    pub fn mean_of(&self, f: impl Fn(&ProtocolSweepPoint) -> f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(f).sum::<f64>() / self.points.len() as f64
    }

    /// Mean shared-link redundancy of one protocol across the sweep.
    // mlf-lint: allow(unused-pub, reason = "intentional API surface kept public alongside its siblings")
    pub fn mean_redundancy(&self, kind: ProtocolKind) -> f64 {
        let of_kind: Vec<f64> = self
            .points
            .iter()
            .filter(|p| p.kind == kind)
            .map(ProtocolSweepPoint::redundancy)
            .collect();
        if of_kind.is_empty() {
            return 0.0;
        }
        of_kind.iter().sum::<f64>() / of_kind.len() as f64
    }

    /// The points of one protocol, in sweep order.
    pub fn points_for(&self, kind: ProtocolKind) -> impl Iterator<Item = &ProtocolSweepPoint> {
        self.points.iter().filter(move |p| p.kind == kind)
    }
}

/// A declarative protocol experiment: one [`ExperimentParams`] template
/// plus a label, with serial and parallel sweep entry points over
/// [`ProtocolSweepGrid`]s.
///
/// The scenario is immutable and `Sync` — unlike the allocator
/// [`Scenario`](crate::Scenario) it needs no per-worker scratch state, so
/// parallel workers are stateless and one scenario can serve concurrent
/// sweeps.
#[derive(Debug, Clone)]
pub struct ProtocolScenario {
    label: String,
    template: ExperimentParams,
}

impl ProtocolScenario {
    /// Start building a protocol scenario.
    pub fn builder() -> ProtocolScenarioBuilder {
        ProtocolScenarioBuilder::default()
    }

    /// The scenario's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The experiment template every point derives from.
    pub fn template(&self) -> &ExperimentParams {
        &self.template
    }

    /// Solve one grid cell. Pure in `(kind, loss, latency, seed)` — this is
    /// the function the executor shards, and why parallel sweeps are
    /// bitwise serial-identical.
    fn solve_job(&self, job: &ProtocolJob) -> ProtocolSweepPoint {
        let &ProtocolJob {
            kind,
            loss,
            latency: (join_latency, leave_latency),
            seed,
        } = job;
        let params = ExperimentParams {
            seed,
            join_latency,
            leave_latency,
            ..self.template
        }
        .with_independent_loss(loss)
        // mlf-lint: allow(panic-unwrap, reason = "sweep_par validates the whole grid before any job is built, so every grid loss is in range here")
        .expect("grid losses are validated at sweep entry");
        ProtocolSweepPoint {
            kind,
            shared_loss: params.shared_loss,
            independent_loss: loss,
            seed,
            join_latency,
            leave_latency,
            outcome: run_point(kind, &params),
        }
    }

    /// Run one `(protocol, independent loss, seed)` point at the template's
    /// latencies.
    ///
    /// # Panics
    ///
    /// Panics if `independent_loss` is non-finite or outside `[0, 1)`;
    /// sweeps validate their whole grid up front instead.
    pub fn run_point(
        &self,
        kind: ProtocolKind,
        independent_loss: f64,
        seed: u64,
    ) -> ProtocolSweepPoint {
        // mlf-lint: allow(panic-unwrap, reason = "eager loss validation with a panic mirrors the documented sweep()/sweep_par() contract for caller-bug inputs")
        validate_loss("independent", independent_loss).unwrap_or_else(|e| panic!("{e}"));
        self.solve_job(&ProtocolJob {
            kind,
            loss: independent_loss,
            latency: (self.template.join_latency, self.template.leave_latency),
            seed,
        })
    }

    /// Run the full grid serially, in canonical order.
    ///
    /// # Panics
    ///
    /// Panics if the grid fails [`ProtocolSweepGrid::validate`] (check it
    /// first for a typed error).
    pub fn sweep(&self, grid: &ProtocolSweepGrid) -> ProtocolSweepReport {
        self.sweep_par(grid, 1)
    }

    /// [`ProtocolScenario::sweep`], sharded across `threads` scoped worker
    /// threads through the shared deterministic executor
    /// ([`executor::run_jobs_par`]). The result is **bitwise identical** to
    /// the serial sweep at any thread count; `threads == 0` uses
    /// `std::thread::available_parallelism`.
    ///
    /// # Panics
    ///
    /// Panics if the grid fails [`ProtocolSweepGrid::validate`].
    pub fn sweep_par(&self, grid: &ProtocolSweepGrid, threads: usize) -> ProtocolSweepReport {
        if let Err(e) = grid.validate() {
            // mlf-lint: allow(panic-unwrap, reason = "documented '# Panics' contract: an invalid grid is a caller bug, and validate() offers the typed alternative")
            panic!("{e}");
        }
        let jobs = grid.jobs(&self.template);
        ProtocolSweepReport {
            label: self.label.clone(),
            points: executor::run_jobs_par(&jobs, threads, || (), |(), job| self.solve_job(job)),
        }
    }

    /// One full Figure 8 panel — all three protocols across
    /// `independent_losses` at the template's shared loss — computed through
    /// the parallel executor and regrouped into the classic
    /// [`Figure8Point`] shape.
    ///
    /// Bitwise identical to the serial
    /// [`figure8_series`]`(template, independent_losses)` for the same
    /// template, at any thread count.
    pub fn figure8(&self, independent_losses: &[f64], threads: usize) -> Vec<Figure8Point> {
        let grid = ProtocolSweepGrid::independent_losses(independent_losses.iter().copied());
        let report = self.sweep_par(&grid, threads);
        report
            .points
            .chunks(ProtocolKind::ALL.len())
            .map(|cell| Figure8Point {
                independent_loss: cell[0].independent_loss,
                outcomes: cell.iter().map(|p| p.outcome.clone()).collect(),
            })
            .collect()
    }

    /// The serial reference for [`ProtocolScenario::figure8`] (delegates to
    /// [`figure8_series`] on the scenario's template).
    pub fn figure8_serial(&self, independent_losses: &[f64]) -> Vec<Figure8Point> {
        figure8_series(&self.template, independent_losses)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> ProtocolScenario {
        ProtocolScenario::builder()
            .label("tiny")
            .template(ExperimentParams {
                receivers: 6,
                packets: 3_000,
                trials: 2,
                ..ExperimentParams::quick(0.0001, 0.0).unwrap()
            })
            .build()
            .unwrap()
    }

    #[test]
    fn builder_rejects_invalid_templates() {
        let err = ProtocolScenario::builder()
            .template(ExperimentParams {
                shared_loss: 1.5,
                ..ExperimentParams::quick(0.0, 0.0).unwrap()
            })
            .build()
            .err();
        assert_eq!(
            err,
            Some(ProtocolScenarioError::Params(
                ExperimentParamError::LossOutOfRange {
                    which: "shared",
                    value: 1.5,
                }
            ))
        );
    }

    #[test]
    fn grid_validation_catches_empty_and_bad_losses() {
        let empty_kinds = ProtocolSweepGrid::independent_losses([0.01]).with_kinds([]);
        assert_eq!(
            empty_kinds.validate(),
            Err(ProtocolScenarioError::EmptyKinds)
        );
        let empty_losses = ProtocolSweepGrid::independent_losses([]);
        assert_eq!(
            empty_losses.validate(),
            Err(ProtocolScenarioError::EmptyLossGrid)
        );
        let bad_loss = ProtocolSweepGrid::independent_losses([0.01, 1.0]);
        assert_eq!(
            bad_loss.validate(),
            Err(ProtocolScenarioError::Params(
                ExperimentParamError::LossOutOfRange {
                    which: "independent",
                    value: 1.0,
                }
            ))
        );
        let msg = bad_loss.validate().unwrap_err().to_string();
        assert!(msg.contains("outside [0, 1)"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "at least one protocol kind")]
    fn sweeping_an_invalid_grid_panics_with_the_typed_message() {
        let grid = ProtocolSweepGrid::independent_losses([0.01]).with_kinds([]);
        tiny_scenario().sweep(&grid);
    }

    #[test]
    fn grid_order_is_losses_major_then_kinds_then_seeds() {
        let s = tiny_scenario();
        let grid = ProtocolSweepGrid::independent_losses([0.0, 0.05])
            .with_kinds([ProtocolKind::Deterministic, ProtocolKind::Coordinated])
            .with_seeds([1, 2]);
        let report = s.sweep(&grid);
        let cells: Vec<(ProtocolKind, f64, u64)> = report
            .points
            .iter()
            .map(|p| (p.kind, p.independent_loss, p.seed))
            .collect();
        assert_eq!(
            cells,
            vec![
                (ProtocolKind::Deterministic, 0.0, 1),
                (ProtocolKind::Deterministic, 0.0, 2),
                (ProtocolKind::Coordinated, 0.0, 1),
                (ProtocolKind::Coordinated, 0.0, 2),
                (ProtocolKind::Deterministic, 0.05, 1),
                (ProtocolKind::Deterministic, 0.05, 2),
                (ProtocolKind::Coordinated, 0.05, 1),
                (ProtocolKind::Coordinated, 0.05, 2),
            ]
        );
    }

    #[test]
    fn parallel_sweep_is_bitwise_identical_to_serial() {
        let s = tiny_scenario();
        let grid = ProtocolSweepGrid::independent_losses([0.0, 0.03, 0.08]).with_seeds([7, 9]);
        let serial = s.sweep(&grid);
        assert_eq!(serial.points.len(), 3 * 3 * 2);
        for threads in [0, 2, 3, 8, 64] {
            assert_eq!(serial, s.sweep_par(&grid, threads), "{threads} threads");
        }
    }

    #[test]
    fn figure8_matches_the_serial_series_bitwise() {
        let s = tiny_scenario();
        let losses = [0.0, 0.04, 0.09];
        let serial = s.figure8_serial(&losses);
        for threads in [1, 2, 4] {
            assert_eq!(serial, s.figure8(&losses, threads), "{threads} threads");
        }
    }

    #[test]
    fn points_surface_throughput_latency_and_loss_regime() {
        let s = ProtocolScenario::builder()
            .template(ExperimentParams {
                receivers: 6,
                packets: 3_000,
                trials: 2,
                join_latency: 3,
                leave_latency: 5,
                ..ExperimentParams::quick(0.02, 0.0).unwrap()
            })
            .build()
            .unwrap();
        let p = s.run_point(ProtocolKind::Deterministic, 0.0, 42);
        assert_eq!(p.join_latency, 3);
        assert_eq!(p.leave_latency, 5);
        assert_eq!(p.seed, 42);
        assert!(p.throughput() > 0.0);
        // With nonzero join latency a receiver's *requested* rate can
        // briefly exceed what the link carried, so redundancy may dip a
        // little under 1; it just has to stay in a sane band.
        assert!(
            p.redundancy() > 0.5 && p.redundancy() < 10.0,
            "{}",
            p.redundancy()
        );
        // 2% shared loss, no independent loss: realized regime ≈ 2%.
        assert!(
            (p.observed_loss() - 0.02).abs() < 0.015,
            "{}",
            p.observed_loss()
        );
    }

    #[test]
    fn latency_axis_expands_between_losses_and_kinds() {
        let s = tiny_scenario();
        let grid = ProtocolSweepGrid::independent_losses([0.0, 0.05])
            .with_kinds([ProtocolKind::Deterministic, ProtocolKind::Coordinated])
            .with_latencies([(0, 0), (5, 40)]);
        let report = s.sweep(&grid);
        let cells: Vec<(f64, Tick, Tick, ProtocolKind)> = report
            .points
            .iter()
            .map(|p| (p.independent_loss, p.join_latency, p.leave_latency, p.kind))
            .collect();
        assert_eq!(
            cells,
            vec![
                (0.0, 0, 0, ProtocolKind::Deterministic),
                (0.0, 0, 0, ProtocolKind::Coordinated),
                (0.0, 5, 40, ProtocolKind::Deterministic),
                (0.0, 5, 40, ProtocolKind::Coordinated),
                (0.05, 0, 0, ProtocolKind::Deterministic),
                (0.05, 0, 0, ProtocolKind::Coordinated),
                (0.05, 5, 40, ProtocolKind::Deterministic),
                (0.05, 5, 40, ProtocolKind::Coordinated),
            ]
        );
        // A latency pair genuinely changes the experiment: same (kind,
        // loss) cells differ across the axis.
        assert_ne!(report.points[0].outcome, report.points[2].outcome);
    }

    #[test]
    fn latency_points_match_an_explicitly_latent_template() {
        // A grid latency pair must produce the same point as baking the
        // same pair into the template — the axis *is* the template knob.
        let template = ExperimentParams {
            receivers: 6,
            packets: 3_000,
            trials: 2,
            ..ExperimentParams::quick(0.001, 0.0).unwrap()
        };
        let base = ProtocolScenario::builder()
            .label("lat")
            .template(template)
            .build()
            .unwrap();
        let swept = base.sweep(
            &ProtocolSweepGrid::independent_losses([0.03])
                .with_kinds([ProtocolKind::Deterministic])
                .with_latencies([(7, 21)]),
        );
        let baked = ProtocolScenario::builder()
            .label("lat")
            .template(ExperimentParams {
                join_latency: 7,
                leave_latency: 21,
                ..template
            })
            .build()
            .unwrap()
            .run_point(ProtocolKind::Deterministic, 0.03, template.seed);
        assert_eq!(swept.points.len(), 1);
        assert_eq!(swept.points[0], baked);
    }

    #[test]
    fn latency_axis_is_bitwise_identical_in_parallel() {
        let s = tiny_scenario();
        let grid = ProtocolSweepGrid::independent_losses([0.0, 0.04])
            .with_latencies([(0, 0), (3, 17), (12, 0)])
            .with_seeds([5, 6]);
        let serial = s.sweep(&grid);
        assert_eq!(serial.points.len(), 2 * 3 * 3 * 2);
        for threads in [2, 8, 64] {
            assert_eq!(serial, s.sweep_par(&grid, threads), "{threads} threads");
        }
    }

    #[test]
    fn points_surface_per_receiver_distributions() {
        let s = tiny_scenario();
        let p = s.run_point(ProtocolKind::Uncoordinated, 0.05, 3);
        // 6 receivers × 2 trials.
        assert_eq!(p.receiver_goodput().count(), 12);
        assert_eq!(p.receiver_mean_level().count(), 12);
        assert!(p.receiver_goodput().min() <= p.throughput());
        assert!(p.receiver_goodput().max() >= p.throughput());
        assert!(p.receiver_mean_level().std_dev() >= 0.0);
    }

    #[test]
    fn figure8_axis_spans_zero_to_ten_percent() {
        let grid = ProtocolSweepGrid::figure8_axis(11);
        assert_eq!(grid.independent_losses.len(), 11);
        assert_eq!(grid.independent_losses[0], 0.0);
        assert!((grid.independent_losses[10] - 0.1).abs() < 1e-12);
        assert!(grid.validate().is_ok());
    }
}
