//! Disk spill tier for the solve cache.
//!
//! A [`SpillTier`] backs one worker's bounded in-memory [`SolveCache`]
//! with an append-only segment file: points evicted from the FIFO are
//! appended to disk, and an in-memory miss consults the segment index
//! before declaring a real miss, so sweeps too large for memory degrade
//! to disk hits instead of recomputation.
//!
//! # Segment format
//!
//! The file is a 22-byte header followed by fixed-size 134-byte records,
//! every piece self-checksummed with the workspace FNV-1a primitive:
//!
//! ```text
//! header: "MLFS" | version u16 LE | scenario digest u64 LE | fnv1a(bytes 0..14) u64 LE
//! record: "SR" | SolveKey (58 bytes) | encoded SweepPoint (66 bytes) | fnv1a(bytes 0..126) u64 LE
//! ```
//!
//! The scenario digest in the header is the owning scenario's
//! solve-relevant identity (the same digest that keys the in-memory
//! cache's `scenario` component); a segment written by a different
//! scenario configuration — or by a future format version — is silently
//! started fresh rather than merged. Points reuse the canonical
//! checkpoint encoding ([`crate::checkpoint::encode_point`]), so a spill
//! hit is bitwise the point that was evicted.
//!
//! # Corruption discipline
//!
//! Same torn-tail discipline as `TailPolicy::Recover` on the checkpoint
//! file: a trailing partial record (a worker died mid-append) is
//! truncated away silently, while a record or header that is present but
//! fails its checksum is *skipped and counted* in
//! [`SpillStats::corrupt_segments`] — never merged. Any I/O failure after
//! open marks the tier broken: lookups miss and spills are dropped, which
//! degrades to the plain bounded-FIFO behaviour and never affects result
//! bytes.
//!
//! # Determinism
//!
//! A spill hit decodes a record this scenario previously wrote from the
//! same [`SolveKey`], and every point is a pure function of its key
//! within a scenario, so spill-enabled sweeps are bitwise identical to
//! spill-free ones — the tier only changes *where* a memoized point is
//! found, never its bytes.

use crate::cache::SolveKey;
use crate::checkpoint::{decode_point, encode_point, POINT_BYTES};
use crate::hash::Fnv1a;
use crate::SweepPoint;
use std::collections::HashMap;
use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic prefix of a spill segment file.
pub(crate) const SEGMENT_MAGIC: [u8; 4] = *b"MLFS";
/// Format version written to (and required from) the segment header.
pub(crate) const SEGMENT_VERSION: u16 = 1;

/// Bytes in the segment header: magic (4) + version (2) + scenario digest
/// (8) + FNV-1a checksum of the preceding 14 bytes (8).
const HEADER_BYTES: usize = 22;
/// Bytes in one encoded [`SolveKey`] (see [`SolveKey::encode`]).
const KEY_BYTES: usize = crate::cache::SOLVE_KEY_BYTES;
/// Marker prefix of every record.
const RECORD_MARKER: [u8; 2] = *b"SR";
/// Bytes in one record: marker (2) + key (58) + point (66) + checksum (8).
const RECORD_BYTES: usize = 2 + KEY_BYTES + POINT_BYTES + 8;

/// Spill-tier telemetry: disk hits/misses, records appended, and corrupt
/// pieces skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct SpillStats {
    /// In-memory misses served from the segment file.
    pub(crate) hits: u64,
    /// In-memory misses the segment file could not serve either.
    pub(crate) misses: u64,
    /// Records appended to the segment file.
    pub(crate) spilled: u64,
    /// Headers or records that failed their checksum and were skipped
    /// (never merged).
    pub(crate) corrupt_segments: u64,
}

impl SpillStats {
    /// The counters accumulated since `before` was captured. Saturating:
    /// snapshots passed in the wrong order yield zeros, not wrapped
    /// counts.
    pub(crate) fn since(&self, before: &SpillStats) -> SpillStats {
        SpillStats {
            hits: self.hits.saturating_sub(before.hits),
            misses: self.misses.saturating_sub(before.misses),
            spilled: self.spilled.saturating_sub(before.spilled),
            corrupt_segments: self
                .corrupt_segments
                .saturating_sub(before.corrupt_segments),
        }
    }
}

/// What a segment header said about reusing the file's contents.
enum HeaderCheck {
    /// Empty file — start fresh, nothing to count.
    Fresh,
    /// Present but failed magic/length/checksum — start fresh and count a
    /// corrupt segment.
    Corrupt,
    /// Valid header for a *different* scenario digest or format version —
    /// start fresh silently (invalidation, not corruption).
    Mismatch,
    /// Valid header for this scenario — scan and index the records.
    Valid,
}

fn le_u64(bytes: &[u8]) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[..8]);
    u64::from_le_bytes(raw)
}

fn check_header(bytes: &[u8], scenario: u64) -> HeaderCheck {
    if bytes.is_empty() {
        return HeaderCheck::Fresh;
    }
    if bytes.len() < HEADER_BYTES || bytes[0..4] != SEGMENT_MAGIC {
        return HeaderCheck::Corrupt;
    }
    let mut h = Fnv1a::new();
    h.write(&bytes[..14]);
    if h.finish() != le_u64(&bytes[14..22]) {
        return HeaderCheck::Corrupt;
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != SEGMENT_VERSION || le_u64(&bytes[6..14]) != scenario {
        return HeaderCheck::Mismatch;
    }
    HeaderCheck::Valid
}

fn header_bytes(scenario: u64) -> [u8; HEADER_BYTES] {
    let mut out = [0u8; HEADER_BYTES];
    out[0..4].copy_from_slice(&SEGMENT_MAGIC);
    out[4..6].copy_from_slice(&SEGMENT_VERSION.to_le_bytes());
    out[6..14].copy_from_slice(&scenario.to_le_bytes());
    let mut h = Fnv1a::new();
    h.write(&out[..14]);
    out[14..22].copy_from_slice(&h.finish().to_le_bytes());
    out
}

fn record_bytes(key: &SolveKey, point: &SweepPoint) -> [u8; RECORD_BYTES] {
    let mut out = [0u8; RECORD_BYTES];
    out[0..2].copy_from_slice(&RECORD_MARKER);
    out[2..2 + KEY_BYTES].copy_from_slice(&key.encode());
    out[2 + KEY_BYTES..2 + KEY_BYTES + POINT_BYTES].copy_from_slice(&encode_point(point));
    let mut h = Fnv1a::new();
    h.write(&out[..RECORD_BYTES - 8]);
    out[RECORD_BYTES - 8..].copy_from_slice(&h.finish().to_le_bytes());
    out
}

/// Decode one record, verifying marker and checksum. `Err` means the
/// record is corrupt (count it, skip it).
fn decode_record(bytes: &[u8]) -> Result<(SolveKey, SweepPoint), ()> {
    if bytes.len() != RECORD_BYTES || bytes[0..2] != RECORD_MARKER {
        return Err(());
    }
    let mut h = Fnv1a::new();
    h.write(&bytes[..RECORD_BYTES - 8]);
    if h.finish() != le_u64(&bytes[RECORD_BYTES - 8..]) {
        return Err(());
    }
    let key = SolveKey::decode(&bytes[2..2 + KEY_BYTES]).map_err(|_| ())?;
    let point = decode_point(&bytes[2 + KEY_BYTES..2 + KEY_BYTES + POINT_BYTES]).map_err(|_| ())?;
    Ok((key, point))
}

/// An open spill segment: the file, an in-memory offset index of the
/// records it holds, and the telemetry counters. See the [module
/// docs](self) for the format and the corruption discipline.
#[derive(Debug)]
pub(crate) struct SpillTier {
    file: std::fs::File,
    #[cfg_attr(not(test), allow(dead_code))]
    path: PathBuf,
    /// Byte offset of the latest record for each spilled key (last write
    /// wins, matching append order).
    index: HashMap<SolveKey, u64>,
    /// Append position: one past the last whole record.
    tail: u64,
    stats: SpillStats,
    /// Set on any post-open I/O failure: the tier stops serving and
    /// stops appending (degrades to the plain in-memory FIFO).
    broken: bool,
}

impl SpillTier {
    /// Open (or create) the segment at `path`, bound to the scenario
    /// identity digest `scenario`. An existing segment is re-indexed if
    /// its header matches; a corrupt, foreign, or stale segment is
    /// replaced by a fresh one (corruption is counted, invalidation is
    /// silent). A torn trailing record is truncated away.
    pub(crate) fn open(path: &Path, scenario: u64) -> std::io::Result<SpillTier> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        let mut stats = SpillStats::default();
        let mut index = HashMap::new();
        let mut tail = HEADER_BYTES as u64;
        let reuse = match check_header(&bytes, scenario) {
            HeaderCheck::Valid => true,
            HeaderCheck::Fresh | HeaderCheck::Mismatch => false,
            HeaderCheck::Corrupt => {
                stats.corrupt_segments += 1;
                false
            }
        };
        if reuse {
            let mut off = HEADER_BYTES;
            while off + RECORD_BYTES <= bytes.len() {
                match decode_record(&bytes[off..off + RECORD_BYTES]) {
                    Ok((key, _)) => {
                        index.insert(key, off as u64);
                    }
                    Err(()) => stats.corrupt_segments += 1,
                }
                off += RECORD_BYTES;
            }
            tail = off as u64;
            if (off as u64) < bytes.len() as u64 {
                // Torn trailing record: truncate back to the last whole
                // record so future appends land on a record boundary.
                file.set_len(tail)?;
            }
        } else {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header_bytes(scenario))?;
            file.flush()?;
        }
        Ok(SpillTier {
            file,
            path: path.to_path_buf(),
            index,
            tail,
            stats,
            broken: false,
        })
    }

    /// The segment file path.
    #[cfg(test)]
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct keys the segment can serve.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.index.len()
    }

    /// Telemetry counters.
    pub(crate) fn stats(&self) -> SpillStats {
        self.stats
    }

    /// Serve `key` from disk, re-verifying the record checksum on read. A
    /// record that no longer verifies is dropped from the index and
    /// counted corrupt; any I/O failure breaks the tier (miss, not
    /// error).
    pub(crate) fn lookup(&mut self, key: &SolveKey) -> Option<SweepPoint> {
        if self.broken {
            return None;
        }
        let Some(&off) = self.index.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        let mut record = [0u8; RECORD_BYTES];
        let read = self
            .file
            .seek(SeekFrom::Start(off))
            .and_then(|_| self.file.read_exact(&mut record));
        if read.is_err() {
            self.broken = true;
            self.stats.misses += 1;
            return None;
        }
        match decode_record(&record) {
            Ok((stored_key, point)) if stored_key == *key => {
                self.stats.hits += 1;
                Some(point)
            }
            _ => {
                self.stats.corrupt_segments += 1;
                self.index.remove(key);
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Append an evicted point. Keys already on disk are not re-appended
    /// (a promote-evict cycle must not grow the file); a failed append
    /// breaks the tier and drops the point.
    pub(crate) fn spill(&mut self, key: &SolveKey, point: &SweepPoint) {
        if self.broken || self.index.contains_key(key) {
            return;
        }
        let record = record_bytes(key, point);
        let wrote = self
            .file
            .seek(SeekFrom::Start(self.tail))
            .and_then(|_| self.file.write_all(&record))
            .and_then(|_| self.file.flush());
        if wrote.is_err() {
            self.broken = true;
            return;
        }
        self.index.insert(*key, self.tail);
        self.tail += RECORD_BYTES as u64;
        self.stats.spilled += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::TopologyKey;
    use crate::ScenarioMetrics;
    use mlf_core::LinkRateModel;
    use mlf_net::TopologyFamily;
    use std::fs;

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mlf-spill-{name}-{}.seg", std::process::id()))
    }

    fn point(seed: u64) -> SweepPoint {
        SweepPoint {
            seed,
            model: Some(LinkRateModel::Scaled(2.5)),
            metrics: ScenarioMetrics {
                jain_index: 0.75,
                min_rate: seed as f64,
                total_rate: 3.0 * seed as f64,
                satisfaction: 0.5,
                iterations: 7,
            },
            properties_holding: Some(3),
        }
    }

    fn key(seed: u64) -> SolveKey {
        SolveKey::new(
            TopologyKey::random(TopologyFamily::KaryTree { arity: 3 }, 20, 4, 4, seed),
            LinkRateModel::RandomJoin { sigma: 6.0 },
            0x1234_5678,
        )
    }

    #[test]
    fn round_trips_spilled_points() {
        let path = tmp("round-trip");
        let _ = fs::remove_file(&path);
        let mut tier = SpillTier::open(&path, 42).unwrap();
        for s in 0..5 {
            tier.spill(&key(s), &point(s));
        }
        assert_eq!(tier.len(), 5);
        for s in 0..5 {
            let got = tier.lookup(&key(s)).expect("spilled point served");
            assert_eq!(encode_point(&got), encode_point(&point(s)));
        }
        assert!(tier.lookup(&key(99)).is_none());
        let s = tier.stats();
        assert_eq!(
            (s.hits, s.misses, s.spilled, s.corrupt_segments),
            (5, 1, 5, 0)
        );
        let _ = fs::remove_file(tier.path());
    }

    #[test]
    fn reopen_reindexes_and_duplicate_keys_are_not_reappended() {
        let path = tmp("reopen");
        let _ = fs::remove_file(&path);
        {
            let mut tier = SpillTier::open(&path, 7).unwrap();
            tier.spill(&key(0), &point(0));
            tier.spill(&key(1), &point(1));
            tier.spill(&key(0), &point(0)); // dedup: no growth
            assert_eq!(tier.stats().spilled, 2);
        }
        let size = fs::metadata(&path).unwrap().len();
        assert_eq!(size, (HEADER_BYTES + 2 * RECORD_BYTES) as u64);
        let mut tier = SpillTier::open(&path, 7).unwrap();
        assert_eq!(tier.len(), 2);
        assert_eq!(
            encode_point(&tier.lookup(&key(1)).unwrap()),
            encode_point(&point(1))
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn foreign_scenario_or_version_starts_fresh_silently() {
        let path = tmp("foreign");
        let _ = fs::remove_file(&path);
        {
            let mut tier = SpillTier::open(&path, 1).unwrap();
            tier.spill(&key(0), &point(0));
        }
        let tier = SpillTier::open(&path, 2).unwrap();
        assert_eq!(tier.len(), 0, "foreign segment never merged");
        assert_eq!(tier.stats().corrupt_segments, 0, "invalidation is silent");
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            HEADER_BYTES as u64,
            "segment restarted fresh"
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_header_is_counted_and_replaced() {
        let path = tmp("bad-header");
        fs::write(&path, b"not a spill segment at all").unwrap();
        let tier = SpillTier::open(&path, 3).unwrap();
        assert_eq!(tier.len(), 0);
        assert_eq!(tier.stats().corrupt_segments, 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupt_record_is_skipped_and_torn_tail_truncated() {
        let path = tmp("bad-record");
        let _ = fs::remove_file(&path);
        {
            let mut tier = SpillTier::open(&path, 9).unwrap();
            for s in 0..3 {
                tier.spill(&key(s), &point(s));
            }
        }
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the middle record's point payload.
        bytes[HEADER_BYTES + RECORD_BYTES + 30] ^= 0xff;
        // Append half a record: a torn tail.
        let torn = vec![0xabu8; RECORD_BYTES / 2];
        bytes.extend_from_slice(&torn);
        fs::write(&path, &bytes).unwrap();
        let mut tier = SpillTier::open(&path, 9).unwrap();
        assert_eq!(tier.stats().corrupt_segments, 1, "flipped record counted");
        assert_eq!(tier.len(), 2, "other records survive");
        assert!(tier.lookup(&key(1)).is_none());
        assert!(tier.lookup(&key(0)).is_some());
        assert_eq!(
            fs::metadata(&path).unwrap().len(),
            (HEADER_BYTES + 3 * RECORD_BYTES) as u64,
            "torn tail truncated to the record boundary"
        );
        // New appends land cleanly after recovery.
        tier.spill(&key(10), &point(10));
        assert!(tier.lookup(&key(10)).is_some());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn spill_stats_since_is_saturating() {
        let a = SpillStats {
            hits: 5,
            misses: 3,
            spilled: 2,
            corrupt_segments: 1,
        };
        let b = SpillStats {
            hits: 2,
            misses: 1,
            spilled: 2,
            corrupt_segments: 0,
        };
        assert_eq!(
            a.since(&b),
            SpillStats {
                hits: 3,
                misses: 2,
                spilled: 0,
                corrupt_segments: 1
            }
        );
        assert_eq!(b.since(&a), SpillStats::default());
    }
}
