//! FNV-1a 64-bit hashing — the content-hash primitive shared by the
//! coordinator's shard verification, the checkpoint file's line checksums,
//! and the solve cache's scenario-identity component.
//!
//! FNV-1a is deliberately simple: a fixed offset basis folded with a fixed
//! prime, byte by byte, with no seeds and no platform dependence — the same
//! bytes hash to the same value on every machine, which is exactly the
//! property a cross-worker content audit needs. It is *not* adversarial
//! collision resistance; the coordinator's threat model is lost and
//! corrupted bytes (crashes, truncation, transport bugs), not a malicious
//! worker forging preimages.

/// Streaming FNV-1a 64 hasher.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a::new()
    }
}

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// A fresh hasher at the FNV offset basis.
    pub(crate) fn new() -> Self {
        Fnv1a(Self::OFFSET)
    }

    /// Fold raw bytes into the state.
    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Fold a `u64` in little-endian byte order.
    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// The current hash value.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot hash of a byte slice.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a(b"foobar"));
        let mut w = Fnv1a::new();
        w.write_u64(0x0102_0304_0506_0708);
        assert_eq!(
            w.finish(),
            fnv1a(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01])
        );
    }
}
