//! Append-only sweep checkpoints: the durability half of the
//! [`coordinator`](crate::coordinator).
//!
//! A checkpoint file records every shard a coordinated sweep has accepted,
//! one line per shard, so a killed run resumes from disk instead of
//! recomputing — and provably produces the same bytes, because each line
//! carries the shard's canonical point encoding plus two independent
//! digests (a per-line checksum and the shard content hash the workers
//! originally reported).
//!
//! # Format
//!
//! Hand-rolled JSON, one object per line (no external serializer is
//! available offline, and the format is small enough that a hand parser is
//! the more auditable choice — the same call `mlf_bench::regression` makes
//! for its artifact records):
//!
//! ```text
//! {"format":"mlf-sweep-checkpoint-v1","sweep":"0x…","shards":N,"shard_size":K,"check":"0x…"}
//! {"shard":0,"start":0,"len":2,"hash":"0x…","points":["<hex>","<hex>"],"check":"0x…"}
//! ```
//!
//! * The **header** binds the file to one sweep: `sweep` is the
//!   coordinator's sweep-identity digest (label, allocator signature,
//!   audit switch, source parameters, and the full job list), `shards` and
//!   `shard_size` pin the shard geometry. A checkpoint can never resume a
//!   *different* sweep — mismatches are [`CheckpointError::HeaderMismatch`].
//! * Each **shard line** stores the shard's points in the canonical
//!   66-byte encoding ([`encode_point`]), hex-armored, plus the FNV-1a
//!   content hash ([`shard_content_hash`]) the shard was verified under.
//! * Every line ends with `"check"`: the FNV-1a digest of the line's bytes
//!   up to (and excluding) the `,"check"` suffix. A flipped bit anywhere
//!   in a line is detected on load.
//!
//! # Tail policy
//!
//! A crash can only damage the **tail** of an append-only file: the writer
//! flushes line by line, so every earlier line is complete. On load,
//! [`TailPolicy::Recover`] discards an *unterminated* final line (no
//! trailing newline) and reports the surviving byte length so the resumed
//! writer can truncate and continue; a line that is terminated but fails
//! its checksum or its content hash is damage the append-only model cannot
//! explain, and is always a hard [`CheckpointError::Corrupt`] — a bad
//! shard is never merged. [`TailPolicy::Strict`] rejects the unterminated
//! tail too (the audit mode the durability tests use).

use crate::SweepPoint;
use mlf_core::LinkRateModel;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use crate::hash::{fnv1a, Fnv1a};
use crate::ScenarioMetrics;

/// The format tag every checkpoint header carries.
pub const FORMAT: &str = "mlf-sweep-checkpoint-v1";

/// Bytes of one encoded sweep point (see [`encode_point`]).
pub const POINT_BYTES: usize = 66;

/// Why a checkpoint could not be written or loaded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// An OS-level file operation failed.
    Io {
        /// The checkpoint path.
        path: PathBuf,
        /// The operation that failed (`"open"`, `"read"`, `"write"`, …).
        op: &'static str,
        /// The OS error, stringified.
        message: String,
    },
    /// The file has no complete header line.
    MissingHeader {
        /// The checkpoint path.
        path: PathBuf,
    },
    /// The header belongs to a different sweep or geometry.
    HeaderMismatch {
        /// Which header field disagreed.
        field: &'static str,
        /// The value the resuming sweep expected.
        expected: String,
        /// The value stored in the file.
        got: String,
    },
    /// A terminated line failed to parse, failed its checksum, or failed
    /// its content hash. Never merged, never recovered.
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The final line is unterminated (no trailing newline) under
    /// [`TailPolicy::Strict`].
    TruncatedTail {
        /// 1-based line number of the torn line.
        line: usize,
    },
    /// A shard line names a shard index outside the header's geometry.
    ShardOutOfRange {
        /// The stored shard index.
        shard: u64,
        /// The header's shard count.
        shards: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { path, op, message } => {
                write!(
                    f,
                    "checkpoint {op} failed for {}: {message}",
                    path.display()
                )
            }
            CheckpointError::MissingHeader { path } => {
                write!(f, "checkpoint {} has no complete header", path.display())
            }
            CheckpointError::HeaderMismatch {
                field,
                expected,
                got,
            } => write!(
                f,
                "checkpoint belongs to a different sweep: {field} is {got}, expected {expected}"
            ),
            CheckpointError::Corrupt { line, reason } => {
                write!(f, "checkpoint line {line} is corrupt: {reason}")
            }
            CheckpointError::TruncatedTail { line } => {
                write!(f, "checkpoint line {line} is truncated (unterminated tail)")
            }
            CheckpointError::ShardOutOfRange { shard, shards } => {
                write!(f, "checkpoint shard {shard} out of range ({shards} shards)")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// What to do with an unterminated final line on load.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailPolicy {
    /// Any anomaly is an error (audit mode).
    Strict,
    /// Discard an unterminated tail and resume before it; terminated but
    /// corrupt lines remain hard errors.
    Recover,
}

/// The sweep identity a checkpoint is bound to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// The coordinator's sweep-identity digest.
    pub sweep: u64,
    /// Total shard count of the sweep.
    pub shards: u64,
    /// Configured jobs per shard.
    pub shard_size: u64,
}

/// One accepted shard as stored on (or loaded from) disk.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRecord {
    /// Shard index within the sweep.
    pub shard: u64,
    /// Index of the shard's first job in the canonical job list.
    pub start: u64,
    /// The shard's points, in job order.
    pub points: Vec<SweepPoint>,
    /// The FNV-1a content hash the shard was verified under.
    pub hash: u64,
}

/// The result of [`load_checkpoint`].
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// Every intact shard record, in file order.
    pub shards: Vec<ShardRecord>,
    /// Byte length of the intact prefix (what a resumed writer keeps).
    pub valid_len: u64,
    /// Whether an unterminated tail was discarded
    /// ([`TailPolicy::Recover`] only).
    pub dropped_tail: bool,
    /// Whether the intact prefix includes the header line.
    pub has_header: bool,
}

// ---------------------------------------------------------------------------
// Canonical point encoding
// ---------------------------------------------------------------------------

/// The wire code of an optional uniform link-rate model: a tag byte plus
/// the model's parameter bits.
pub(crate) fn model_code(model: Option<LinkRateModel>) -> (u8, u64) {
    match model {
        None => (0, 0),
        Some(LinkRateModel::Efficient) => (1, 0),
        Some(LinkRateModel::Scaled(v)) => (2, v.to_bits()),
        Some(LinkRateModel::Sum) => (3, 0),
        Some(LinkRateModel::RandomJoin { sigma }) => (4, sigma.to_bits()),
    }
}

/// Inverse of [`model_code`] (shared with the transport frame codec).
pub(crate) fn model_from_code(tag: u8, bits: u64) -> Result<Option<LinkRateModel>, String> {
    match tag {
        0 => Ok(None),
        1 => Ok(Some(LinkRateModel::Efficient)),
        2 => Ok(Some(LinkRateModel::Scaled(f64::from_bits(bits)))),
        3 => Ok(Some(LinkRateModel::Sum)),
        4 => Ok(Some(LinkRateModel::RandomJoin {
            sigma: f64::from_bits(bits),
        })),
        t => Err(format!("unknown model tag {t}")),
    }
}

/// Encode one sweep point into its canonical 66-byte little-endian form.
///
/// The encoding is **total and injective on bit patterns**: every `f64` is
/// stored by `to_bits`, so NaNs and signed zeros round-trip exactly and
/// two points are bitwise equal iff their encodings are equal — which is
/// why the coordinator's shard hashes, spot-check comparisons, and the
/// checkpoint file all speak this encoding rather than `PartialEq`.
pub fn encode_point(p: &SweepPoint) -> [u8; POINT_BYTES] {
    let mut out = [0u8; POINT_BYTES];
    out[0..8].copy_from_slice(&p.seed.to_le_bytes());
    let (tag, bits) = model_code(p.model);
    out[8] = tag;
    out[9..17].copy_from_slice(&bits.to_le_bytes());
    out[17..25].copy_from_slice(&p.metrics.jain_index.to_bits().to_le_bytes());
    out[25..33].copy_from_slice(&p.metrics.min_rate.to_bits().to_le_bytes());
    out[33..41].copy_from_slice(&p.metrics.total_rate.to_bits().to_le_bytes());
    out[41..49].copy_from_slice(&p.metrics.satisfaction.to_bits().to_le_bytes());
    out[49..57].copy_from_slice(&(p.metrics.iterations as u64).to_le_bytes());
    let (ptag, pval) = match p.properties_holding {
        None => (0u8, 0u64),
        Some(n) => (1, n as u64),
    };
    out[57] = ptag;
    out[58..66].copy_from_slice(&pval.to_le_bytes());
    out
}

/// Decode a canonical 66-byte point encoding (inverse of [`encode_point`]).
pub fn decode_point(bytes: &[u8]) -> Result<SweepPoint, String> {
    if bytes.len() != POINT_BYTES {
        return Err(format!(
            "encoded point is {} bytes, expected {POINT_BYTES}",
            bytes.len()
        ));
    }
    let u64_at = |off: usize| -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&bytes[off..off + 8]);
        u64::from_le_bytes(b)
    };
    let model = model_from_code(bytes[8], u64_at(9))?;
    let properties_holding = match bytes[57] {
        0 => None,
        1 => Some(u64_at(58) as usize),
        t => Err(format!("unknown properties tag {t}"))?,
    };
    Ok(SweepPoint {
        seed: u64_at(0),
        model,
        metrics: ScenarioMetrics {
            jain_index: f64::from_bits(u64_at(17)),
            min_rate: f64::from_bits(u64_at(25)),
            total_rate: f64::from_bits(u64_at(33)),
            satisfaction: f64::from_bits(u64_at(41)),
            iterations: u64_at(49) as usize,
        },
        properties_holding,
    })
}

/// The deterministic content hash of one shard: FNV-1a over the shard
/// index, its job offset, its length, and every point's canonical
/// encoding. Workers tag their deliveries with this; the coordinator
/// recomputes it before accepting, and the checkpoint stores it.
pub fn shard_content_hash(shard: u64, start: u64, points: &[SweepPoint]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_u64(shard);
    h.write_u64(start);
    h.write_u64(points.len() as u64);
    for p in points {
        h.write(&encode_point(p));
    }
    h.finish()
}

// ---------------------------------------------------------------------------
// Hex armor
// ---------------------------------------------------------------------------

fn to_hex(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(bytes.len() * 2);
    for &b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0xf) as usize] as char);
    }
    s
}

fn from_hex(s: &str) -> Result<Vec<u8>, String> {
    if s.len() % 2 != 0 {
        return Err("odd-length hex string".to_string());
    }
    let digit = |c: u8| -> Result<u8, String> {
        match c {
            b'0'..=b'9' => Ok(c - b'0'),
            b'a'..=b'f' => Ok(c - b'a' + 10),
            _ => Err(format!("bad hex digit {:?}", c as char)),
        }
    };
    let raw = s.as_bytes();
    let mut out = Vec::with_capacity(raw.len() / 2);
    for pair in raw.chunks_exact(2) {
        out.push(digit(pair[0])? << 4 | digit(pair[1])?);
    }
    Ok(out)
}

fn hex_u64(v: u64) -> String {
    format!("0x{v:016x}")
}

fn parse_hex_u64(s: &str) -> Result<u64, String> {
    let digits = s
        .strip_prefix("0x")
        .ok_or_else(|| format!("expected 0x-prefixed hash, got {s:?}"))?;
    if digits.len() != 16 {
        return Err(format!("expected 16 hex digits, got {}", digits.len()));
    }
    u64::from_str_radix(digits, 16).map_err(|e| format!("bad hash {s:?}: {e}"))
}

// ---------------------------------------------------------------------------
// Line building and parsing
// ---------------------------------------------------------------------------

/// Append the `,"check":"0x…"}` suffix: the line checksum over everything
/// before it.
fn seal_line(mut body: String) -> String {
    let check = fnv1a(body.as_bytes());
    body.push_str(",\"check\":\"");
    body.push_str(&hex_u64(check));
    body.push_str("\"}");
    body
}

/// Split a sealed line back into its body and verify the checksum.
fn unseal_line(line: &str) -> Result<&str, String> {
    let at = line
        .rfind(",\"check\":\"")
        .ok_or_else(|| "missing check field".to_string())?;
    let body = &line[..at];
    let tail = &line[at + ",\"check\":\"".len()..];
    let stored = tail
        .strip_suffix("\"}")
        .ok_or_else(|| "malformed check suffix".to_string())?;
    let stored = parse_hex_u64(stored)?;
    let actual = fnv1a(body.as_bytes());
    if stored != actual {
        return Err(format!(
            "checksum mismatch: stored {}, computed {}",
            hex_u64(stored),
            hex_u64(actual)
        ));
    }
    Ok(body)
}

fn header_line(meta: &CheckpointMeta) -> String {
    seal_line(format!(
        "{{\"format\":\"{FORMAT}\",\"sweep\":\"{}\",\"shards\":{},\"shard_size\":{}",
        hex_u64(meta.sweep),
        meta.shards,
        meta.shard_size
    ))
}

fn shard_line(rec: &ShardRecord) -> String {
    let mut body = format!(
        "{{\"shard\":{},\"start\":{},\"len\":{},\"hash\":\"{}\",\"points\":[",
        rec.shard,
        rec.start,
        rec.points.len(),
        hex_u64(rec.hash)
    );
    for (i, p) in rec.points.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        body.push('"');
        body.push_str(&to_hex(&encode_point(p)));
        body.push('"');
    }
    body.push(']');
    seal_line(body)
}

/// A tiny forward-only scanner over one line body. The writer controls the
/// format exactly, so parsing is strict: expected literals must match byte
/// for byte.
struct Scan<'a> {
    s: &'a str,
}

impl<'a> Scan<'a> {
    fn lit(&mut self, lit: &str) -> Result<(), String> {
        match self.s.strip_prefix(lit) {
            Some(rest) => {
                self.s = rest;
                Ok(())
            }
            None => Err(format!(
                "expected {lit:?} at {:?}",
                &self.s[..self.s.len().min(24)]
            )),
        }
    }

    fn u64(&mut self) -> Result<u64, String> {
        let end = self
            .s
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(self.s.len());
        if end == 0 {
            return Err(format!(
                "expected digits at {:?}",
                &self.s[..self.s.len().min(24)]
            ));
        }
        let v = self.s[..end]
            .parse::<u64>()
            .map_err(|e| format!("bad integer: {e}"))?;
        self.s = &self.s[end..];
        Ok(v)
    }

    /// A double-quoted string with no escapes (the format never needs any).
    fn quoted(&mut self) -> Result<&'a str, String> {
        self.lit("\"")?;
        let end = self
            .s
            .find('"')
            .ok_or_else(|| "unterminated string".to_string())?;
        let v = &self.s[..end];
        self.s = &self.s[end + 1..];
        Ok(v)
    }
}

fn parse_header(body: &str) -> Result<CheckpointMeta, String> {
    let mut sc = Scan { s: body };
    sc.lit("{\"format\":")?;
    let format = sc.quoted()?;
    if format != FORMAT {
        return Err(format!("unknown format {format:?}"));
    }
    sc.lit(",\"sweep\":")?;
    let sweep = parse_hex_u64(sc.quoted()?)?;
    sc.lit(",\"shards\":")?;
    let shards = sc.u64()?;
    sc.lit(",\"shard_size\":")?;
    let shard_size = sc.u64()?;
    if !sc.s.is_empty() {
        return Err(format!("trailing bytes after header: {:?}", sc.s));
    }
    Ok(CheckpointMeta {
        sweep,
        shards,
        shard_size,
    })
}

fn parse_shard(body: &str) -> Result<ShardRecord, String> {
    let mut sc = Scan { s: body };
    sc.lit("{\"shard\":")?;
    let shard = sc.u64()?;
    sc.lit(",\"start\":")?;
    let start = sc.u64()?;
    sc.lit(",\"len\":")?;
    let len = sc.u64()?;
    sc.lit(",\"hash\":")?;
    let hash = parse_hex_u64(sc.quoted()?)?;
    sc.lit(",\"points\":[")?;
    let mut points = Vec::new();
    if sc.lit("]").is_err() {
        loop {
            let raw = from_hex(sc.quoted()?)?;
            points.push(decode_point(&raw)?);
            if sc.lit(",").is_err() {
                sc.lit("]")?;
                break;
            }
        }
    }
    if !sc.s.is_empty() {
        return Err(format!("trailing bytes after shard: {:?}", sc.s));
    }
    if points.len() as u64 != len {
        return Err(format!(
            "length field says {len} points, line holds {}",
            points.len()
        ));
    }
    let actual = shard_content_hash(shard, start, &points);
    if actual != hash {
        return Err(format!(
            "content hash mismatch: stored {}, computed {}",
            hex_u64(hash),
            hex_u64(actual)
        ));
    }
    Ok(ShardRecord {
        shard,
        start,
        points,
        hash,
    })
}

// ---------------------------------------------------------------------------
// File IO
// ---------------------------------------------------------------------------

fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        op,
        message: e.to_string(),
    }
}

/// The append-only writer side of a checkpoint file. Every accepted shard
/// becomes one flushed line, so the on-disk prefix is always a valid
/// checkpoint of everything accepted so far.
#[derive(Debug)]
pub struct CheckpointWriter {
    file: File,
    path: PathBuf,
}

impl CheckpointWriter {
    /// Create (or truncate) a checkpoint and write its header line.
    pub fn create(path: &Path, meta: &CheckpointMeta) -> Result<Self, CheckpointError> {
        let file = File::create(path).map_err(|e| io_err(path, "create", e))?;
        let mut w = CheckpointWriter {
            file,
            path: path.to_path_buf(),
        };
        w.write_line(&header_line(meta))?;
        Ok(w)
    }

    /// Reopen an existing checkpoint after [`load_checkpoint`]: the file is
    /// truncated to the loaded `valid_len` (discarding any recovered torn
    /// tail) and appending resumes there. Writes a fresh header if the
    /// intact prefix lost it.
    pub fn resume(
        path: &Path,
        meta: &CheckpointMeta,
        loaded: &LoadedCheckpoint,
    ) -> Result<Self, CheckpointError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, "open", e))?;
        file.set_len(loaded.valid_len)
            .map_err(|e| io_err(path, "truncate", e))?;
        let mut w = CheckpointWriter {
            file,
            path: path.to_path_buf(),
        };
        w.file
            .seek(SeekFrom::End(0))
            .map_err(|e| io_err(&w.path, "seek", e))?;
        if !loaded.has_header {
            w.write_line(&header_line(meta))?;
        }
        Ok(w)
    }

    /// Append one accepted shard, flush it, and **fsync** it — the shard
    /// is durably on disk before the coordinator treats it as accepted,
    /// so a coordinator killed between accept and merge (even by power
    /// loss, not just SIGKILL) never loses an accepted shard line.
    pub fn append_shard(&mut self, rec: &ShardRecord) -> Result<(), CheckpointError> {
        self.write_line(&shard_line(rec))
    }

    fn write_line(&mut self, line: &str) -> Result<(), CheckpointError> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.file
            .write_all(&bytes)
            .map_err(|e| io_err(&self.path, "write", e))?;
        self.file
            .flush()
            .map_err(|e| io_err(&self.path, "flush", e))?;
        self.file
            .sync_data()
            .map_err(|e| io_err(&self.path, "sync", e))
    }
}

impl Drop for CheckpointWriter {
    fn drop(&mut self) {
        // Belt and braces: every line is already flushed and synced as it
        // is written, but a final best-effort sync on any exit path costs
        // nothing and covers future buffered-writer refactors.
        let _ = self.file.flush();
        let _ = self.file.sync_data();
    }
}

/// Load a checkpoint, verifying every line checksum, every shard content
/// hash, and the header against `expected`. See the module docs for what
/// each [`TailPolicy`] tolerates.
pub fn load_checkpoint(
    path: &Path,
    expected: &CheckpointMeta,
    policy: TailPolicy,
) -> Result<LoadedCheckpoint, CheckpointError> {
    let mut src = String::new();
    File::open(path)
        .map_err(|e| io_err(path, "open", e))?
        .read_to_string(&mut src)
        .map_err(|e| io_err(path, "read", e))?;
    let mut loaded = LoadedCheckpoint {
        shards: Vec::new(),
        valid_len: 0,
        dropped_tail: false,
        has_header: false,
    };
    let mut rest = src.as_str();
    let mut line_no = 0usize;
    while !rest.is_empty() {
        line_no += 1;
        let Some(nl) = rest.find('\n') else {
            // Unterminated tail: the one anomaly an append-only crash can
            // produce. Recover drops it; Strict rejects it.
            return match policy {
                TailPolicy::Strict => Err(CheckpointError::TruncatedTail { line: line_no }),
                TailPolicy::Recover => {
                    loaded.dropped_tail = true;
                    Ok(loaded)
                }
            };
        };
        let line = &rest[..nl];
        rest = &rest[nl + 1..];
        let corrupt = |reason: String| CheckpointError::Corrupt {
            line: line_no,
            reason,
        };
        let body = unseal_line(line).map_err(corrupt)?;
        if line_no == 1 {
            let meta = parse_header(body).map_err(corrupt)?;
            check_header(&meta, expected)?;
            loaded.has_header = true;
        } else {
            let rec = parse_shard(body).map_err(corrupt)?;
            if rec.shard >= expected.shards {
                return Err(CheckpointError::ShardOutOfRange {
                    shard: rec.shard,
                    shards: expected.shards,
                });
            }
            loaded.shards.push(rec);
        }
        loaded.valid_len += line.len() as u64 + 1;
    }
    if !loaded.has_header {
        return Err(CheckpointError::MissingHeader {
            path: path.to_path_buf(),
        });
    }
    Ok(loaded)
}

fn check_header(got: &CheckpointMeta, expected: &CheckpointMeta) -> Result<(), CheckpointError> {
    let mismatch = |field, e: String, g: String| {
        Err(CheckpointError::HeaderMismatch {
            field,
            expected: e,
            got: g,
        })
    };
    if got.sweep != expected.sweep {
        return mismatch("sweep", hex_u64(expected.sweep), hex_u64(got.sweep));
    }
    if got.shards != expected.shards {
        return mismatch(
            "shards",
            expected.shards.to_string(),
            got.shards.to_string(),
        );
    }
    if got.shard_size != expected.shard_size {
        return mismatch(
            "shard_size",
            expected.shard_size.to_string(),
            got.shard_size.to_string(),
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(seed: u64, model: Option<LinkRateModel>) -> SweepPoint {
        SweepPoint {
            seed,
            model,
            metrics: ScenarioMetrics {
                jain_index: 0.5 + seed as f64,
                min_rate: -0.0,
                total_rate: f64::NAN,
                satisfaction: f64::INFINITY,
                iterations: 7,
            },
            properties_holding: (seed % 2 == 0).then_some(4),
        }
    }

    #[test]
    fn point_encoding_round_trips_exotic_bit_patterns() {
        for (seed, model) in [
            (0, None),
            (1, Some(LinkRateModel::Efficient)),
            (2, Some(LinkRateModel::Scaled(f64::NAN))),
            (3, Some(LinkRateModel::Sum)),
            (4, Some(LinkRateModel::RandomJoin { sigma: -0.0 })),
        ] {
            let p = point(seed, model);
            let enc = encode_point(&p);
            let back = decode_point(&enc).unwrap();
            // Bitwise comparison via re-encoding: NaN != NaN under
            // PartialEq, but the encodings must agree exactly.
            assert_eq!(enc, encode_point(&back));
        }
        assert!(decode_point(&[0u8; 65]).is_err());
        let mut bad = encode_point(&point(0, None));
        bad[8] = 9; // unknown model tag
        assert!(decode_point(&bad).is_err());
    }

    #[test]
    fn file_round_trip_and_header_binding() {
        let dir = std::env::temp_dir().join("mlf-ckpt-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("rt.ckpt");
        let meta = CheckpointMeta {
            sweep: 0xabcd,
            shards: 3,
            shard_size: 2,
        };
        let recs: Vec<ShardRecord> = (0..2u64)
            .map(|i| {
                let pts = vec![point(i * 2, None), point(i * 2 + 1, None)];
                ShardRecord {
                    shard: i,
                    start: i * 2,
                    hash: shard_content_hash(i, i * 2, &pts),
                    points: pts,
                }
            })
            .collect();
        let mut w = CheckpointWriter::create(&path, &meta).unwrap();
        for r in &recs {
            w.append_shard(r).unwrap();
        }
        let loaded = load_checkpoint(&path, &meta, TailPolicy::Strict).unwrap();
        assert_eq!(loaded.shards.len(), 2);
        assert!(!loaded.dropped_tail);
        for (a, b) in loaded.shards.iter().zip(&recs) {
            assert_eq!(a.shard, b.shard);
            assert_eq!(a.hash, b.hash);
            let enc_a: Vec<_> = a.points.iter().map(encode_point).collect();
            let enc_b: Vec<_> = b.points.iter().map(encode_point).collect();
            assert_eq!(enc_a, enc_b);
        }
        // A different sweep identity refuses to resume.
        let other = CheckpointMeta {
            sweep: 0xbeef,
            ..meta
        };
        assert!(matches!(
            load_checkpoint(&path, &other, TailPolicy::Strict),
            Err(CheckpointError::HeaderMismatch { field: "sweep", .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_and_corrupt_tails_are_told_apart() {
        let dir = std::env::temp_dir().join("mlf-ckpt-tails");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tails.ckpt");
        let meta = CheckpointMeta {
            sweep: 7,
            shards: 2,
            shard_size: 1,
        };
        let pts = vec![point(0, None)];
        let rec = ShardRecord {
            shard: 0,
            start: 0,
            hash: shard_content_hash(0, 0, &pts),
            points: pts,
        };
        let mut w = CheckpointWriter::create(&path, &meta).unwrap();
        w.append_shard(&rec).unwrap();
        let intact = std::fs::read(&path).unwrap();

        // Torn tail: drop the trailing newline and a few bytes.
        std::fs::write(&path, &intact[..intact.len() - 5]).unwrap();
        assert!(matches!(
            load_checkpoint(&path, &meta, TailPolicy::Strict),
            Err(CheckpointError::TruncatedTail { line: 2 })
        ));
        let rec_loaded = load_checkpoint(&path, &meta, TailPolicy::Recover).unwrap();
        assert!(rec_loaded.dropped_tail);
        assert_eq!(rec_loaded.shards.len(), 0);
        assert!(rec_loaded.has_header);

        // Terminated but bit-flipped line: hard error under BOTH policies —
        // never merged.
        let mut flipped = intact.clone();
        let mid = flipped.len() - 20;
        flipped[mid] ^= 0x01;
        std::fs::write(&path, &flipped).unwrap();
        for policy in [TailPolicy::Strict, TailPolicy::Recover] {
            assert!(matches!(
                load_checkpoint(&path, &meta, policy),
                Err(CheckpointError::Corrupt { line: 2, .. })
            ));
        }
        std::fs::remove_file(&path).unwrap();
    }
}
